//! Offline stand-in for the [`proptest`] crate.
//!
//! Provides the subset `tests/properties.rs` uses: the `proptest!` macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range strategies,
//! `any::<bool>()`, `Strategy::prop_map` and `collection::btree_map`.
//! Cases are generated from a deterministic ChaCha stream seeded by the
//! test name (set `PROPTEST_CASES` to change the case count, default 64).
//! There is **no shrinking**: a failing case reports its index and message
//! and the fixed seeding makes it immediately reproducible.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng as TestRng;

/// Error raised by a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not satisfy a `prop_assume!` precondition; skipped.
    Reject,
    /// A `prop_assert!`-style check failed.
    Fail(String),
}

/// Strategy combinators and range/`any` sources.
pub mod strategy {
    use super::TestRng;

    /// A generator of test-case values (no shrinking in this shim).
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u32, u64, i32, i64);

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }

    /// Strategy for any value of `T` (see [`super::any`]).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size specification accepted by [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for a `Vec` of `size`-many elements.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for a `BTreeMap` with `size`-range many sampled pairs
    /// (duplicate keys collapse, as in proptest).
    pub fn btree_map<K: Ord, V, SK, SV>(
        keys: SK,
        values: SV,
        size: Range<usize>,
    ) -> BTreeMapStrategy<SK, SV>
    where
        SK: Strategy<Value = K>,
        SV: Strategy<Value = V>,
    {
        BTreeMapStrategy { keys, values, size }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<SK, SV> {
        keys: SK,
        values: SV,
        size: Range<usize>,
    }

    impl<K: Ord, V, SK, SV> Strategy for BTreeMapStrategy<SK, SV>
    where
        SK: Strategy<Value = K>,
        SV: Strategy<Value = V>,
    {
        type Value = BTreeMap<K, V>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K, V> {
            let n = rand::Rng::gen_range(rng, self.size.clone());
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.keys.sample(rng), self.values.sample(rng));
            }
            out
        }
    }
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, TestCaseError};
}

/// FNV-1a over the test name: a stable per-test seed.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of generated cases per property (env `PROPTEST_CASES`, default 64).
fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Drives one property: samples cases, counts rejects, panics on failure.
/// Called by the expansion of [`proptest!`]; not part of proptest's API.
pub fn run_cases<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(name: &str, mut f: F) {
    let cases = case_count();
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let max_rejects = cases.saturating_mul(16).max(256);
    while accepted < cases {
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property {name}: too many prop_assume! rejects \
                         ({rejected} rejects for {accepted}/{cases} cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case {accepted}: {msg}");
            }
        }
    }
}

/// Defines `#[test]` functions over generated inputs (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__ptrng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __ptrng);)*
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                        stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(a in 1i64..10, b in 0usize..=3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "only even cases survive the assume");
        }

        #[test]
        fn map_and_collections(m in collection::btree_map(0usize..8, any::<bool>(), 0..5)) {
            prop_assert!(m.len() < 5);
            prop_assert!(m.keys().all(|&k| k < 8));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        crate::run_cases("always_fails", |_| Err(crate::TestCaseError::Fail("boom".into())));
    }

    #[test]
    fn seeding_is_stable_per_name() {
        assert_eq!(super::seed_for("x"), super::seed_for("x"));
        assert_ne!(super::seed_for("x"), super::seed_for("y"));
    }
}
