//! Offline stand-in for the [`criterion`] benchmark harness.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_with_input` / `bench_function`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with straightforward wall-clock measurement
//! (median over `sample_size` samples after one warm-up run). No plotting,
//! no statistics beyond min/median/max; the printed medians are what the
//! figure harnesses consume.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level handle passed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let samples = self.default_sample_size;
        run_one(name, samples, &mut f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut f);
    }

    /// Ends the group (printing is per-bench; nothing buffered).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id that is just the parameter (criterion's `from_parameter`).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing driver handed to the benchmarked closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Measures `f`, recording `requested` samples after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        for _ in 0..self.requested {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::with_capacity(samples), requested: samples };
    f(&mut bencher);
    let mut times = bencher.samples;
    if times.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "bench {label:<48} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        times[0],
        times[times.len() - 1],
        times.len()
    );
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, &v| {
            b.iter(|| {
                runs += 1;
                v * 2
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("n20_k3").0, "n20_k3");
    }
}
