//! Offline stand-in for the [`rand_chacha`] crate: a real ChaCha8 stream
//! cipher core exposed through the vendored [`rand`] shim traits.
//!
//! The workspace only needs `ChaCha8Rng::seed_from_u64` plus the `RngCore`
//! bit stream; the keystream here is a faithful ChaCha implementation with
//! 8 rounds (the statistical quality matters for the §6 synthetic workload
//! generator), though the word-level output order is not guaranteed to be
//! bit-identical to the upstream crate.
//!
//! [`rand_chacha`]: https://crates.io/crates/rand_chacha

#![forbid(unsafe_code)]

use rand::{split_mix_64, RngCore, SeedableRng};

/// A ChaCha stream cipher generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state words (RFC 8439 layout).
    state: [u32; 16],
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let w = split_mix_64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_is_roughly_uniform() {
        // Coarse sanity check on bit balance: 64k bits, expect ~50% ones.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1024.0 * 64.0);
        assert!((0.48..0.52).contains(&frac), "bit fraction {frac}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 hits {hits}/10000");
    }
}
