//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored shim provides exactly the `rand` 0.8 API subset the
//! workspace uses: [`RngCore`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//! The sampling functions are deterministic given the underlying generator,
//! which is all the workspace relies on (seeded, reproducible searches and
//! workload generation).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (deterministically).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that uniform values can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (negligible bias for
/// the spans used in this workspace, none when `span` divides `2^64`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Expands a 64-bit seed into key material (splitmix64, as `rand` does for
/// `seed_from_u64`).
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            split_mix_64(&mut s)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&c));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut rng = Counter(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
