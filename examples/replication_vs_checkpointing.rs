//! Reproduces the timing arguments of the paper's Fig. 1, Fig. 2 and
//! Fig. 4: rollback recovery with checkpointing vs re-execution vs active
//! replication vs primary-backup, on the running example `P1`
//! (`C1 = 60, α = 10, µ = 10, χ = 5`).
//!
//! Run with: `cargo run --example replication_vs_checkpointing`

use ftes::ft::replication::{
    active_replication_completion, active_replication_demand, primary_backup_completion,
    primary_backup_demand,
};
use ftes::ft::{CopyPlan, Policy, RecoveryScheme};
use ftes::model::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5))?;

    println!("== Fig. 1: rollback recovery with checkpointing (C=60, α=10, µ=10, χ=5) ==");
    for x in 0..=4u32 {
        println!(
            "  X={x}: fault-free E = {:>3}, worst case W(·,1) = {:>3}, W(·,2) = {:>3}",
            scheme.fault_free_time(x),
            scheme.worst_case_time(x, 1),
            scheme.worst_case_time(x, 2),
        );
    }
    println!("  (Fig. 1b: E(2) = 90; Fig. 1c: W(2,1) = 130)");
    println!();

    println!("== Fig. 2: active replication vs primary-backup (two replicas) ==");
    let act0 = active_replication_completion(scheme, 2, 0).expect("replica survives");
    let act1 = active_replication_completion(scheme, 2, 1).expect("replica survives");
    let pb0 = primary_backup_completion(scheme, 2, 0).expect("replica survives");
    let pb1 = primary_backup_completion(scheme, 2, 1).expect("replica survives");
    println!("  active replication : no fault {act0:>3}, one fault {act1:>3}");
    println!("  primary-backup     : no fault {pb0:>3}, one fault {pb1:>3}");
    println!(
        "  CPU demand         : active {} vs passive {}",
        active_replication_demand(scheme, 2),
        primary_backup_demand(scheme)
    );
    println!("  -> replication hides the fault latency; recovery saves resources");
    println!();

    println!("== Fig. 4: policy assignment combinations for k = 2 ==");
    let a = Policy::checkpointing(2, 3);
    let b = Policy::replication(2);
    let c = Policy::from_copies(vec![CopyPlan::plain(), CopyPlan::checkpointed(1, 2)])?;
    for (name, policy) in [("4a checkpointing", &a), ("4b replication", &b), ("4c combined", &c)] {
        println!(
            "  {name:<17}: kind {:?}, Q = {}, slowest copy worst case = {}",
            policy.kind(),
            policy.replica_count(),
            policy.worst_case_copy_time(scheme),
        );
        assert!(policy.tolerates(2));
    }
    Ok(())
}
