//! Builds the FT-CPG of the paper's Fig. 5 and prints its structure, the
//! DOT rendering and the full fault-scenario census — then verifies the
//! synthesized schedule by exhaustive fault injection.
//!
//! Run with: `cargo run --example ftcpg_inspect`

use ftes::ft::PolicyAssignment;
use ftes::ftcpg::{build_ftcpg, dot, enumerate_scenarios, BuildConfig, CopyMapping};
use ftes::model::{samples, FaultModel, Mapping, Time};
use ftes::sched::{schedule_ftcpg, SchedConfig};
use ftes::sim::verify_exhaustive;
use ftes::tdma::{Platform, TdmaBus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (app, arch, transparency) = samples::fig5();
    let mapping = Mapping::new(&app, &arch, samples::fig5_mapping())?;
    let policies = PolicyAssignment::uniform_reexecution(&app, 2);
    let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
    let nodes = arch.node_count();
    let cpg = build_ftcpg(
        &app,
        &policies,
        &copies,
        FaultModel::new(2),
        &transparency,
        BuildConfig::default(),
    )?;

    println!("== FT-CPG of Fig. 5 (k = 2, frozen: P3, m2, m3) ==");
    println!(
        "{} nodes, {} edges, {} conditional, {} sync nodes",
        cpg.node_count(),
        cpg.edge_count(),
        cpg.conditional_nodes().count(),
        cpg.sync_nodes().count()
    );
    for (i, _) in app.processes() {
        let copies: Vec<String> =
            cpg.copies_of_process(i).map(|id| cpg.name(id).to_string()).collect();
        println!("  {}: copies {}", app.process(i).name(), copies.join(", "));
    }
    println!();

    let scenarios = enumerate_scenarios(&cpg, 100_000)?;
    let mut by_count = [0usize; 3];
    for s in &scenarios {
        by_count[s.fault_count() as usize] += 1;
    }
    println!(
        "fault scenarios: {} total (0 faults: {}, 1 fault: {}, 2 faults: {})",
        scenarios.len(),
        by_count[0],
        by_count[1],
        by_count[2]
    );
    println!();

    let platform = Platform::new(arch, TdmaBus::uniform(nodes, Time::new(8))?)?;
    let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())?;
    println!("worst-case schedule length: {}", schedule.length());
    let verdict = verify_exhaustive(&app, &cpg, &schedule, &transparency, 100_000)?;
    println!(
        "exhaustive fault injection: {} scenarios, worst makespan {}, sound: {}",
        verdict.scenarios,
        verdict.worst_makespan,
        verdict.is_sound()
    );
    println!();

    println!("== DOT rendering (pipe into `dot -Tsvg`) ==");
    println!("{}", dot::ftcpg_to_dot(&cpg));
    Ok(())
}
