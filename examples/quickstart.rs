//! Quickstart: synthesize a fault-tolerant system for the paper's Fig. 5
//! application and print the distributed schedule tables.
//!
//! The crate-root documentation of `ftes` carries the tested twin of this
//! walk-through (`cargo test --doc` runs it), so the two cannot drift
//! apart silently.
//!
//! Run with: `cargo run --example quickstart`

use ftes::model::{samples, FaultModel, Time};
use ftes::tdma::{Platform, TdmaBus};
use ftes::{synthesize_system, Certification, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 5 application: four processes, messages m0..m3, with P3, m2
    // and m3 declared frozen by the designer, tolerating k = 2 transient
    // faults per cycle.
    let (app, arch, transparency) = samples::fig5();
    let nodes = arch.node_count();
    let platform = Platform::new(arch, TdmaBus::uniform(nodes, Time::new(8))?)?;
    let fault_model = FaultModel::new(2);

    println!("application: {} processes, {} messages", app.process_count(), app.message_count());
    println!("fault model: {fault_model}, deadline {}", app.deadline());
    println!();

    let psi =
        synthesize_system(&app, &platform, fault_model, &transparency, FlowConfig::default())?;

    println!("policy assignment F:");
    for (pid, policy) in psi.policies.iter() {
        println!(
            "  {:<4} {:?}  (Q={}, tolerates {} faults)",
            app.process(pid).name(),
            policy.kind(),
            policy.replica_count(),
            policy.tolerated_faults(),
        );
    }
    println!();
    println!("mapping M:");
    for (pid, node) in psi.mapping.iter() {
        println!("  {:<4} -> N{}", app.process(pid).name(), node.index());
    }
    println!();

    let exact = psi.exact.as_ref().expect("fig5 is small enough for exact tables");
    println!(
        "FT-CPG: {} nodes, {} edges, {} conditions",
        exact.cpg.node_count(),
        exact.cpg.edge_count(),
        exact.cpg.conditional_nodes().count()
    );
    println!(
        "worst-case schedule length: {} (deadline {}) => schedulable: {}",
        psi.worst_case_length(),
        app.deadline(),
        psi.schedulable
    );
    // The certify-and-repair contract (PR 4): what ships is certified on
    // the exact conditional schedule or explicitly tagged.
    match psi.certification {
        Certification::Certified { exact_len } => println!(
            "certification: exact schedule length {exact_len} meets the deadline \
             ({} repair rounds, calibration {:.3}x)",
            psi.repair_rounds,
            psi.calibration_milli as f64 / 1000.0,
        ),
        Certification::Refuted { exact_len } => {
            println!("certification: REFUTED — exact schedule length {exact_len}")
        }
        Certification::Uncertifiable => {
            println!("certification: skipped (FT-CPG over the size budget; estimate-only)")
        }
    }
    println!();
    println!("{}", exact.tables.render(&exact.cpg));
    Ok(())
}
