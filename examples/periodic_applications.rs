//! Multiple periodic applications merged into one hyper-period virtual
//! application (paper §4), then synthesized fault-tolerantly: a 20 ms
//! control loop co-scheduled with a 40 ms monitoring task set, tolerating
//! one transient fault per hyper-period.
//!
//! Run with: `cargo run --example periodic_applications`

use ftes::model::{
    merge_applications, ApplicationBuilder, FaultModel, ProcessSpec, Time, Transparency,
};
use ftes::tdma::Platform;
use ftes::{synthesize_system, FlowConfig};

fn control_loop() -> Result<ftes::model::Application, Box<dyn std::error::Error>> {
    // sense -> compute -> actuate, period/deadline 200.
    let mut b = ApplicationBuilder::new(2);
    let oh = |s: ProcessSpec| s.overheads(Time::new(2), Time::new(2), Time::new(1));
    let sense =
        b.add_process(oh(ProcessSpec::new("sense", [Some(Time::new(10)), Some(Time::new(14))])));
    let compute =
        b.add_process(oh(ProcessSpec::new("compute", [Some(Time::new(25)), Some(Time::new(30))])));
    let actuate = b.add_process(oh(ProcessSpec::new(
        "actuate",
        [Some(Time::new(8)), None], // the actuator driver must sit on N0
    )));
    b.add_message("c1", sense, compute, Time::new(2))?;
    b.add_message("c2", compute, actuate, Time::new(2))?;
    Ok(b.deadline(Time::new(200)).period(Time::new(200)).build()?)
}

fn monitor() -> Result<ftes::model::Application, Box<dyn std::error::Error>> {
    // log <- aggregate <- probe, period/deadline 400.
    let mut b = ApplicationBuilder::new(2);
    let oh = |s: ProcessSpec| s.overheads(Time::new(3), Time::new(3), Time::new(2));
    let probe = b.add_process(oh(ProcessSpec::uniform("probe", Time::new(12), 2)));
    let aggregate = b.add_process(oh(ProcessSpec::uniform("aggregate", Time::new(20), 2)));
    let log = b.add_process(oh(ProcessSpec::uniform("log", Time::new(10), 2)));
    b.add_message("g1", probe, aggregate, Time::new(2))?;
    b.add_message("g2", aggregate, log, Time::new(2))?;
    Ok(b.deadline(Time::new(400)).period(Time::new(400)).build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let merged = merge_applications(&[control_loop()?, monitor()?])?;
    println!(
        "hyper-period application: {} processes / {} messages, period {} (2 control instances + 1 monitor)",
        merged.process_count(),
        merged.message_count(),
        merged.period()
    );
    for (pid, p) in merged.processes() {
        let _ = pid;
        println!(
            "  {:<12} release {:>3}, local deadline {:>3}",
            p.name(),
            p.release(),
            p.local_deadline().map(|d| d.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    println!();

    let platform = Platform::homogeneous(2, Time::new(8))?;
    let psi = synthesize_system(
        &merged,
        &platform,
        FaultModel::new(1),
        &Transparency::none(),
        FlowConfig::default(),
    )?;
    println!(
        "synthesized: worst-case length {} vs hyper-period {} => schedulable: {}",
        psi.worst_case_length(),
        merged.deadline(),
        psi.schedulable
    );
    for (pid, policy) in psi.policies.iter() {
        println!(
            "  {:<12} {:?} on N{}",
            merged.process(pid).name(),
            policy.kind(),
            psi.mapping.node_of(pid).index()
        );
    }
    Ok(())
}
