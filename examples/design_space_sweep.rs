//! A miniature of the paper's §6 evaluation: sweep random applications,
//! synthesize with all four strategies (MXR / MX / MR / SFX) and with the
//! two checkpointing optimizations (local \[27\] vs global \[15\]), and print
//! the fault-tolerance overheads. The full-scale figures are produced by
//! the `ftes-bench` binaries.
//!
//! Run with: `cargo run --release --example design_space_sweep`

use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{Mapping, Time};
use ftes::opt::{compare_checkpointing, synthesize, SearchConfig, Strategy};
use ftes::tdma::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 3;
    let nodes = 3;
    let platform = Platform::homogeneous(nodes, Time::new(8))?;
    let search = SearchConfig { iterations: 60, ..SearchConfig::default() };

    println!("== policy assignment strategies (k = {k}, {nodes} nodes) ==");
    println!("{:>9} | {:>8} {:>8} {:>8} {:>8}", "processes", "MXR", "MX", "MR", "SFX");
    for n in [15, 25, 35] {
        let mut row = Vec::new();
        for strategy in [Strategy::Mxr, Strategy::Mx, Strategy::Mr, Strategy::Sfx] {
            let mut total = 0f64;
            let runs = 3;
            for seed in 0..runs {
                let app = generate_application(&GeneratorConfig::new(n, nodes), seed)?;
                let s = synthesize(&app, &platform, k, strategy, search)?;
                total += s.estimate.worst_case_length.as_f64();
            }
            row.push(total / runs as f64);
        }
        println!(
            "{n:>9} | {:>8.0} {:>8.0} {:>8.0} {:>8.0}   (avg worst-case length)",
            row[0], row[1], row[2], row[3]
        );
    }
    println!();

    println!("== checkpoint optimization: global [15] vs per-process local [27] ==");
    println!("{:>9} | {:>12}", "processes", "improvement");
    for n in [20, 30, 40] {
        let mut total = 0f64;
        let runs = 3;
        for seed in 0..runs {
            let app = generate_application(&GeneratorConfig::new(n, nodes), seed)?;
            let mapping = Mapping::cheapest(&app, platform.architecture())?;
            let cmp = compare_checkpointing(&app, &platform, mapping, k, 16)?;
            total += cmp.improvement_percent();
        }
        println!("{n:>9} | {:>11.2}%", total / runs as f64);
    }
    Ok(())
}
