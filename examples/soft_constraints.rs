//! Soft/hard time-constraint mix (the \[17\] extension): hard control
//! processes get full k-fault guarantees; soft quality-of-service processes
//! (diagnostics, logging, adaptive tuning) are placed into the leftover
//! capacity to maximize utility, never interfering with hard recoveries.
//!
//! Run with: `cargo run --example soft_constraints`

use ftes::ft::PolicyAssignment;
use ftes::ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
use ftes::model::{
    ApplicationBuilder, Architecture, FaultModel, Mapping, ProcessSpec, Time, Transparency,
};
use ftes::sched::{schedule_ftcpg, SchedConfig};
use ftes::soft::{place_soft, SoftProcess, UtilityFn};
use ftes::tdma::{Platform, TdmaBus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let oh = |s: ProcessSpec| s.overheads(Time::new(2), Time::new(2), Time::new(1));

    // The full application: a hard control chain plus three soft services.
    let mut b = ApplicationBuilder::new(2);
    let sense = b.add_process(oh(ProcessSpec::uniform("sense", Time::new(12), 2)));
    let control = b.add_process(oh(ProcessSpec::uniform("control", Time::new(25), 2)));
    let actuate = b.add_process(oh(ProcessSpec::uniform("actuate", Time::new(10), 2)));
    let diag = b.add_process(oh(ProcessSpec::uniform("diag", Time::new(18), 2)));
    let log = b.add_process(oh(ProcessSpec::uniform("log", Time::new(12), 2)));
    let tune = b.add_process(oh(ProcessSpec::uniform("tune", Time::new(30), 2)));
    b.add_message("m1", sense, control, Time::new(2))?;
    b.add_message("m2", control, actuate, Time::new(2))?;
    b.add_message("m3", diag, log, Time::new(2))?; // soft chain
    let app = b.deadline(Time::new(500)).build()?;

    // Hard sub-application (same structure, hard processes only).
    let mut hb = ApplicationBuilder::new(2);
    let h0 = hb.add_process(oh(ProcessSpec::uniform("sense", Time::new(12), 2)));
    let h1 = hb.add_process(oh(ProcessSpec::uniform("control", Time::new(25), 2)));
    let h2 = hb.add_process(oh(ProcessSpec::uniform("actuate", Time::new(10), 2)));
    hb.add_message("m1", h0, h1, Time::new(2))?;
    hb.add_message("m2", h1, h2, Time::new(2))?;
    let hard = hb.deadline(Time::new(500)).build()?;

    // Synthesize the hard part for k = 2.
    let arch = Architecture::homogeneous(2)?;
    let mapping = Mapping::cheapest(&hard, &arch)?;
    let policies = PolicyAssignment::uniform_reexecution(&hard, 2);
    let copies = CopyMapping::from_base(&hard, &arch, &mapping, &policies)?;
    let cpg = build_ftcpg(
        &hard,
        &policies,
        &copies,
        FaultModel::new(2),
        &Transparency::none(),
        BuildConfig::default(),
    )?;
    let platform = Platform::new(arch, TdmaBus::uniform(2, Time::new(8))?)?;
    let schedule = schedule_ftcpg(&hard, &cpg, &platform, SchedConfig::default())?;
    println!(
        "hard schedule: worst case {} (deadline {}), {} conditions",
        schedule.length(),
        hard.deadline(),
        cpg.conditional_nodes().count()
    );

    // Soft services with utility windows.
    let soft = vec![
        SoftProcess { process: diag, utility: UtilityFn::new(80, Time::new(120), Time::new(400))? },
        SoftProcess { process: log, utility: UtilityFn::new(40, Time::new(200), Time::new(450))? },
        SoftProcess { process: tune, utility: UtilityFn::new(120, Time::new(90), Time::new(250))? },
    ];

    let out = place_soft(&app, &soft, 2, &cpg, &schedule)?;
    println!(
        "\nsoft placement: utility {}/{} ({:.0}%), {} placed, {} dropped",
        out.total_utility,
        out.max_utility,
        100.0 * out.utility_ratio(),
        out.placements.len(),
        out.dropped.len()
    );
    for p in &out.placements {
        println!(
            "  {:<6} on N{} at [{}, {})  -> utility {}",
            app.process(p.process).name(),
            p.node.index(),
            p.start,
            p.end,
            p.utility
        );
    }
    for d in &out.dropped {
        println!("  {:<6} dropped (no slot with positive utility)", app.process(*d).name());
    }
    Ok(())
}
