//! Case study: an adaptive cruise controller on three ECUs sharing a
//! TTP-style bus — the application class the paper targets (hard real-time,
//! safety-critical, transient-fault exposed automotive electronics).
//!
//! The application has 12 processes: wheel/radar/pedal sensing pinned to
//! their ECUs, fusion and control laws free to map, and actuation pinned to
//! the throttle/brake ECUs. The brake path is declared frozen (transparent)
//! so that fault handling elsewhere never changes its timing — the §3.3
//! debugability argument applied where a designer actually would.
//!
//! Run with: `cargo run --release --example cruise_control`

use ftes::ftcpg::analysis::cpg_stats;
use ftes::model::{
    stats::app_stats, ApplicationBuilder, FaultModel, NodeId, ProcessSpec, Time, Transparency,
};
use ftes::sched::export::{scenario_timeline, timeline_to_ascii};
use ftes::sim::{scenario_stats, verify_exhaustive};
use ftes::tdma::{Platform, TdmaBus};
use ftes::{synthesize_system, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ECU0: chassis (wheel sensors, brake), ECU1: front radar + fusion,
    // ECU2: powertrain (pedal, throttle).
    let mut b = ApplicationBuilder::new(3);
    let oh = |s: ProcessSpec| s.overheads(Time::new(2), Time::new(3), Time::new(1));
    let t = |v: i64| Some(Time::new(v));

    let wheel = b.add_process(
        oh(ProcessSpec::new("wheel_spd", [t(8), None, None])).fixed_node(NodeId::new(0)),
    );
    let radar = b
        .add_process(oh(ProcessSpec::new("radar", [None, t(14), None])).fixed_node(NodeId::new(1)));
    let pedal =
        b.add_process(oh(ProcessSpec::new("pedal", [None, None, t(6)])).fixed_node(NodeId::new(2)));
    let filter_w = b.add_process(oh(ProcessSpec::new("filt_wheel", [t(10), t(12), t(12)])));
    let track = b.add_process(oh(ProcessSpec::new("track_obj", [t(22), t(18), t(22)])));
    let fusion = b.add_process(oh(ProcessSpec::new("fusion", [t(16), t(14), t(16)])));
    let speed_ctl = b.add_process(oh(ProcessSpec::new("speed_ctl", [t(20), t(20), t(18)])));
    let dist_ctl = b.add_process(oh(ProcessSpec::new("dist_ctl", [t(18), t(16), t(18)])));
    let arbiter = b.add_process(oh(ProcessSpec::new("arbiter", [t(9), t(9), t(9)])));
    let throttle = b.add_process(
        oh(ProcessSpec::new("throttle", [None, None, t(7)])).fixed_node(NodeId::new(2)),
    );
    let brake_calc = b.add_process(oh(ProcessSpec::new("brake_calc", [t(12), t(14), t(14)])));
    let brake_act = b.add_process(
        oh(ProcessSpec::new("brake_act", [t(6), None, None])).fixed_node(NodeId::new(0)),
    );

    let mut mid = 0;
    let mut msg = |b: &mut ApplicationBuilder, s, d| {
        mid += 1;
        b.add_message(format!("c{mid}"), s, d, Time::new(2)).expect("edge")
    };
    msg(&mut b, wheel, filter_w);
    msg(&mut b, radar, track);
    msg(&mut b, filter_w, fusion);
    msg(&mut b, track, fusion);
    msg(&mut b, pedal, speed_ctl);
    msg(&mut b, fusion, speed_ctl);
    msg(&mut b, fusion, dist_ctl);
    msg(&mut b, speed_ctl, arbiter);
    msg(&mut b, dist_ctl, arbiter);
    msg(&mut b, arbiter, throttle);
    let to_brake = msg(&mut b, arbiter, brake_calc);
    let brake_cmd = msg(&mut b, brake_calc, brake_act);

    let app = b.deadline(Time::new(600)).period(Time::new(600)).build()?;

    // Freeze the brake path: its activation must be identical in every
    // fault scenario of the rest of the system.
    let mut transparency = Transparency::none();
    transparency
        .freeze_process(brake_calc)
        .freeze_process(brake_act)
        .freeze_message(to_brake)
        .freeze_message(brake_cmd);

    let s = app_stats(&app);
    println!(
        "cruise controller: {} processes / {} messages, depth {}, critical path {}, parallelism {:.2}",
        s.processes, s.messages, s.depth, s.critical_path, s.parallelism
    );

    let platform = Platform::new(
        ftes::model::Architecture::new(["chassis", "radar-ecu", "powertrain"])?,
        TdmaBus::uniform(3, Time::new(6))?,
    )?;
    let fault_model = FaultModel::new(2);
    let psi =
        synthesize_system(&app, &platform, fault_model, &transparency, FlowConfig::default())?;

    println!("\npolicy assignment (k = {}):", fault_model.k());
    for (pid, policy) in psi.policies.iter() {
        println!(
            "  {:<11} {:?} on N{}{}",
            app.process(pid).name(),
            policy.kind(),
            psi.mapping.node_of(pid).index(),
            if app.process(pid).fixed_node().is_some() { "  (pinned)" } else { "" }
        );
    }
    let exact = psi.exact.as_ref().expect("12 processes fit the exact scheduler");
    let g = cpg_stats(&exact.cpg);
    println!(
        "\nFT-CPG: {} nodes / {} edges, {} conditions, {} sync nodes, {} scenarios",
        g.nodes, g.edges, g.conditionals, g.sync_nodes, g.scenarios
    );
    println!(
        "worst-case length {} vs deadline {} => schedulable: {}",
        psi.worst_case_length(),
        app.deadline(),
        psi.schedulable
    );

    let verdict = verify_exhaustive(&app, &exact.cpg, &exact.schedule, &transparency, 5_000_000)?;
    println!(
        "fault injection: {} scenarios replayed, worst makespan {}, sound: {}",
        verdict.scenarios,
        verdict.worst_makespan,
        verdict.is_sound()
    );
    let stats = scenario_stats(&app, &exact.cpg, &exact.schedule, 5_000_000)?;
    println!(
        "makespan: min {} / mean {} / max {} (spread {:.0}%)",
        stats.makespan.min,
        stats.makespan.mean,
        stats.makespan.max,
        100.0 * stats.makespan_spread()
    );

    println!("\nfault-free timeline:");
    let bars =
        scenario_timeline(&exact.cpg, &exact.schedule, &ftes::ftcpg::FaultScenario::fault_free());
    print!("{}", timeline_to_ascii(&bars, 72));
    Ok(())
}
