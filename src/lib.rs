//! Facade crate: re-exports the `ftes` workspace API at the repo root.
#![forbid(unsafe_code)]
pub use ftes::*;
