pub use ftes::*;
