//! The tentpole guarantee of the evaluation kernel: on random
//! applications, platforms and move sequences, `SystemEvaluator::evaluate`
//! (reused, warm buffers) and `SystemEvaluator::delta_evaluate` (suffix
//! re-scheduling off an anchored base) both equal a fresh
//! `estimate_schedule_length` run **bit-for-bit** — same `Estimate`
//! (including the critical process), same error on infeasible states — for
//! every fault budget k ∈ {0..3}.
//!
//! Moves are enumerated deterministically from the generated seed (no RNG
//! in the test itself), mixing remaps and repolicies exactly like the
//! search engines' neighborhood vocabulary.
//!
//! A second property extends the same discipline to the batch tier:
//! `SystemEvaluator::evaluate_batch` over random neighborhoods must equal
//! sequential `delta_evaluate` calls bit-for-bit — results and errors, in
//! input order — with and without an anchored base.

use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{Application, Mapping, NodeId, ProcessId, Time};
use ftes::opt::{apply_move, candidate_policies, CandidateMove};
use ftes::sched::{estimate_schedule_length, SystemEvaluator};
use ftes::tdma::Platform;
use proptest::prelude::*;

/// Deterministic move for one step of the walk: even steps remap, odd
/// steps repolicy, indices rotated by `seed` so different cases take
/// different trajectories.
fn step_move(
    app: &Application,
    mapping: &Mapping,
    k: u32,
    seed: u64,
    step: u64,
) -> Option<CandidateMove> {
    let n = app.process_count() as u64;
    let p = ProcessId::new(((seed.wrapping_mul(31) + step.wrapping_mul(7)) % n) as usize);
    if step.is_multiple_of(2) {
        let proc = app.process(p);
        if proc.fixed_node().is_some() {
            return None;
        }
        let nodes: Vec<NodeId> = proc.candidate_nodes().collect();
        if nodes.len() < 2 {
            return None;
        }
        let to = nodes[((seed + step / 2) % nodes.len() as u64) as usize];
        if to == mapping.node_of(p) {
            return None;
        }
        Some(CandidateMove::Remap { process: p, to })
    } else {
        let cands = candidate_policies(app, p, k, 8);
        let policy = cands[((seed + step) % cands.len() as u64) as usize].clone();
        Some(CandidateMove::Repolicy { process: p, policy })
    }
}

proptest! {
    #[test]
    fn full_delta_and_legacy_agree_along_random_walks(
        seed in 0u64..1000,
        n in 6usize..13,
        nodes in 2usize..4,
    ) {
        // Rotate through graph shapes: default (√n layers), chain-heavy
        // (deep precedence, the replication regime) and wide (parallel
        // slack, the resource-contention regime).
        let config = match seed % 3 {
            0 => GeneratorConfig::new(n, nodes),
            1 => GeneratorConfig::chainy(n, nodes),
            _ => GeneratorConfig::wide(n, nodes),
        };
        let app = generate_application(&config, seed)
            .expect("generator configs in range are valid");
        let platform = Platform::homogeneous(nodes, Time::new(8)).expect("non-empty platform");
        let arch = platform.architecture();

        for k in 0u32..=3 {
            let mut mapping = Mapping::cheapest(&app, arch).expect("generated apps are mappable");
            let mut policies = PolicyAssignment::uniform_reexecution(&app, k);

            // One evaluator reused for full evaluations, one driven purely
            // through the delta path off its anchored base.
            let mut full_eval = SystemEvaluator::new(&app, &platform, k);
            let mut delta_eval = SystemEvaluator::new(&app, &platform, k);
            let copies = CopyMapping::from_base(&app, arch, &mapping, &policies)
                .expect("re-execution placement is feasible");
            let initial = estimate_schedule_length(&app, &platform, &copies, &policies, k);
            prop_assert_eq!(&full_eval.evaluate(&copies, &policies), &initial);
            prop_assert_eq!(&delta_eval.evaluate(&copies, &policies), &initial);

            for step in 0..10u64 {
                let Some(mv) = step_move(&app, &mapping, k, seed, step) else { continue };
                let Some((next_mapping, next_policies)) =
                    apply_move(&app, arch, &mapping, &policies, &mv)
                else {
                    continue;
                };
                let Ok(copies) = CopyMapping::from_base(&app, arch, &next_mapping, &next_policies)
                else {
                    continue;
                };

                let legacy =
                    estimate_schedule_length(&app, &platform, &copies, &next_policies, k);
                let full = full_eval.evaluate(&copies, &next_policies);
                let delta = delta_eval.delta_evaluate(&copies, &next_policies);
                prop_assert_eq!(
                    &full, &legacy,
                    "reused full evaluation diverged (k={}, step={}, move={:?})", k, step, mv
                );
                prop_assert_eq!(
                    &delta, &legacy,
                    "delta evaluation diverged (k={}, step={}, move={:?})", k, step, mv
                );

                if legacy.is_ok() {
                    // Accept the move: re-anchor the delta kernel at the
                    // new current state, as the search engines do.
                    mapping = next_mapping;
                    policies = next_policies;
                    prop_assert_eq!(&delta_eval.evaluate(&copies, &policies), &legacy);
                }
            }
            // The walk must actually exercise the delta machinery.
            let stats = delta_eval.stats();
            prop_assert!(
                stats.delta_evals + stats.delta_noops + stats.delta_fallbacks > 0,
                "no delta calls happened (k={})", k
            );
        }
    }

    /// Batch-path guarantee: `evaluate_batch` over a random neighborhood is
    /// bit-for-bit equal — results *and* errors, in input order — to
    /// sequential `delta_evaluate` calls on an identically anchored kernel.
    /// The neighborhood deliberately mixes remaps, repolicies, the base
    /// state itself (a noop) and, when k > 0, an invalid policy assignment
    /// (a validate error), so every batch code path is compared.
    #[test]
    fn batch_equals_sequential_delta_on_random_neighborhoods(
        seed in 0u64..1000,
        n in 6usize..13,
        nodes in 2usize..4,
    ) {
        let config = match seed % 3 {
            0 => GeneratorConfig::new(n, nodes),
            1 => GeneratorConfig::chainy(n, nodes),
            _ => GeneratorConfig::wide(n, nodes),
        };
        let app = generate_application(&config, seed)
            .expect("generator configs in range are valid");
        let platform = Platform::homogeneous(nodes, Time::new(8)).expect("non-empty platform");
        let arch = platform.architecture();

        for k in 0u32..=3 {
            let mapping = Mapping::cheapest(&app, arch).expect("generated apps are mappable");
            let policies = PolicyAssignment::uniform_reexecution(&app, k);
            let base_copies = CopyMapping::from_base(&app, arch, &mapping, &policies)
                .expect("re-execution placement is feasible");

            // Build the neighborhood from the same deterministic move
            // vocabulary as the walk test.
            let mut neighborhood: Vec<(CopyMapping, PolicyAssignment)> = Vec::new();
            for step in 0..12u64 {
                let Some(mv) = step_move(&app, &mapping, k, seed, step) else { continue };
                let Some((m, p)) = apply_move(&app, arch, &mapping, &policies, &mv) else {
                    continue;
                };
                let Ok(copies) = CopyMapping::from_base(&app, arch, &m, &p) else { continue };
                neighborhood.push((copies, p));
            }
            // The base state itself: the batch must answer it as a noop.
            neighborhood.insert(neighborhood.len() / 2, (base_copies.clone(), policies.clone()));
            if k > 0 {
                // An invalid assignment (tolerates 0 < k faults): both
                // paths must surface the same validate error.
                let bad = PolicyAssignment::uniform_reexecution(&app, 0);
                let bad_copies = CopyMapping::from_base(&app, arch, &mapping, &bad)
                    .expect("re-execution placement is feasible");
                neighborhood.insert(1, (bad_copies, bad));
            }

            // Anchored batch kernel vs. an identically anchored sequential
            // kernel (whose base may drift through fallback re-anchoring —
            // estimates are pure functions of the candidate state, so the
            // batch must still match it value-for-value).
            let mut batch_eval = SystemEvaluator::new(&app, &platform, k);
            let mut seq_eval = SystemEvaluator::new(&app, &platform, k);
            prop_assert_eq!(
                &batch_eval.evaluate(&base_copies, &policies),
                &seq_eval.evaluate(&base_copies, &policies)
            );

            let refs: Vec<(&CopyMapping, &PolicyAssignment)> =
                neighborhood.iter().map(|(c, p)| (c, p)).collect();
            let batch = batch_eval.evaluate_batch(&refs);
            prop_assert_eq!(batch.len(), neighborhood.len());

            for (i, (copies, pols)) in neighborhood.iter().enumerate() {
                let sequential = seq_eval.delta_evaluate(copies, pols);
                prop_assert_eq!(
                    &batch[i], &sequential,
                    "batch diverged from sequential delta (k={}, candidate={})", k, i
                );
            }

            // A no-base batch must equal the sequential fallback path too.
            let mut cold_batch = SystemEvaluator::new(&app, &platform, k);
            let cold = cold_batch.evaluate_batch(&refs);
            for (i, (copies, pols)) in neighborhood.iter().enumerate() {
                // Fresh kernel per candidate: the cold batch never anchors,
                // so each sequential comparison starts from no base as well.
                let mut fresh = SystemEvaluator::new(&app, &platform, k);
                prop_assert_eq!(
                    &cold[i], &fresh.delta_evaluate(copies, pols),
                    "cold batch diverged from no-base fallback (k={}, candidate={})", k, i
                );
            }

            // The batch must exercise the batch counters.
            let stats = batch_eval.stats();
            prop_assert_eq!(stats.batch_evals, 1);
            prop_assert_eq!(stats.batch_candidates, neighborhood.len() as u64);
        }
    }
}
