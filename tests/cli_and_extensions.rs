//! Integration tests of the adoption-facing layers: the `.ftes` spec
//! format, the bus-access optimization and the soft-constraint extension
//! running against synthesized systems.

use ftes::ft::PolicyAssignment;
use ftes::model::Mapping;
use ftes::opt::{optimize_bus, BusOptConfig};
use ftes::{synthesize_system, FlowConfig};
use ftes_cli::{parse_spec, FIG5_SPEC};

/// The shipped cruise-controller spec parses and synthesizes end to end.
#[test]
fn shipped_cruise_spec_synthesizes() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/cruise.ftes"),
    )
    .expect("spec file ships with the repository");
    let spec = parse_spec(&text).expect("spec parses");
    assert_eq!(spec.app.process_count(), 12);
    assert_eq!(spec.app.message_count(), 12);
    assert_eq!(spec.fault_model.k(), 2);
    let psi = synthesize_system(
        &spec.app,
        &spec.platform,
        spec.fault_model,
        &spec.transparency,
        FlowConfig { strategy: spec.strategy, ..FlowConfig::default() },
    )
    .expect("synthesis succeeds");
    assert!(psi.schedulable, "the shipped spec must be schedulable");
    // Pinned processes stay pinned.
    for (pid, p) in spec.app.processes() {
        if let Some(fixed) = p.fixed_node() {
            assert_eq!(psi.mapping.node_of(pid), fixed);
        }
    }
}

/// The built-in demo spec (Fig. 5) is schedulable and its frozen entities
/// survive into the synthesized tables.
#[test]
fn demo_spec_round_trips() {
    let spec = parse_spec(FIG5_SPEC).expect("demo parses");
    let psi = synthesize_system(
        &spec.app,
        &spec.platform,
        spec.fault_model,
        &spec.transparency,
        FlowConfig { strategy: spec.strategy, ..FlowConfig::default() },
    )
    .expect("synthesis succeeds");
    assert!(psi.schedulable);
    let exact = psi.exact.expect("fig5 gets exact tables");
    assert!(exact.cpg.sync_nodes().count() >= 3, "P3^S, m2^S, m3^S survive");
}

/// Bus-access optimization composes with the parsed platform.
#[test]
fn bus_optimization_on_parsed_spec() {
    let spec = parse_spec(FIG5_SPEC).expect("demo parses");
    let mapping = Mapping::cheapest(&spec.app, spec.platform.architecture()).expect("mappable");
    let policies = PolicyAssignment::uniform_reexecution(&spec.app, spec.fault_model.k());
    let out = optimize_bus(
        &spec.app,
        &spec.platform,
        mapping,
        policies,
        spec.fault_model.k(),
        BusOptConfig::default(),
    )
    .expect("bus optimization runs");
    assert!(out.estimate.estimate.worst_case_length <= out.initial_worst_case);
}
