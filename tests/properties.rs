//! Property-based tests of the core invariants, spanning crates.

use ftes::ft::{PolicyAssignment, RecoveryScheme};
use ftes::ftcpg::{build_ftcpg, enumerate_scenarios, BuildConfig, CopyMapping, Guard, Literal};
use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{FaultModel, Mapping, Time, Transparency};
use ftes::sched::{schedule_ftcpg, SchedConfig};
use ftes::sim::simulate;
use ftes::tdma::{Platform, TdmaBus};
use proptest::prelude::*;

fn guard_strategy() -> impl Strategy<Value = Guard> {
    // Up to 5 literals over 8 condition variables, consistent by
    // construction (one polarity per variable).
    proptest::collection::btree_map(0usize..8, any::<bool>(), 0..5).prop_map(|m| {
        Guard::of(
            m.into_iter().map(|(v, f)| Literal { cond: ftes::ftcpg::CpgNodeId::new(v), fault: f }),
        )
    })
}

proptest! {
    /// Guard exclusivity is symmetric and irreflexive; conjunction is
    /// commutative; implication is reflexive and consistent with `and`.
    #[test]
    fn guard_algebra(a in guard_strategy(), b in guard_strategy()) {
        prop_assert_eq!(a.excludes(&b), b.excludes(&a), "exclusion is symmetric");
        prop_assert!(!a.excludes(&a), "a guard never excludes itself");
        prop_assert_eq!(a.and(&b), b.and(&a), "conjunction is commutative");
        prop_assert!(a.implies(&a));
        if let Some(ab) = a.and(&b) {
            prop_assert!(ab.implies(&a) && ab.implies(&b));
            prop_assert_eq!(
                ab.fault_count() as usize,
                ab.literals().iter().filter(|l| l.fault).count()
            );
        }
    }

    /// W(x, h) is monotone in the fault count and bounded below by E(x);
    /// the closed-form local optimum matches an exhaustive scan.
    #[test]
    fn recovery_algebra(
        c in 1i64..500,
        alpha in 0i64..50,
        mu in 0i64..50,
        chi in 0i64..50,
        h in 0u32..8,
        x in 0u32..12,
    ) {
        let s = RecoveryScheme::new(
            Time::new(c), Time::new(alpha), Time::new(mu), Time::new(chi),
        ).expect("positive wcet");
        prop_assert!(s.worst_case_time(x, h) >= s.fault_free_time(x));
        prop_assert!(s.worst_case_time(x, h + 1) > s.worst_case_time(x, h));
        if h > 0 && alpha + chi > 0 {
            let best = s.optimal_checkpoints_local(h, 32);
            let scan = (0..=32u32)
                .min_by_key(|&n| (s.worst_case_time(n, h), n))
                .expect("non-empty");
            prop_assert_eq!(s.worst_case_time(best, h), s.worst_case_time(scan, h));
        }
    }

    /// Every generated application yields a structurally sound FT-CPG:
    /// acyclic edges, guards within the budget, scenario census bounded by
    /// the product of chain lengths, all scenarios consistent.
    #[test]
    fn generated_ftcpgs_are_sound(seed in 0u64..30, n in 4usize..10, k in 0u32..3) {
        let config = GeneratorConfig::new(n, 2);
        let app = generate_application(&config, seed).expect("generated");
        let arch = ftes::model::Architecture::homogeneous(2).expect("arch");
        let mapping = Mapping::cheapest(&app, &arch).expect("mapping");
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)
            .expect("placement");
        let cpg = build_ftcpg(
            &app, &policies, &copies, FaultModel::new(k),
            &Transparency::none(), BuildConfig::default(),
        ).expect("FT-CPG");
        prop_assert!(cpg.check_invariants().is_ok());
        let scenarios = enumerate_scenarios(&cpg, 1_000_000).expect("bounded");
        prop_assert!(!scenarios.is_empty());
        for s in &scenarios {
            prop_assert!(s.is_consistent(&cpg));
            prop_assert!(s.fault_count() <= k);
        }
    }

    /// For every generated instance and every fault scenario, the scheduled
    /// replay is causally sound, completes, and stays within the worst-case
    /// schedule length.
    #[test]
    fn schedules_sound_under_all_scenarios(seed in 0u64..15, k in 0u32..3) {
        let app = generate_application(&GeneratorConfig::new(6, 2), seed).expect("generated");
        let arch = ftes::model::Architecture::homogeneous(2).expect("arch");
        let mapping = Mapping::cheapest(&app, &arch).expect("mapping");
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)
            .expect("placement");
        let cpg = build_ftcpg(
            &app, &policies, &copies, FaultModel::new(k),
            &Transparency::none(), BuildConfig::default(),
        ).expect("FT-CPG");
        let platform = Platform::new(
            ftes::model::Architecture::homogeneous(2).expect("arch"),
            TdmaBus::uniform(2, Time::new(8)).expect("bus"),
        ).expect("platform");
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())
            .expect("schedulable");
        for scenario in enumerate_scenarios(&cpg, 200_000).expect("bounded") {
            let report = simulate(&app, &cpg, &schedule, scenario).expect("replay");
            prop_assert!(report.completed, "every scenario delivers");
            prop_assert!(report.makespan <= schedule.length());
        }
    }

    /// The TDMA bus window function is sound: windows start at or after the
    /// ready time, lie inside a slot of the sender, and are minimal with
    /// respect to one-unit earlier requests.
    #[test]
    fn tdma_windows_are_sound(
        nodes in 1usize..5,
        slot in 2i64..20,
        sender in 0usize..5,
        ready in 0i64..200,
        dur in 1i64..10,
    ) {
        prop_assume!(sender < nodes);
        prop_assume!(dur <= slot);
        let bus = TdmaBus::uniform(nodes, Time::new(slot)).expect("bus");
        let w = bus.next_window(
            ftes::model::NodeId::new(sender), Time::new(ready), Time::new(dur),
        ).expect("window exists");
        prop_assert!(w.start >= Time::new(ready));
        prop_assert_eq!(w.duration(), Time::new(dur));
        // The window lies within one slot occurrence of the sender.
        let round = bus.round_length().units();
        let offset = w.start.units().rem_euclid(round);
        let slot_start = (sender as i64) * slot;
        prop_assert!(offset >= slot_start && offset + dur <= slot_start + slot,
            "window [{},{}) inside slot", w.start, w.end);
    }

    /// Merged periodic applications preserve per-instance release/deadline
    /// windows and total process counts.
    #[test]
    fn hyperperiod_merge_is_consistent(p1 in 1i64..5, p2 in 1i64..5) {
        let make = |name: &str, period: i64| {
            let mut b = ftes::model::ApplicationBuilder::new(1);
            b.add_process(ftes::model::ProcessSpec::uniform(
                format!("{name}0"), Time::new(1), 1,
            ));
            b.deadline(Time::new(period)).period(Time::new(period)).build().expect("valid")
        };
        let a = make("a", p1 * 10);
        let b = make("b", p2 * 10);
        let merged = ftes::model::merge_applications(&[a, b]).expect("merged");
        let hyper = merged.period().units();
        prop_assert_eq!(hyper % (p1 * 10), 0);
        prop_assert_eq!(hyper % (p2 * 10), 0);
        let expected = hyper / (p1 * 10) + hyper / (p2 * 10);
        prop_assert_eq!(merged.process_count() as i64, expected);
        for (_, p) in merged.processes() {
            prop_assert!(p.release() < merged.period());
            prop_assert!(p.local_deadline().expect("window deadline") <= merged.period());
        }
    }
}

/// Brute-force adversary for [`ftes::sched::worst_case_delivery`]: try every
/// fault allocation explicitly.
fn brute_force_delivery(
    ladders: &[ftes::sched::ReplicaLadder],
    budget: u32,
) -> Option<ftes::model::Time> {
    fn rec(
        ladders: &[ftes::sched::ReplicaLadder],
        i: usize,
        budget: u32,
        alive_min: Option<ftes::model::Time>,
        worst: &mut Option<Option<ftes::model::Time>>,
    ) {
        if i == ladders.len() {
            // `None` alive_min = all dead; adversary prefers that outcome.
            let outcome = alive_min;
            *worst = Some(match worst.take() {
                None => outcome,
                Some(None) => None,
                Some(Some(w)) => outcome.map(|o| w.max(o)),
            });
            return;
        }
        let l = &ladders[i];
        for f in 0..=budget.min(l.ladder.len() as u32) {
            if (f as usize) < l.ladder.len() {
                let t = l.ladder[f as usize];
                let m = Some(alive_min.map_or(t, |a| a.min(t)));
                rec(ladders, i + 1, budget - f, m, worst);
            } else if l.killable {
                rec(ladders, i + 1, budget - f, alive_min, worst);
            }
        }
    }
    let mut worst = None;
    rec(ladders, 0, budget, None, &mut worst);
    worst.flatten()
}

proptest! {
    /// The join analysis matches a brute-force adversary on random replica
    /// sets.
    #[test]
    fn join_analysis_matches_brute_force(
        ladder_lens in proptest::collection::vec(1usize..4, 1..4),
        raw_times in proptest::collection::vec(1i64..300, 12),
        killable in proptest::collection::vec(any::<bool>(), 4),
        budget in 0u32..5,
    ) {
        let mut cursor = 0;
        let ladders: Vec<ftes::sched::ReplicaLadder> = ladder_lens
            .iter()
            .enumerate()
            .map(|(j, &len)| {
                let mut ladder: Vec<ftes::model::Time> = (0..len)
                    .map(|_| {
                        let t = raw_times[cursor % raw_times.len()];
                        cursor += 1;
                        Time::new(t)
                    })
                    .collect();
                ladder.sort();
                ftes::sched::ReplicaLadder { ladder, killable: killable[j % killable.len()] }
            })
            .collect();
        let fast = ftes::sched::worst_case_delivery(&ladders, budget);
        let brute = brute_force_delivery(&ladders, budget);
        prop_assert_eq!(fast, brute);
    }

    /// Schedule-table CSV export round-trips entry counts for generated
    /// systems, and every CSV line carries a valid node column.
    #[test]
    fn csv_export_is_complete(seed in 0u64..10) {
        let app = generate_application(&GeneratorConfig::new(6, 2), seed).expect("generated");
        let arch = ftes::model::Architecture::homogeneous(2).expect("arch");
        let mapping = Mapping::cheapest(&app, &arch).expect("mapping");
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).expect("placement");
        let cpg = build_ftcpg(
            &app, &policies, &copies, FaultModel::new(1),
            &Transparency::none(), BuildConfig::default(),
        ).expect("FT-CPG");
        let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())
            .expect("schedule");
        let tables = ftes::sched::ScheduleTables::new(&app, &cpg, &schedule, 2);
        let csv = ftes::sched::export::tables_to_csv(&tables, &cpg);
        prop_assert_eq!(csv.lines().count(), tables.entry_count() + 1);
        for line in csv.lines().skip(1) {
            prop_assert!(line.starts_with("N0,") || line.starts_with("N1,"));
        }
    }

    /// Scenario counting matches enumeration on generated FT-CPGs.
    #[test]
    fn scenario_count_matches_enumeration(seed in 0u64..12, k in 0u32..3) {
        let app = generate_application(&GeneratorConfig::new(6, 2), seed).expect("generated");
        let arch = ftes::model::Architecture::homogeneous(2).expect("arch");
        let mapping = Mapping::cheapest(&app, &arch).expect("mapping");
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).expect("placement");
        let cpg = build_ftcpg(
            &app, &policies, &copies, FaultModel::new(k),
            &Transparency::none(), BuildConfig::default(),
        ).expect("FT-CPG");
        let counted = ftes::ftcpg::count_scenarios(&cpg);
        let listed = enumerate_scenarios(&cpg, 10_000_000).expect("bounded").len();
        prop_assert_eq!(counted, listed as u128);
    }
}
