//! End-to-end reproduction of the paper's worked examples (Fig. 1–6).

use ftes::ft::{CopyPlan, Policy, PolicyAssignment, RecoveryScheme};
use ftes::ftcpg::{build_ftcpg, enumerate_scenarios, BuildConfig, CopyMapping};
use ftes::model::{samples, FaultModel, Mapping, MessageId, ProcessId, Time};
use ftes::sched::{schedule_ftcpg, SchedConfig, ScheduleTables};
use ftes::sim::verify_exhaustive;
use ftes::tdma::{Platform, TdmaBus};

/// Fig. 1: rollback recovery timing on P1 (C=60, α=10, µ=10, χ=5).
#[test]
fn fig1_recovery_timing() {
    let s = RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5))
        .expect("valid scheme");
    assert_eq!(s.fault_free_time(2), Time::new(90), "Fig. 1b");
    assert_eq!(s.worst_case_time(2, 1), Time::new(130), "Fig. 1c");
}

/// Fig. 2: active replication completes at C+α regardless of a single
/// fault; primary-backup doubles under a fault.
#[test]
fn fig2_replication_timing() {
    let s = RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5))
        .expect("valid scheme");
    let cmp = ftes::ft::replication::fig2_comparison(s).expect("two replicas tolerate one fault");
    assert_eq!(cmp.active_no_fault, Time::new(70));
    assert_eq!(cmp.active_one_fault, Time::new(70));
    assert_eq!(cmp.passive_no_fault, Time::new(70));
    assert_eq!(cmp.passive_one_fault, Time::new(140));
}

/// Fig. 4: the three canonical policy assignments for k = 2.
#[test]
fn fig4_policy_combinations() {
    let k = 2;
    let a = Policy::checkpointing(k, 3);
    let b = Policy::replication(k);
    let c = Policy::from_copies(vec![CopyPlan::plain(), CopyPlan::checkpointed(1, 2)])
        .expect("two copies");
    for p in [&a, &b, &c] {
        assert!(p.tolerates(k));
    }
    assert_eq!(b.copies().len(), 3, "three replicas as in Fig. 4b");
    assert_eq!(c.replica_count(), 1, "Q = 1 as in Fig. 4c");
    assert_eq!(c.copies()[1].recoveries, 1, "R(P1(2)) = 1 as in Fig. 4c");
}

fn fig5_system() -> (
    ftes::model::Application,
    ftes::ftcpg::FtCpg,
    ftes::sched::ConditionalSchedule,
    ftes::model::Transparency,
) {
    let (app, arch, transparency) = samples::fig5();
    let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).expect("paper mapping");
    let policies = PolicyAssignment::uniform_reexecution(&app, 2);
    let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).expect("placement fits");
    let nodes = arch.node_count();
    let cpg = build_ftcpg(
        &app,
        &policies,
        &copies,
        FaultModel::new(2),
        &transparency,
        BuildConfig::default(),
    )
    .expect("fig5 FT-CPG");
    let platform =
        Platform::new(arch, TdmaBus::uniform(nodes, Time::new(8)).expect("bus")).expect("platform");
    let schedule =
        schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).expect("schedulable");
    (app, cpg, schedule, transparency)
}

/// Fig. 5b: the FT-CPG structure — copy counts per process, sync nodes for
/// the frozen entities, conditional/regular split.
#[test]
fn fig5_ftcpg_structure() {
    let (_, cpg, _, _) = fig5_system();
    cpg.check_invariants().expect("structural invariants");
    let copies = |i: usize| cpg.copies_of_process(ProcessId::new(i)).count();
    assert_eq!((copies(0), copies(1), copies(2), copies(3)), (3, 6, 3, 6));
    assert_eq!(cpg.sync_nodes().count(), 3, "P3^S, m2^S, m3^S");
    // m1 (bus message from P1) has one copy per P1 outcome.
    assert_eq!(cpg.copies_of_message(MessageId::new(1)).count(), 3);
}

/// Fig. 6: schedule-table structure — N1 owns P1/P2 and the messages, N2
/// owns P3/P4; the first process starts unconditionally at 0; frozen rows
/// have a single, unconditional entry.
#[test]
fn fig6_schedule_tables() {
    let (app, cpg, schedule, _) = fig5_system();
    let tables = ScheduleTables::new(&app, &cpg, &schedule, 2);
    let row = |node: usize, label: &str| {
        tables.nodes[node]
            .rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("row {label} on node {node}"))
    };
    // P1 unconditional at t = 0 (first column of Fig. 6).
    let p1 = row(0, "P1");
    assert_eq!(p1.entries[0].start, Time::ZERO);
    assert!(p1.entries[0].guard.is_always());
    // Six P2 entries (copies P2^1..P2^6) and six P4 entries.
    assert_eq!(row(0, "P2").entries.len(), 6);
    assert_eq!(row(1, "P4").entries.len(), 6);
    // Frozen message rows are single-entry and unconditional.
    for label in ["m2", "m3"] {
        let r = row(0, label);
        assert_eq!(r.entries.len(), 1);
        assert!(r.entries[0].guard.is_always());
    }
    // P3's entries depend only on its own conditions: one unconditional
    // plus recoveries.
    let p3 = row(1, "P3");
    assert_eq!(p3.entries.len(), 3);
    assert!(p3.entries[0].guard.is_always());
    // The paper's N1 table carries condition-broadcast rows for P1.
    assert!(tables.nodes[0].rows.iter().any(|r| r.label.starts_with("F(P1^")));
}

/// The full Fig. 5/6 system survives exhaustive two-fault injection.
#[test]
fn fig5_survives_exhaustive_fault_injection() {
    let (app, cpg, schedule, transparency) = fig5_system();
    let scenarios = enumerate_scenarios(&cpg, 1_000_000).expect("bounded scenario space");
    assert!(scenarios.len() > 10);
    let verdict = verify_exhaustive(&app, &cpg, &schedule, &transparency, 1_000_000)
        .expect("verification runs");
    assert!(verdict.is_sound(), "violations: {:?}", verdict.violations);
    assert_eq!(verdict.scenarios, scenarios.len());
    assert!(verdict.worst_makespan <= schedule.length());
}

/// Transparency/performance trade-off (§3.3): freezing can only lengthen
/// the worst case but shrinks the schedule tables.
#[test]
fn transparency_trades_length_for_table_size() {
    let (app, arch, paper_transparency) = samples::fig5();
    let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).expect("paper mapping");
    let policies = PolicyAssignment::uniform_reexecution(&app, 2);
    let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).expect("placement fits");
    let nodes = arch.node_count();
    let platform =
        Platform::new(arch, TdmaBus::uniform(nodes, Time::new(8)).expect("bus")).expect("platform");

    let build = |t: &ftes::model::Transparency| {
        let cpg =
            build_ftcpg(&app, &policies, &copies, FaultModel::new(2), t, BuildConfig::default())
                .expect("FT-CPG");
        let schedule =
            schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).expect("schedule");
        let entries = ScheduleTables::new(&app, &cpg, &schedule, 2).entry_count();
        (schedule.length(), entries)
    };

    let (len_flexible, entries_flexible) = build(&ftes::model::Transparency::none());
    let (len_paper, entries_paper) = build(&paper_transparency);
    let (len_full, entries_full) = build(&ftes::model::Transparency::fully_transparent());

    assert!(len_paper >= len_flexible, "freezing never shortens the worst case");
    assert!(len_full >= len_paper);
    assert!(
        entries_paper <= entries_flexible,
        "freezing shrinks the tables: {entries_paper} vs {entries_flexible}"
    );
    assert!(entries_full <= entries_paper);
}
