//! Regression tests for the estimator-vs-exact calibration and the
//! certify-and-repair contract on random generated systems (k ∈ 0..3, all
//! three generator shapes).
//!
//! The obvious invariant to pin here — `exact_len >= estimate` always —
//! turns out to be **false by design**, and this file documents why with a
//! concrete counter-example guard: the estimator and the exact conditional
//! scheduler are both greedy list schedulers, but over different graphs
//! (application vs FT-CPG) and different priority orders, so classic list-
//! scheduling anomalies cut both ways. Measured on the deterministic sweep
//! below: the estimator is *optimistic* on most states (the documented
//! recovery-cascade under-pricing, e.g. generated incumbents with estimate
//! 441 vs exact 1041) and *pessimistic* on a small tail (e.g. seed 76,
//! k = 2: estimate 494 vs exact 464; seed 193, k = 0: estimate 393 vs
//! exact 305 from a pure order anomaly). Either direction, only the exact
//! schedule is the contract — which is exactly why the synthesis flow now
//! certifies every incumbent instead of trusting the estimate.
//!
//! What *is* pinned, as hard invariants:
//!
//! 1. certification is deterministic and never errors on
//!    estimator-feasible states;
//! 2. the calibration envelope: inversions (estimate > exact) stay a
//!    bounded, small tail, and the estimate never strays beyond measured
//!    multiplicative bounds of the exact length — the calibration table
//!    as a regression check, not documentation;
//! 3. the certify-and-repair contract: every configuration
//!    `synthesize_system` returns is exact-certified schedulable or
//!    explicitly tagged (`Refuted` with its exact length, or
//!    `Uncertifiable` in the estimate-only regime).

use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{FaultModel, Mapping, ProcessId, Time, Transparency};
use ftes::opt::{apply_move, candidate_policies, CandidateMove, SearchConfig};
use ftes::sched::{CertOutcome, Certifier, CertifyConfig, SystemEvaluator};
use ftes::tdma::Platform;
use ftes::{synthesize_system, Certification, FlowConfig};
use proptest::prelude::*;

fn shape(seed: u64, n: usize, nodes: usize) -> GeneratorConfig {
    match seed % 3 {
        0 => GeneratorConfig::new(n, nodes),
        1 => GeneratorConfig::chainy(n, nodes),
        _ => GeneratorConfig::wide(n, nodes),
    }
}

/// Deterministic sweep measuring the estimate/exact ratio across random
/// systems, fault budgets and policy-mix walks. Pins the calibration
/// envelope: the estimator must stay a *sane ranking heuristic* — mostly
/// optimistic, with a small pessimistic tail bounded in both rate and
/// magnitude. A regression that widens either bound (an estimator change
/// that silently over- or under-prices) fails here with the measured
/// numbers in the message.
#[test]
fn estimator_calibration_envelope_on_random_systems() {
    let mut cases = 0u64;
    let mut inversions = 0u64; // estimate > exact (pessimistic tail)
    let mut worst_pessimism_milli = 1000u64; // max estimate/exact
    let mut worst_optimism_milli = 1000u64; // max exact/estimate

    for seed in 0..60u64 {
        let n = 4 + (seed % 5) as usize;
        let nodes = 2 + (seed % 2) as usize;
        let app = generate_application(&shape(seed, n, nodes), seed).unwrap();
        let platform = Platform::homogeneous(nodes, Time::new(8)).unwrap();
        let arch = platform.architecture();
        let transparency = Transparency::none();
        let mapping = Mapping::cheapest(&app, arch).unwrap();

        for k in 0..=3u32 {
            let mut evaluator = SystemEvaluator::new(&app, &platform, k);
            let mut certifier = Certifier::new(
                &app,
                &platform,
                FaultModel::new(k),
                &transparency,
                CertifyConfig { max_exact_runs: u64::MAX, ..CertifyConfig::default() },
            );
            let mut policies = PolicyAssignment::uniform_reexecution(&app, k);
            for step in 0..4u64 {
                if let Ok(copies) = CopyMapping::from_base(&app, arch, &mapping, &policies) {
                    if let Ok(estimate) = evaluator.evaluate(&copies, &policies) {
                        let verdict = certifier
                            .certify(&copies, &policies)
                            .expect("certification never hard-fails on estimator-feasible states");
                        // Determinism: re-certifying answers identically
                        // (from the memo — also proves the memo is keyed
                        // collision-free on this walk).
                        assert_eq!(verdict, certifier.certify(&copies, &policies).unwrap());
                        if let CertOutcome::Exact { exact_len, .. } = verdict {
                            cases += 1;
                            let est = estimate.worst_case_length.units() as u128;
                            let exact = exact_len.units() as u128;
                            assert!(exact > 0, "exact schedules are never empty here");
                            if est > exact {
                                inversions += 1;
                                worst_pessimism_milli =
                                    worst_pessimism_milli.max((est * 1000 / exact) as u64);
                            } else if let Some(ratio) = (exact * 1000).checked_div(est) {
                                worst_optimism_milli = worst_optimism_milli.max(ratio as u64);
                            }
                        }
                    }
                }
                // Deterministic policy-mix walk (no RNG): mixes are where
                // both tails live.
                let p = ProcessId::new(
                    ((seed.wrapping_mul(13) + step.wrapping_mul(5)) % app.process_count() as u64)
                        as usize,
                );
                let cands = candidate_policies(&app, p, k, 8);
                let policy = cands[((seed + step) % cands.len() as u64) as usize].clone();
                let mv = CandidateMove::Repolicy { process: p, policy };
                if let Some((_, next)) = apply_move(&app, arch, &mapping, &policies, &mv) {
                    policies = next;
                }
            }
        }
    }

    assert!(cases > 500, "the sweep must actually certify ({cases} cases)");
    // Measured on this sweep: ~1.6% inversions, worst pessimism ~1.3×,
    // worst optimism ~2.4× (the README table's 0.42 ratio inverted). The
    // bounds leave headroom but catch order-of-magnitude regressions.
    let rate_pct = 100.0 * inversions as f64 / cases as f64;
    assert!(
        rate_pct <= 10.0,
        "estimator pessimism stopped being a tail: {inversions}/{cases} = {rate_pct:.1}%"
    );
    assert!(
        worst_pessimism_milli <= 2000,
        "estimate overshot exact by more than 2x ({worst_pessimism_milli} milli)"
    );
    assert!(
        worst_optimism_milli <= 8000,
        "estimate undershot exact by more than 8x ({worst_optimism_milli} milli)"
    );
}

proptest! {
    /// The acceptance property of the certify-and-repair flow: every
    /// configuration `synthesize_system` returns is exact-certified
    /// schedulable, or explicitly tagged with an exact refutation /
    /// the estimate-only regime — and the tag is internally consistent
    /// with the exact schedule the flow ships.
    #[test]
    fn every_synthesized_incumbent_is_certified_or_tagged(
        seed in 0u64..40,
        n in 4usize..8,
        nodes in 2usize..4,
    ) {
        let app = generate_application(&shape(seed, n, nodes), seed)
            .expect("generator configs in range are valid");
        let platform = Platform::homogeneous(nodes, Time::new(8)).expect("non-empty platform");
        let transparency = Transparency::none();
        for k in 1..=2u32 {
            let config = FlowConfig {
                search: SearchConfig {
                    iterations: 12,
                    neighborhood: 8,
                    ..SearchConfig::default()
                },
                ..FlowConfig::default()
            };
            let psi = match synthesize_system(
                &app,
                &platform,
                FaultModel::new(k),
                &transparency,
                config,
            ) {
                Ok(psi) => psi,
                // Structurally infeasible instances are not this
                // property's subject.
                Err(_) => continue,
            };
            match psi.certification {
                Certification::Certified { exact_len } => {
                    prop_assert!(psi.schedulable, "certified implies schedulable");
                    let exact = psi.exact.as_ref().expect("certified implies exact tables");
                    prop_assert_eq!(exact_len, exact.schedule.length());
                    prop_assert!(exact_len <= app.deadline());
                }
                Certification::Refuted { exact_len } => {
                    prop_assert!(!psi.schedulable, "refuted incumbents never claim schedulability");
                    let exact = psi.exact.as_ref().expect("refuted implies exact tables");
                    prop_assert_eq!(exact_len, exact.schedule.length());
                }
                Certification::Uncertifiable => {
                    prop_assert!(psi.exact.is_none(), "uncertifiable = estimate-only regime");
                }
            }
            prop_assert!(psi.calibration_milli >= 1000);
        }
    }
}
