//! Facade-level integration of the exploration subsystem: `ftes::explore`
//! re-exports, the CLI `explore` command plumbing, and the report formats —
//! the paths a downstream consumer of the `ftes` crate actually touches.

use ftes::explore::{
    explore, run_suite, suite_to_csv, suite_to_json, PortfolioConfig, ScenarioPoint, SuiteConfig,
};
use ftes::model::Time;
use ftes::opt::{apply_move, synthesize, CandidateMove, SearchConfig, Strategy};
use ftes::tdma::Platform;
use ftes_cli::{ExploreCommand, ExploreFormat};

#[test]
fn facade_exposes_the_explore_layer() {
    let app = ftes::gen::generate_application(&ftes::gen::GeneratorConfig::new(10, 2), 4)
        .expect("generated");
    let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
    let result = explore(&app, &platform, 1, &PortfolioConfig::quick(3)).expect("explores");
    assert!(result.best.estimate.worst_case_length >= result.best.estimate.fault_free_length);
    result.best.policies.validate(1).expect("valid incumbent policies");
}

#[test]
fn portfolio_incumbent_is_at_least_as_good_as_one_serial_search_worker() {
    // The portfolio contains a tabu worker with the serial engine's
    // default tunables; with the incumbent broadcast it cannot end worse
    // than its own initial state, and in practice lands at or below the
    // serial result's neighborhood. Assert the weak invariant that is
    // guaranteed, and that both agree on feasibility.
    let app = ftes::gen::generate_application(&ftes::gen::GeneratorConfig::new(12, 3), 8)
        .expect("generated");
    let platform = Platform::homogeneous(3, Time::new(8)).expect("platform");
    let serial = synthesize(
        &app,
        &platform,
        2,
        Strategy::Mx,
        SearchConfig { iterations: 10, ..SearchConfig::default() },
    )
    .expect("serial");
    let parallel = explore(&app, &platform, 2, &PortfolioConfig::quick(8)).expect("parallel");
    assert!(parallel.best.estimate.fault_free_length > Time::ZERO);
    assert!(serial.estimate.fault_free_length > Time::ZERO);
}

#[test]
fn move_primitives_compose_from_the_facade() {
    let (app, arch) = ftes::model::samples::fig3();
    let mapping = ftes::model::Mapping::cheapest(&app, &arch).expect("mapping");
    let policies = ftes::ft::PolicyAssignment::uniform_reexecution(&app, 1);
    let mv = CandidateMove::Repolicy {
        process: ftes::model::ProcessId::new(0),
        policy: ftes::ft::Policy::replication(1),
    };
    let (m2, p2) = apply_move(&app, &arch, &mapping, &policies, &mv).expect("feasible");
    assert_eq!(m2, mapping, "repolicy leaves the mapping untouched");
    assert_eq!(p2.policy(ftes::model::ProcessId::new(0)).replica_count(), 1);
}

#[test]
fn cli_explore_command_renders_all_formats() {
    let args: Vec<String> = [
        "--processes",
        "8",
        "--nodes",
        "2",
        "--k",
        "1",
        "--rounds",
        "2",
        "--iters",
        "4",
        "--threads",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let cmd = ExploreCommand::parse(&args).expect("parses");
    assert_eq!(cmd.format, ExploreFormat::Summary);
    let outcome = run_suite(&cmd.suite).expect("runs");
    let csv = suite_to_csv(&outcome);
    let json = suite_to_json(&outcome);
    assert!(csv.lines().count() >= 2);
    assert!(json.contains("\"points\""));
}

#[test]
fn suite_grid_points_generate_reproducible_workloads() {
    let config = SuiteConfig {
        points: vec![ScenarioPoint { processes: 9, nodes: 3, k: 1, seed: 6 }],
        portfolio: PortfolioConfig::quick(2),
        point_parallelism: 1,
        slot: Time::new(8),
        verify: None,
        certify: true,
    };
    let a = run_suite(&config).expect("first run");
    let b = run_suite(&config).expect("second run");
    assert_eq!(a.signature(), b.signature(), "same config ⇒ same results");
}
