//! The `specs/` directory cannot rot: every `.ftes` document in it must
//! parse, synthesize schedulably with its declared strategy, certify on
//! the exact conditional schedule (no spec in the directory may ship an
//! uncertified winner), and — when the instance gets exact tables —
//! replay soundly under exhaustive fault injection.

use ftes::sim::verify_exhaustive;
use ftes::{synthesize_system, FlowConfig};
use ftes_cli::parse_spec;
use std::path::PathBuf;

fn spec_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("specs/ directory exists")
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "ftes"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn every_spec_parses_synthesizes_and_verifies() {
    let paths = spec_paths();
    // The repo ships the cruise controller plus the two PR-2 additions;
    // this count only ever grows.
    assert!(paths.len() >= 3, "specs/ lost documents: {paths:?}");
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));

        let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
        let psi = synthesize_system(
            &spec.app,
            &spec.platform,
            spec.fault_model,
            &spec.transparency,
            config,
        )
        .unwrap_or_else(|e| panic!("{name}: synthesis: {e}"));
        assert!(
            psi.schedulable,
            "{name}: worst case {} misses deadline {}",
            psi.worst_case_length(),
            spec.app.deadline()
        );
        // The certify-and-repair contract: no spec in the directory ships
        // an uncertified winner. Every shipped spec fits the FT-CPG
        // budget, so the verdict must be a full certification — not
        // `Uncertifiable`, and a `Refuted` winner would mean the repair
        // loop shipped a bad incumbent while claiming schedulability.
        match psi.certification {
            ftes::Certification::Certified { exact_len } => {
                assert!(
                    exact_len <= spec.app.deadline(),
                    "{name}: certified exact length {} misses deadline {}",
                    exact_len,
                    spec.app.deadline(),
                );
                assert!(psi.calibration_milli >= 1000, "{name}");
            }
            other => panic!("{name}: shipped an uncertified winner: {other:?}"),
        }

        // Exact instances must also replay soundly; estimate-only
        // instances have no schedule to inject faults into.
        if let Some(exact) = psi.exact.as_ref() {
            let verdict = verify_exhaustive(
                &spec.app,
                &exact.cpg,
                &exact.schedule,
                &spec.transparency,
                1_000_000,
            )
            .unwrap_or_else(|e| panic!("{name}: verification: {e}"));
            assert!(
                verdict.is_sound(),
                "{name}: {} violations, first: {:?}",
                verdict.violations.len(),
                verdict.violations.first()
            );
        }
    }
}

#[test]
fn shipped_specs_exercise_distinct_strategies_and_fault_budgets() {
    let mut strategies = std::collections::BTreeSet::new();
    let mut ks = std::collections::BTreeSet::new();
    for path in spec_paths() {
        let spec = parse_spec(&std::fs::read_to_string(&path).unwrap()).unwrap();
        strategies.insert(format!("{}", spec.strategy));
        ks.insert(spec.fault_model.k());
    }
    assert!(strategies.len() >= 2, "spec corpus collapsed to one strategy: {strategies:?}");
    assert!(ks.len() >= 2, "spec corpus collapsed to one fault budget: {ks:?}");
}
