//! Cross-crate pipeline tests: generated workloads → optimization →
//! FT-CPG → conditional schedule → fault-injection verification, plus
//! estimator-vs-exact calibration.

use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{FaultModel, Time, Transparency};
use ftes::opt::{SearchConfig, Strategy};
use ftes::sched::estimate_schedule_length;
use ftes::sim::{verify_exhaustive, verify_sampled, Violation};
use ftes::tdma::Platform;
use ftes::{synthesize_system, FlowConfig};

/// Small search budget; the MX strategy keeps policies at re-execution,
/// where the fast estimator and the exact conditional scheduler are tightly
/// calibrated (replication-heavy configurations make the exact scheduler
/// deliberately conservative — see DESIGN.md §6a item 3 and the dedicated
/// test below).
fn small_flow_config(seed: u64) -> FlowConfig {
    FlowConfig {
        strategy: Strategy::Mx,
        search: SearchConfig { iterations: 30, neighborhood: 12, seed, ..SearchConfig::default() },
        ..FlowConfig::default()
    }
}

/// A generator config with enough deadline slack for the conservative
/// exact tables (the worst case serializes recovery cascades, so it can be
/// several times the fault-free length).
fn roomy(n: usize, nodes: usize) -> GeneratorConfig {
    GeneratorConfig { deadline_factor: 14.0, ..GeneratorConfig::new(n, nodes) }
}

/// Synthesized configurations for small random instances survive
/// exhaustive fault injection for k ≤ 2.
#[test]
fn synthesized_systems_survive_exhaustive_injection() {
    for seed in 0..4u64 {
        let app = generate_application(&roomy(8, 2), seed).expect("generated");
        let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
        let transparency = Transparency::none();
        let psi = synthesize_system(
            &app,
            &platform,
            FaultModel::new(2),
            &transparency,
            small_flow_config(seed),
        )
        .expect("synthesis succeeds");
        let exact = psi.exact.as_ref().expect("small instance gets exact schedule");
        let verdict =
            verify_exhaustive(&app, &exact.cpg, &exact.schedule, &transparency, 2_000_000)
                .expect("verification runs");
        assert!(psi.schedulable, "seed {seed} schedulable under the roomy deadline");
        assert!(verdict.is_sound(), "seed {seed}: {:?}", verdict.violations);
    }
}

/// Replication-heavy configurations stress the replica-join containment
/// (DESIGN.md §6a item 3): the exact schedule must stay commensurate with
/// the estimate and the replay sound apart from possible deadline misses.
#[test]
fn replication_exact_schedule_is_conservative_but_sound() {
    let seed = 1u64;
    let app = generate_application(&GeneratorConfig::new(8, 2), seed).expect("generated");
    let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
    let transparency = Transparency::none();
    let psi = synthesize_system(
        &app,
        &platform,
        FaultModel::new(2),
        &transparency,
        FlowConfig {
            strategy: Strategy::Mr,
            search: SearchConfig {
                iterations: 10,
                neighborhood: 8,
                seed,
                ..SearchConfig::default()
            },
            ..FlowConfig::default()
        },
    )
    .expect("synthesis succeeds");
    let exact = psi.exact.as_ref().expect("small instance");
    // Estimate and exact need not dominate each other (different packing
    // and fault-allocation assumptions) but must stay commensurate.
    let ratio = psi.estimate.worst_case_length.as_f64() / exact.schedule.length().as_f64();
    assert!((0.3..=2.0).contains(&ratio), "estimate/exact ratio {ratio:.2}");
    let verdict = verify_exhaustive(&app, &exact.cpg, &exact.schedule, &transparency, 2_000_000)
        .expect("verification runs");
    assert!(
        verdict.violations.iter().all(|v| matches!(v, Violation::DeadlineMiss { .. })),
        "only deadline misses are acceptable: {:?}",
        verdict.violations
    );
    let _ = Violation::DeadlineMiss { makespan: Time::ZERO, deadline: Time::ZERO };
}

/// Larger instances with k = 4 are verified by deterministic sampling.
#[test]
fn synthesized_systems_survive_sampled_injection() {
    let seed = 11u64;
    let app = generate_application(&roomy(14, 3), seed).expect("generated");
    let platform = Platform::homogeneous(3, Time::new(8)).expect("platform");
    let transparency = Transparency::frozen_messages_only();
    let psi = synthesize_system(
        &app,
        &platform,
        FaultModel::new(4),
        &transparency,
        small_flow_config(seed),
    )
    .expect("synthesis succeeds");
    let exact = psi.exact.as_ref().expect("instance fits the node budget");
    let verdict =
        verify_sampled(&app, &exact.cpg, &exact.schedule, &transparency, 300, 7).expect("runs");
    assert!(verdict.is_sound(), "{:?}", verdict.violations);
    assert!(verdict.scenarios == 301);
}

/// Calibration of the fast estimator against the exact conditional
/// scheduler on re-execution instances.
///
/// The estimator deliberately assumes the adversary concentrates the fault
/// budget on one process (DESIGN.md §6a item 4); the exact table also pays
/// for multi-process recovery cascades that serialize on a CPU, so the
/// estimator is *optimistic* and increasingly so with k. It must stay
/// within sane bands: never above the exact length by more than rounding,
/// and never below ~30% of it at k ≤ 2.
#[test]
fn estimator_calibration_against_exact_scheduler() {
    for k in [1u32, 2] {
        let mut ratios = Vec::new();
        for seed in 0..6u64 {
            let app = generate_application(&GeneratorConfig::new(8, 2), seed).expect("generated");
            let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
            let transparency = Transparency::none();
            let psi = synthesize_system(
                &app,
                &platform,
                FaultModel::new(k),
                &transparency,
                small_flow_config(seed),
            )
            .expect("synthesis succeeds");
            let exact_len = psi.exact.as_ref().expect("small instance").schedule.length();
            let est = estimate_schedule_length(&app, &platform, &psi.copies, &psi.policies, k)
                .expect("estimate");
            let ratio = est.worst_case_length.as_f64() / exact_len.as_f64();
            assert!(
                (0.3..=1.05).contains(&ratio),
                "k={k} seed {seed}: estimate {} vs exact {exact_len} (ratio {ratio:.2})",
                est.worst_case_length
            );
            ratios.push(ratio);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((0.4..=1.0).contains(&mean), "k={k} mean calibration ratio {mean:.2}");
    }
}

/// The whole flow respects designer-fixed mappings.
#[test]
fn fixed_mappings_are_preserved() {
    use ftes::model::{ApplicationBuilder, NodeId, ProcessSpec};
    let mut b = ApplicationBuilder::new(2);
    let fixed = b.add_process(
        ProcessSpec::uniform("sensor", Time::new(10), 2)
            .overheads(Time::new(1), Time::new(1), Time::new(1))
            .fixed_node(NodeId::new(1)),
    );
    let free = b.add_process(ProcessSpec::uniform("worker", Time::new(30), 2).overheads(
        Time::new(2),
        Time::new(2),
        Time::new(1),
    ));
    b.add_message("m", fixed, free, Time::new(2)).expect("edge");
    let app = b.deadline(Time::new(500)).build().expect("valid app");
    let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
    let psi = synthesize_system(
        &app,
        &platform,
        FaultModel::new(1),
        &Transparency::none(),
        small_flow_config(3),
    )
    .expect("synthesis succeeds");
    assert_eq!(psi.mapping.node_of(fixed), NodeId::new(1), "fixed node honoured");
    assert!(psi.schedulable);
}

/// k = 0 degenerates to plain static scheduling: no conditions, worst case
/// equals the fault-free case.
#[test]
fn fault_free_budget_degenerates_cleanly() {
    let app = generate_application(&GeneratorConfig::new(10, 2), 2).expect("generated");
    let platform = Platform::homogeneous(2, Time::new(8)).expect("platform");
    let psi = synthesize_system(
        &app,
        &platform,
        FaultModel::fault_free(),
        &Transparency::none(),
        small_flow_config(0),
    )
    .expect("synthesis succeeds");
    let exact = psi.exact.as_ref().expect("tiny FT-CPG");
    assert_eq!(exact.cpg.conditional_nodes().count(), 0);
    assert_eq!(
        psi.estimate.fault_free_length, psi.estimate.worst_case_length,
        "no faults => no slack"
    );
}
