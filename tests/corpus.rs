//! The scenario-corpus contract: generation is byte-deterministic, the
//! emitted documents round-trip through the `.ftes` parser losslessly,
//! the batch driver's CSV is byte-identical for any worker count, and the
//! exemplars checked into `specs/` are pinned generator output (format
//! drift or a re-drawn corpus fails here, not in a downstream consumer).

use ftes::corpus::{run_corpus, CorpusJob, CorpusRunConfig, CorpusVerdict, CORPUS_CSV_HEADER};
use ftes::gen::corpus::{generate_corpus, generate_family, Family, DEFAULT_CORPUS_SEED};
use ftes::opt::{SearchConfig, Strategy};
use ftes::FlowConfig;
use ftes_cli::parse_spec;
use std::path::PathBuf;

#[test]
fn default_corpus_spans_the_advertised_families_and_size() {
    let corpus = generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED).unwrap();
    assert!(corpus.len() >= 25, "default corpus has only {} specs", corpus.len());
    let families: std::collections::HashSet<_> = corpus.iter().map(|s| s.family).collect();
    assert!(families.len() >= 5, "corpus spans only {} families", families.len());
}

#[test]
fn generation_is_byte_deterministic_in_family_and_seed() {
    let a = generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED).unwrap();
    let b = generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.file_name, y.file_name);
        assert_eq!(x.text, y.text, "{}", x.file_name);
    }
    let c = generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED + 1).unwrap();
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.text != y.text),
        "the master seed must reach every family's draw"
    );
}

#[test]
fn emitted_documents_round_trip_through_the_parser() {
    for spec in generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED).unwrap() {
        let parsed = parse_spec(&spec.text)
            .unwrap_or_else(|e| panic!("{}: generated document must parse: {e}", spec.file_name));
        // The parsed system is exactly the generated one: the application
        // compares structurally (names, WCET rows, overheads, edges,
        // deadline), and the platform/strategy/fault parameters match the
        // member metadata.
        let member = Family::from_name(spec.family.name()).unwrap().members();
        let regenerated =
            ftes::gen::generate_application(&member[spec.index].config, spec.member_seed).unwrap();
        assert_eq!(parsed.app, regenerated, "{}: lossless round-trip", spec.file_name);
        assert_eq!(parsed.app.process_count(), spec.processes, "{}", spec.file_name);
        assert_eq!(parsed.platform.architecture().node_count(), spec.nodes, "{}", spec.file_name);
        assert_eq!(parsed.fault_model.k(), spec.k, "{}", spec.file_name);
        let strategy = match parsed.strategy {
            Strategy::Mxr => "mxr",
            Strategy::Mx => "mx",
            Strategy::Mr => "mr",
            Strategy::Sfx => "sfx",
        };
        assert_eq!(strategy, spec.strategy, "{}", spec.file_name);
        // The identity header names the member, so a checked-in exemplar
        // can always be traced back to its family/index/master-seed.
        assert_eq!(
            CorpusJob::family_from_header(&spec.text),
            Some(spec.family.name()),
            "{}",
            spec.file_name
        );
    }
}

/// Same corpus + seed ⇒ byte-identical corpus-run CSV across 1 and 4
/// workers (the acceptance contract). Two families keep the debug-build
/// runtime modest while still covering certified, refuted and
/// repair-round rows.
#[test]
fn corpus_run_csv_is_byte_identical_across_worker_counts() {
    let corpus = generate_corpus(&[Family::Automotive, Family::Util], DEFAULT_CORPUS_SEED).unwrap();
    let jobs: Vec<CorpusJob> = corpus
        .iter()
        .map(|s| CorpusJob {
            name: s.file_name.clone(),
            family: s.family.name().to_string(),
            text: s.text.clone(),
        })
        .collect();
    // A trimmed search keeps the debug-build runtime down; byte-identity
    // must hold for any flow configuration.
    let flow = FlowConfig {
        search: SearchConfig { iterations: 40, neighborhood: 12, ..SearchConfig::default() },
        ..FlowConfig::default()
    };
    let render = |workers: usize| {
        let mut csv = format!("{CORPUS_CSV_HEADER}\n");
        let outcome = run_corpus(&jobs, &CorpusRunConfig { workers, flow }, |_, row| {
            csv.push_str(&row.to_csv());
            csv.push('\n');
        });
        (csv, outcome)
    };
    let (serial_csv, serial) = render(1);
    let (parallel_csv, _) = render(4);
    assert_eq!(serial_csv, parallel_csv, "worker count leaked into the report");

    // Every row is certified-or-tagged; nothing errors on the built-in
    // corpus, and at least one row actually certifies.
    assert!(serial.errors.is_empty(), "{:?}", serial.errors);
    assert!(serial.rows.iter().all(|r| r.certified != CorpusVerdict::Error));
    assert!(serial.rows.iter().any(|r| r.certified == CorpusVerdict::Certified));
    for row in &serial.rows {
        if row.certified == CorpusVerdict::Certified {
            assert!(row.schedulable, "{}: certified implies schedulable", row.spec);
            assert!(row.exact_len.is_some(), "{}", row.spec);
        }
        if row.certified == CorpusVerdict::Refuted {
            assert!(!row.schedulable, "{}: refuted is never schedulable", row.spec);
        }
    }
}

/// The `specs/corpus_*.ftes` exemplars are pinned generator output: each
/// one's identity header names its `(family, index, master seed)`, and
/// regenerating that member must reproduce the checked-in bytes. Fails
/// when the generator's draw, the `.ftes` emitter or the exemplar files
/// drift apart.
#[test]
fn checked_in_exemplars_are_pinned_generator_output() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut exemplars: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("specs/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("corpus_")))
        .collect();
    exemplars.sort();
    assert_eq!(exemplars.len(), 5, "one exemplar per family: {exemplars:?}");

    let mut seen_families = Vec::new();
    for path in exemplars {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let header = text.lines().next().unwrap_or_default();
        let field = |key: &str| -> String {
            header
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("{name}: header lacks {key}=: `{header}`"))
                .to_string()
        };
        let family =
            Family::from_name(&field("family")).unwrap_or_else(|| panic!("{name}: unknown family"));
        let index: usize = field("index").parse().unwrap();
        let seed: u64 = field("seed").parse().unwrap();
        let generated = generate_family(family, seed).unwrap();
        assert_eq!(
            generated[index].text,
            text,
            "{name}: drifted from generator output — regenerate with \
             `ftes corpus generate --family {} --seed {seed}`",
            family.name()
        );
        seen_families.push(family);
    }
    seen_families.sort_by_key(|f| f.name());
    seen_families.dedup();
    assert_eq!(seen_families.len(), 5, "exemplars cover every family");
}
