//! The tentpole guarantee of incremental certification: on random
//! applications and move sequences, one *warm* [`Certifier`] — anchored
//! FT-CPG rebuilds, the verdict memo and the shared fault-scenario
//! subtree memo all live across the walk — equals a *monolithic* fresh
//! certifier per state **bit-for-bit**: same [`CertOutcome`] (exact
//! length and deadline verdict), same artifacts (FT-CPG + conditional
//! schedule), same error text on broken states, and the same
//! [`BoundedCert`] (including the proven lower bound of a pruned
//! refutation) — for every fault budget k ∈ {0..3} across three graph
//! shapes.
//!
//! Moves are enumerated deterministically from the generated seed (no RNG
//! in the test itself), mixing remaps and repolicies exactly like the
//! search engines' neighborhood vocabulary; the walk re-certifies its
//! base state after every step, so memo-hit revisits are compared
//! against fresh monolithic runs too.

use ftes::explore::StateKey;
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{Application, FaultModel, Mapping, NodeId, ProcessId, Time, Transparency};
use ftes::opt::{apply_move, candidate_policies, CandidateMove};
use ftes::sched::{BoundedCert, CertOutcome, Certifier, CertifyConfig, CertifyError};
use ftes::tdma::Platform;
use proptest::prelude::*;

/// Deterministic move for one step of the walk: even steps remap, odd
/// steps repolicy, indices rotated by `seed` so different cases take
/// different trajectories (same vocabulary as `evaluator_equality.rs`).
fn step_move(
    app: &Application,
    mapping: &Mapping,
    k: u32,
    seed: u64,
    step: u64,
) -> Option<CandidateMove> {
    let n = app.process_count() as u64;
    let p = ProcessId::new(((seed.wrapping_mul(31) + step.wrapping_mul(7)) % n) as usize);
    if step.is_multiple_of(2) {
        let proc = app.process(p);
        if proc.fixed_node().is_some() {
            return None;
        }
        let nodes: Vec<NodeId> = proc.candidate_nodes().collect();
        if nodes.len() < 2 {
            return None;
        }
        let to = nodes[((seed + step / 2) % nodes.len() as u64) as usize];
        if to == mapping.node_of(p) {
            return None;
        }
        Some(CandidateMove::Remap { process: p, to })
    } else {
        let cands = candidate_policies(app, p, k, 8);
        let policy = cands[((seed + step) % cands.len() as u64) as usize].clone();
        Some(CandidateMove::Repolicy { process: p, policy })
    }
}

/// An unbudgeted certifier — the warm/monolithic comparison must never
/// diverge on an exhausted work budget (the warm side accumulates exact
/// runs across the whole walk, a fresh one starts at zero every state).
fn fresh_certifier(app: &Application, platform: &Platform, k: u32) -> Certifier {
    Certifier::new(
        app,
        platform,
        FaultModel::new(k),
        &Transparency::none(),
        CertifyConfig { max_exact_runs: u64::MAX, ..CertifyConfig::default() },
    )
}

/// Certify on both sides and compare outcomes bit-for-bit, folding hard
/// errors into their debug text (`CertifyError` is non-exhaustive and
/// carries no `PartialEq`).
fn compare_unbounded(
    inc: &mut Certifier,
    mono: &mut Certifier,
    copies: &CopyMapping,
    policies: &PolicyAssignment,
) -> Result<Option<CertOutcome>, TestCaseError> {
    let warm = inc.certify(copies, policies);
    let cold = mono.certify(copies, policies);
    match (warm, cold) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a, b, "incremental verdict diverged from monolithic");
            Ok(Some(a))
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "incremental error diverged from monolithic"
            );
            Ok(None)
        }
        (warm, cold) => {
            prop_assert!(false, "verdict/error mismatch: warm {warm:?} vs cold {cold:?}");
            unreachable!("prop_assert! above returns");
        }
    }
}

proptest! {
    /// Unbounded certification: a warm certifier walking random delta
    /// chains (with base-state revisits after every step) must match a
    /// fresh monolithic certifier on every state — verdicts, artifacts
    /// and errors.
    #[test]
    fn incremental_certify_equals_monolithic_along_random_walks(
        seed in 0u64..1000,
        n in 6usize..12,
        nodes in 2usize..4,
    ) {
        // Rotate through graph shapes: default (√n layers), chain-heavy
        // (deep precedence) and wide (parallel slack / contention).
        let config = match seed % 3 {
            0 => GeneratorConfig::new(n, nodes),
            1 => GeneratorConfig::chainy(n, nodes),
            _ => GeneratorConfig::wide(n, nodes),
        };
        let app = generate_application(&config, seed)
            .expect("generator configs in range are valid");
        let platform = Platform::homogeneous(nodes, Time::new(8)).expect("non-empty platform");
        let arch = platform.architecture();

        for k in 0u32..=3 {
            let mut mapping = Mapping::cheapest(&app, arch).expect("generated apps are mappable");
            let mut policies = PolicyAssignment::uniform_reexecution(&app, k);
            let mut inc = fresh_certifier(&app, &platform, k);

            // The revisit state is frozen as a consistent pair — the walk
            // mutates `policies`, and a copy mapping is only meaningful
            // with the assignment it was derived from.
            let base_policies = policies.clone();
            let base_copies = CopyMapping::from_base(&app, arch, &mapping, &base_policies)
                .expect("re-execution placement is feasible");
            let mut mono = fresh_certifier(&app, &platform, k);
            compare_unbounded(&mut inc, &mut mono, &base_copies, &base_policies)?;

            let mut fresh_states = 0u32;
            for step in 0..8u64 {
                let Some(mv) = step_move(&app, &mapping, k, seed, step) else { continue };
                let Some((next_mapping, next_policies)) =
                    apply_move(&app, arch, &mapping, &policies, &mv)
                else {
                    continue;
                };
                let Ok(copies) = CopyMapping::from_base(&app, arch, &next_mapping, &next_policies)
                else {
                    continue;
                };

                let runs_before = inc.stats().exact_runs;
                let mut mono = fresh_certifier(&app, &platform, k);
                let outcome = compare_unbounded(&mut inc, &mut mono, &copies, &next_policies)?;

                // Artifact equality: whenever the warm side actually
                // scheduled this state (first visit), its FT-CPG and
                // exact conditional schedule must be bit-identical to
                // the monolithic build. (A memo-hit revisit schedules
                // nothing, so its artifact slot legitimately holds an
                // older configuration — `take_artifacts` answers `None`.)
                let scheduled_now = inc.stats().exact_runs > runs_before;
                if scheduled_now {
                    fresh_states += 1;
                }
                if scheduled_now && matches!(outcome, Some(CertOutcome::Exact { .. })) {
                    let warm_art = inc.take_artifacts(&copies, &next_policies);
                    let cold_art = mono.take_artifacts(&copies, &next_policies);
                    prop_assert!(warm_art.is_some(), "warm run must yield artifacts");
                    prop_assert!(cold_art.is_some(), "cold run must yield artifacts");
                    prop_assert_eq!(
                        warm_art, cold_art,
                        "artifacts diverged (k={}, step={}, move={:?})", k, step, mv
                    );
                }

                // Revisit the *base* state: the warm side answers from its
                // verdict memo, the fresh monolithic one re-schedules —
                // the memo must be transparent.
                let mut mono = fresh_certifier(&app, &platform, k);
                compare_unbounded(&mut inc, &mut mono, &base_copies, &base_policies)?;

                if outcome.is_some() {
                    mapping = next_mapping;
                    policies = next_policies;
                }
            }
            // When the walk reached fresh states, it must have exercised
            // the incremental machinery (a walk that never escapes its
            // base — possible at k = 0 with a degenerate move menu — has
            // nothing to rebuild and is covered by the other cases).
            if fresh_states > 0 {
                prop_assert!(
                    inc.stats().incremental_builds > 0,
                    "no incremental rebuilds happened (k={})", k
                );
                prop_assert!(
                    inc.stats().cache_hits > 0,
                    "no verdict-memo hits happened (k={})", k
                );
            }
        }
    }

    /// Bounded certification: against the same bound, a warm certifier
    /// and a fresh monolithic one must return the same [`BoundedCert`] —
    /// including the proven lower bound of a pruned refutation — and a
    /// bound the state meets must reproduce the unbounded verdict.
    #[test]
    fn bounded_certify_equals_monolithic_and_prunes_identically(
        seed in 0u64..1000,
        n in 6usize..12,
        nodes in 2usize..4,
    ) {
        let config = match seed % 3 {
            0 => GeneratorConfig::new(n, nodes),
            1 => GeneratorConfig::chainy(n, nodes),
            _ => GeneratorConfig::wide(n, nodes),
        };
        let app = generate_application(&config, seed)
            .expect("generator configs in range are valid");
        let platform = Platform::homogeneous(nodes, Time::new(8)).expect("non-empty platform");
        let arch = platform.architecture();

        for k in 0u32..=3 {
            let mut mapping = Mapping::cheapest(&app, arch).expect("generated apps are mappable");
            let mut policies = PolicyAssignment::uniform_reexecution(&app, k);
            let mut warm = fresh_certifier(&app, &platform, k);
            let mut pruned_states = 0u32;
            // Each state is bounded-certified at most once: a revisit
            // would answer from the warm side's verdict memo (a full
            // verdict, by documented design) while the fresh monolithic
            // side prunes — a legitimate asymmetry, not an inequality.
            let mut seen = std::collections::HashSet::new();

            for step in 0..6u64 {
                if let Some(mv) = step_move(&app, &mapping, k, seed, step) {
                    if let Some((m, p)) = apply_move(&app, arch, &mapping, &policies, &mv) {
                        if CopyMapping::from_base(&app, arch, &m, &p).is_ok() {
                            mapping = m;
                            policies = p;
                        }
                    }
                }
                let Ok(copies) = CopyMapping::from_base(&app, arch, &mapping, &policies) else {
                    continue;
                };
                if !seen.insert(StateKey::encode(&mapping, &policies)) {
                    continue;
                }

                // The oracle derives this state's exact length so the
                // bounds below are guaranteed to straddle it.
                let mut oracle = fresh_certifier(&app, &platform, k);
                let Ok(CertOutcome::Exact { exact_len, .. }) =
                    oracle.certify(&copies, &policies)
                else {
                    continue;
                };
                if exact_len <= Time::ZERO {
                    continue;
                }

                // Below the exact length: both sides must prove the same
                // refutation, lower bound included.
                let refuting = Time::new(exact_len.units() - 1);
                let warm_refuted = warm.certify_bounded(&copies, &policies, refuting);
                let mut mono = fresh_certifier(&app, &platform, k);
                let cold_refuted = mono.certify_bounded(&copies, &policies, refuting);
                match (warm_refuted, cold_refuted) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a, b, "bounded refutation diverged (k={}, step={})", k, step);
                        if let BoundedCert::Pruned { lower_bound } = a {
                            prop_assert!(lower_bound > refuting, "pruned bound must refute");
                            pruned_states += 1;
                        }
                    }
                    (a, b) => {
                        let (a, b) = (err_text(a), err_text(b));
                        prop_assert_eq!(a, b, "bounded error diverged (k={}, step={})", k, step);
                    }
                }

                // At the exact length: both sides must complete with the
                // unbounded verdict (the stored refutation bound must not
                // over-prune a bound the state meets).
                let meeting = exact_len;
                let warm_met = warm.certify_bounded(&copies, &policies, meeting);
                let mut mono = fresh_certifier(&app, &platform, k);
                let cold_met = mono.certify_bounded(&copies, &policies, meeting);
                match (warm_met, cold_met) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a, b, "bounded verdict diverged (k={}, step={})", k, step);
                        prop_assert!(
                            matches!(a, BoundedCert::Verdict(CertOutcome::Exact { .. })),
                            "a met bound must certify exactly (k={}, step={}, got {:?})", k, step, a
                        );
                    }
                    (a, b) => {
                        let (a, b) = (err_text(a), err_text(b));
                        prop_assert_eq!(a, b, "bounded error diverged (k={}, step={})", k, step);
                    }
                }
            }
            if k > 0 {
                prop_assert!(
                    pruned_states > 0,
                    "the bounded walk never pruned (k={})", k
                );
            }
        }
    }
}

/// Debug text of a bounded result, for comparing the error arms
/// (`CertifyError` is non-exhaustive and not `PartialEq`).
fn err_text(r: Result<BoundedCert, CertifyError>) -> String {
    match r {
        Ok(v) => format!("ok: {v:?}"),
        Err(e) => format!("err: {e:?}"),
    }
}
