//! Folded-stack export for flamegraph tooling.
//!
//! Converts a drained span stream into the `folded` text format consumed
//! by `flamegraph.pl`, inferno and speedscope: one line per unique span
//! stack, `root;child;grandchild <weight>`, where the weight is the
//! stack's **self time in microseconds** (time inside the span but outside
//! any child span). Summing a subtree therefore reproduces inclusive time,
//! exactly as flamegraph viewers expect.
//!
//! Stacks are reconstructed per thread from `Begin`/`End` nesting; counter
//! events are ignored. Spans left open at drain time (a daemon snapshot
//! mid-request) contribute nothing — only completed spans are charged.

use crate::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// One live stack frame during reconstruction.
struct Frame {
    name: &'static str,
    start_ns: u64,
    /// Nanoseconds already attributed to completed children.
    child_ns: u64,
}

/// Renders a drained event stream as folded-stack text.
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    // BTreeMap keeps the output deterministic for a given event stream.
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    let mut stacks: BTreeMap<u32, Vec<Frame>> = BTreeMap::new();
    for e in events {
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            EventKind::Begin => {
                stack.push(Frame { name: e.name, start_ns: e.ts_ns, child_ns: 0 });
            }
            EventKind::End => {
                // Tolerate mismatched ends (a drain raced a span open):
                // pop only when the end matches the top of the stack.
                let matches = stack.last().is_some_and(|f| f.name == e.name);
                if !matches {
                    continue;
                }
                let frame = stack.pop().expect("matched above");
                let total_ns = e.ts_ns.saturating_sub(frame.start_ns);
                let self_ns = total_ns.saturating_sub(frame.child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += total_ns;
                }
                let mut path = String::new();
                for f in stack.iter() {
                    path.push_str(f.name);
                    path.push(';');
                }
                path.push_str(frame.name);
                *weights.entry(path).or_insert(0) += self_ns / 1_000;
            }
            EventKind::Count => {}
        }
    }
    let mut out = String::new();
    for (path, micros) in &weights {
        out.push_str(path);
        out.push(' ');
        out.push_str(&micros.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, kind: EventKind, name: &'static str, ts_us: u64) -> TraceEvent {
        TraceEvent { tid, thread_name: String::new(), kind, name, value: 0, ts_ns: ts_us * 1_000 }
    }

    #[test]
    fn self_time_excludes_children() {
        // optimize [0, 100µs) containing certify [10, 40µs).
        let events = vec![
            ev(1, EventKind::Begin, "optimize", 0),
            ev(1, EventKind::Begin, "certify", 10),
            ev(1, EventKind::End, "certify", 40),
            ev(1, EventKind::End, "optimize", 100),
        ];
        let folded = folded_stacks(&events);
        assert_eq!(folded, "optimize 70\noptimize;certify 30\n");
    }

    #[test]
    fn threads_do_not_share_stacks() {
        let events = vec![
            ev(1, EventKind::Begin, "optimize", 0),
            ev(2, EventKind::Begin, "certify", 5),
            ev(2, EventKind::End, "certify", 15),
            ev(1, EventKind::End, "optimize", 20),
        ];
        let folded = folded_stacks(&events);
        // certify on thread 2 is a root, not a child of thread 1's span.
        assert_eq!(folded, "certify 10\noptimize 20\n");
    }

    #[test]
    fn unbalanced_tail_is_dropped_not_miscounted() {
        let events = vec![
            ev(1, EventKind::Begin, "optimize", 0),
            ev(1, EventKind::Begin, "certify", 10),
            // Drain happened here: no End events.
        ];
        assert_eq!(folded_stacks(&events), "");
    }

    #[test]
    fn repeated_stacks_aggregate() {
        let mut events = Vec::new();
        for i in 0..3 {
            events.push(ev(1, EventKind::Begin, "certify", i * 100));
            events.push(ev(1, EventKind::End, "certify", i * 100 + 7));
        }
        assert_eq!(folded_stacks(&events), "certify 21\n");
    }
}
