//! The span and counter taxonomy.
//!
//! Every instrumented site in the workspace names its events from this one
//! module, so traces from different entry points (CLI synthesis, explore
//! suites, corpus jobs, the serve daemon) speak the same vocabulary and the
//! docs (`docs/observability.md`) can enumerate it exhaustively. Names are
//! `&'static str` so recording an event stores a pointer, not bytes.
//!
//! Dotted prefixes group related events: `search.*` for per-iteration
//! search introspection, `certify.*` for the exact-certification pipeline,
//! `eval.*` for the estimator kernel, `cache.*` for the estimate cache,
//! `job.*`/`journal.*` for the job subsystem and `serve.*` for the daemon.

// ---- synthesis flow spans (nested: parse > synthesize > optimize, with
// certify/cpg/schedule nested under the search wherever the certifier runs)

/// Spec text → application + platform model.
pub const PARSE: &str = "parse";
/// The whole synthesis flow for one spec (search + certification).
pub const SYNTHESIZE: &str = "synthesize";
/// Design-space search (tabu / anneal / greedy portfolio member).
pub const OPTIMIZE: &str = "optimize";
/// One exact certification of a candidate (memoized; see `certify.memo_hit`).
pub const CERTIFY: &str = "certify";
/// FT-CPG construction inside an uncached certification.
pub const CPG: &str = "cpg";
/// Exact conditional scheduling of the built FT-CPG.
pub const SCHEDULE: &str = "schedule";

// ---- search iteration counters (one event per decision, recorded from
// the inner loop — cheap: the disabled path is a load-and-branch)

/// A search iteration finished (any strategy).
pub const SEARCH_ITER: &str = "search.iter";
/// The iteration's best move was accepted (incumbent or aspiration).
pub const SEARCH_ACCEPT: &str = "search.accept";
/// The iteration's best move was rejected / only diversified.
pub const SEARCH_REJECT: &str = "search.reject";
/// A certify-and-repair round ran after the search refuted an estimate.
pub const REPAIR_ROUND: &str = "certify.repair_round";
/// Certification answered from the verdict memo instead of scheduling.
pub const CERTIFY_MEMO_HIT: &str = "certify.memo_hit";
/// An uncached certification rebuilt its FT-CPG incrementally from the
/// certifier's anchor (prefix restored, only dirty subgraphs rebuilt).
pub const CERTIFY_INCREMENTAL: &str = "certify.incremental";
/// A bounded certification refuted early: a placed node already exceeds
/// the bound, so the remaining scenarios were never scheduled.
pub const CERTIFY_PRUNE: &str = "certify.prune";
/// A replica-join worst-case delivery was answered from the fault-scenario
/// subtree memo instead of re-running the adversarial DP.
pub const CERTIFY_SUBTREE_HIT: &str = "certify.subtree_hit";

// ---- estimator kernel counters (the delta-evaluate hot path)

/// Incremental (suffix-only) evaluation served the neighbor.
pub const EVAL_DELTA: &str = "eval.delta";
/// The delta path fell back to a full evaluation.
pub const EVAL_FALLBACK: &str = "eval.fallback";
/// A full (non-delta) evaluation ran.
pub const EVAL_FULL: &str = "eval.full";
/// One batched neighborhood evaluation ran (`evaluate_batch` call).
pub const EVAL_BATCH: &str = "eval.batch";
/// Candidates scored by a batched evaluation (counter delta per batch).
pub const EVAL_BATCH_CANDIDATES: &str = "eval.batch_candidates";

// ---- estimate-cache counters (`ftes-explore`)

/// Estimate cache returned a memoized cost.
pub const ESTIMATE_CACHE_HIT: &str = "cache.estimate_hit";
/// Estimate cache missed; the evaluator ran.
pub const ESTIMATE_CACHE_MISS: &str = "cache.estimate_miss";

// ---- job lifecycle (`ftes-jobs`): queued → running → row* → terminal

/// A job was accepted into the bounded queue.
pub const JOB_QUEUED: &str = "job.queued";
/// A worker picked the job up (span: covers the whole run).
pub const JOB_RUN: &str = "job.run";
/// The job streamed one result row.
pub const JOB_ROW: &str = "job.row";
/// The job reached a terminal state (done / failed / cancelled).
pub const JOB_TERMINAL: &str = "job.terminal";
/// One journal append, frame + flush (span; see also `journal.bytes`).
pub const JOURNAL_APPEND: &str = "journal.append";
/// Bytes appended to the journal (counter delta per append).
pub const JOURNAL_BYTES: &str = "journal.bytes";

// ---- serve daemon

/// One HTTP request, read → route → write (span, worker thread).
pub const SERVE_REQUEST: &str = "serve.request";

// ---- derived groups

/// The names every traced end-to-end synthesis must emit, in pipeline
/// order. CI's `check_trace --pipeline` gate asserts exactly this list,
/// so the gate and the taxonomy cannot drift apart: adding a pipeline
/// stage here tightens CI in the same commit.
pub const SYNTHESIS_PIPELINE: &[&str] =
    &[PARSE, SYNTHESIZE, OPTIMIZE, CERTIFY, CPG, SCHEDULE, SEARCH_ITER, EVAL_DELTA, EVAL_BATCH];
