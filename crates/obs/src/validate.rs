//! Chrome-trace parsing and validation.
//!
//! The repo emits traces; this module reads them back. It carries a small
//! recursive-descent JSON parser (the workspace vendors no serde) and a
//! validator that checks what trace viewers silently forgive: every event
//! carries `name`/`ph`/`pid`/`tid`, timestamps are numbers, and `"B"`/`"E"`
//! span events nest properly per thread (each `E` closes the innermost
//! open span of the same name). The trace-roundtrip tests and the CI
//! `check_trace` gate are built on [`validate_chrome_trace`].
//!
//! A top-level array without its closing `]` is accepted — the incremental
//! writer relies on that tolerance for kill-safety — but every individual
//! event object must still parse completely.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Byte-cursor over the input text.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Starts a parser at the beginning of `text`.
    pub fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    /// Skips whitespace; returns the next byte without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    /// Parses one complete JSON value at the cursor.
    pub fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.peek();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.peek();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs never appear in our own output;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-borrow as UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Parses one complete JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a position-annotated message on malformed input or trailing
/// garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    if p.peek().is_some() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] learned about a trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total events parsed (including metadata).
    pub events: usize,
    /// `B`/`E` pairs that closed properly.
    pub spans_completed: usize,
    /// Spans still open at end of trace (normal for a killed daemon,
    /// should be 0 for a complete CLI trace).
    pub open_spans: usize,
    /// Distinct span names seen.
    pub span_names: BTreeSet<String>,
    /// Final value of each counter, keyed by name and summed across
    /// threads (the exporter emits per-thread running totals).
    pub counters: BTreeMap<String, f64>,
}

/// Parses a Chrome trace (terminated or not) and checks span hygiene.
///
/// Checks, per event: `name` and `ph` are strings, `pid`/`tid` are
/// numbers, non-metadata events carry a numeric `ts`. Checks, per thread:
/// every `"E"` closes the innermost open `"B"` **of the same name** —
/// crossed spans (`B a, B b, E a, E b`) are rejected, which is exactly the
/// nesting discipline RAII guards guarantee.
///
/// # Errors
///
/// Returns a message naming the first offending event and what was wrong
/// with it.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let mut p = Parser::new(text);
    p.expect(b'[')?;
    let mut summary = TraceSummary::default();
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    // Counter tracks are per-thread running totals; keep the last value of
    // each (name, tid) track and sum across threads at the end.
    let mut counter_tracks: BTreeMap<(String, u64), f64> = BTreeMap::new();
    loop {
        match p.peek() {
            None => break,       // unterminated array: accepted
            Some(b']') => break, // terminated array
            Some(b',') => {
                p.pos += 1;
                continue;
            }
            Some(_) => {}
        }
        let event = p.value().map_err(|e| format!("event {}: {e}", summary.events))?;
        let idx = summary.events;
        summary.events += 1;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing string 'name'"))?
            .to_string();
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx} ({name}): missing string 'ph'"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {idx} ({name}): missing numeric 'tid'"))?
            as u64;
        event
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {idx} ({name}): missing numeric 'pid'"))?;
        if ph != "M" {
            event
                .get("ts")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {idx} ({name}): missing numeric 'ts'"))?;
        }
        match ph {
            "B" => {
                summary.span_names.insert(name.clone());
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.last() {
                    Some(top) if *top == name => {
                        stack.pop();
                        summary.spans_completed += 1;
                    }
                    Some(top) => {
                        return Err(format!(
                            "event {idx}: E '{name}' crosses open span '{top}' on tid {tid}"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {idx}: E '{name}' on tid {tid} with no open span"
                        ));
                    }
                }
            }
            "C" => {
                let value = event
                    .get("args")
                    .and_then(|a| a.get(&name))
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {idx}: counter '{name}' missing args value"))?;
                counter_tracks.insert((name, tid), value);
            }
            "M" | "X" | "i" | "I" => {}
            other => return Err(format!("event {idx} ({name}): unknown ph '{other}'")),
        }
    }
    for ((name, _tid), value) in counter_tracks {
        *summary.counters.entry(name).or_insert(0.0) += value;
    }
    summary.open_spans = stacks.values().map(Vec::len).sum();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_strings_and_nesting() {
        let v = parse_json(r#"{"a":[1,-2.5,"x\nA"],"b":{"c":true,"d":null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("x\nA".into())])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json(r#""\q""#).is_err());
        assert!(parse_json("[1,").is_err());
    }

    #[test]
    fn valid_trace_balances() {
        let trace = r#"[
            {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
            {"name":"optimize","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"certify","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"search.accept","ph":"C","ts":2.5,"pid":1,"tid":1,"args":{"search.accept":4}},
            {"name":"certify","ph":"E","ts":3.0,"pid":1,"tid":1},
            {"name":"optimize","ph":"E","ts":4.0,"pid":1,"tid":1}
        ]"#;
        let summary = validate_chrome_trace(trace).unwrap();
        assert_eq!(summary.events, 6);
        assert_eq!(summary.spans_completed, 2);
        assert_eq!(summary.open_spans, 0);
        assert!(summary.span_names.contains("optimize"));
        assert_eq!(summary.counters["search.accept"], 4.0);
    }

    #[test]
    fn counter_tracks_sum_across_threads() {
        // Each thread's track is a running total: keep the last value per
        // (name, tid) and sum across threads — not last-event-wins.
        let trace = r#"[
            {"name":"eval.full","ph":"C","ts":1.0,"pid":1,"tid":1,"args":{"eval.full":2}},
            {"name":"eval.full","ph":"C","ts":2.0,"pid":1,"tid":2,"args":{"eval.full":5}},
            {"name":"eval.full","ph":"C","ts":3.0,"pid":1,"tid":1,"args":{"eval.full":3}}
        ]"#;
        let summary = validate_chrome_trace(trace).unwrap();
        assert_eq!(summary.counters["eval.full"], 8.0);
    }

    #[test]
    fn crossed_spans_are_rejected() {
        let trace = r#"[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":3.0,"pid":1,"tid":1}
        ]"#;
        let err = validate_chrome_trace(trace).unwrap_err();
        assert!(err.contains("crosses"), "{err}");
    }

    #[test]
    fn unterminated_array_is_accepted_with_open_spans_counted() {
        let trace = "[\n{\"name\":\"job.run\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":7}";
        let summary = validate_chrome_trace(trace).unwrap();
        assert_eq!(summary.events, 1);
        assert_eq!(summary.open_spans, 1);
    }

    #[test]
    fn end_without_begin_is_rejected() {
        let trace = r#"[{"name":"a","ph":"E","ts":1.0,"pid":1,"tid":1}]"#;
        assert!(validate_chrome_trace(trace).is_err());
    }
}
