//! Lock-free structured tracing for the FTES pipeline.
//!
//! Everything here is built around one promise: **when tracing is off, the
//! instrumented code pays a single relaxed atomic load and a branch** — cheap
//! enough to leave `obs::` calls inline on the delta-evaluate hot path
//! (`BENCH_obs.json` pins the overhead at < 2% of the 1.3 µs baseline).
//!
//! ## Architecture
//!
//! - A global [`enabled`] gate (one relaxed `AtomicBool`). Nothing else is
//!   touched while it is false.
//! - When enabled, events go into a **per-thread SPSC ring buffer**
//!   (`ring`): the owning thread is the only producer, so a push is two
//!   atomic loads, a slot write and a release store — no locks, no CAS loops,
//!   no allocation. Full buffers drop events (and count the drops) rather
//!   than block the pipeline.
//! - [`drain`] collects the buffered events from every registered thread.
//!   Exporters turn the drained stream into Chrome-trace-event JSON
//!   ([`chrome`]) or folded-stack text for flamegraphs ([`folded`]);
//!   [`validate`] parses a Chrome trace back and checks span nesting and
//!   balance (used by tests and the CI trace checker).
//!
//! Trace output is a **side channel**: timestamps and event ordering vary
//! run to run, so trace artifacts are never embedded in result bytes, CSVs
//! or cached response bodies (see ARCHITECTURE.md's determinism and
//! byte-identity invariants, and `docs/observability.md`).
//!
//! ## Span taxonomy
//!
//! Span and counter names are `&'static str` constants in [`names`], so an
//! event record is a pointer, a tag and two integers. The taxonomy covers
//! the whole pipeline: parse, search iterations (accept/reject,
//! estimate-cache hit/miss, delta-vs-full evaluation), certification
//! (FT-CPG build, exact schedule, memo hit, repair round), job lifecycle
//! and journal writes, and serve request handling.
//!
//! ## Example
//!
//! ```
//! ftes_obs::set_enabled(true);
//! {
//!     let _outer = ftes_obs::span(ftes_obs::names::OPTIMIZE);
//!     let _inner = ftes_obs::span(ftes_obs::names::CERTIFY);
//!     ftes_obs::counter(ftes_obs::names::SEARCH_ACCEPT, 1);
//! }
//! ftes_obs::set_enabled(false);
//! let events = ftes_obs::drain();
//! let json = ftes_obs::chrome::chrome_trace_json(&events);
//! assert!(ftes_obs::validate::validate_chrome_trace(&json).is_ok());
//! ```

pub mod chrome;
pub mod folded;
pub mod names;
mod ring;
pub mod validate;

use std::sync::atomic::{AtomicBool, Ordering};

/// The global gate. Relaxed is sufficient: the flag carries no data
/// dependency — a thread that misses a flip by a few instructions merely
/// records (or skips) a handful of boundary events.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns event recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled. This load-and-branch is the entire
/// disabled-path cost of every `span`/`counter` call site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What a ring-buffer slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ts_ns` is the open time).
    Begin,
    /// A span closed (`ts_ns` is the close time).
    End,
    /// A counter increment: `value` is the delta since the previous event
    /// of the same name on the same thread.
    Count,
}

/// One drained trace event, tagged with the recording thread.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Sequential id of the recording thread (assigned at first event).
    pub tid: u32,
    /// The recording thread's name at registration ("" when unnamed).
    pub thread_name: String,
    /// Begin / End / Count.
    pub kind: EventKind,
    /// Span or counter name (one of [`names`]).
    pub name: &'static str,
    /// Counter delta; 0 for span events.
    pub value: u64,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
}

/// RAII span guard: records a `Begin` on creation (when enabled) and the
/// matching `End` on drop. A guard created while tracing was disabled stays
/// inert even if tracing is enabled later, so drained streams never hold an
/// `End` without its `Begin`.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
pub struct Span {
    name: &'static str,
    active: bool,
}

/// Opens a span. Disabled path: one relaxed load, one branch.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, active: false };
    }
    ring::push(EventKind::Begin, name, 0);
    Span { name, active: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            ring::push(EventKind::End, self.name, 0);
        }
    }
}

/// Records a counter delta. Disabled path: one relaxed load, one branch.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        ring::push(EventKind::Count, name, delta);
    }
}

/// Drains every thread's buffered events, oldest first per thread, merged
/// and sorted by timestamp. Draining is destructive: each event is
/// delivered exactly once across all `drain` calls.
pub fn drain() -> Vec<TraceEvent> {
    let mut events = ring::drain_all();
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// Events dropped so far because a thread's ring buffer was full. A nonzero
/// value means the trace has holes; exporters surface it as metadata.
pub fn dropped_events() -> u64 {
    ring::dropped_total()
}

/// Sums counter deltas by name over a drained event stream.
pub fn totals(events: &[TraceEvent]) -> std::collections::BTreeMap<&'static str, u64> {
    let mut map = std::collections::BTreeMap::new();
    for e in events {
        if e.kind == EventKind::Count {
            *map.entry(e.name).or_insert(0) += e.value;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The gate, the registry and the epoch are process-global, so tests
    /// that enable tracing serialize on this lock and drain before
    /// releasing it.
    pub(crate) static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        drop(span(names::OPTIMIZE));
        counter(names::SEARCH_ACCEPT, 3);
        assert!(drain().is_empty());
    }

    #[test]
    fn span_and_counter_round_trip() {
        let _g = GATE.lock().unwrap();
        let _ = drain();
        set_enabled(true);
        {
            let _outer = span(names::OPTIMIZE);
            let _inner = span(names::CERTIFY);
            counter(names::EVAL_DELTA, 2);
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 5);
        // Inner closes before outer; timestamps are monotone per thread.
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, names::OPTIMIZE);
        assert_eq!(events[1].name, names::CERTIFY);
        assert_eq!(events[2].kind, EventKind::Count);
        assert_eq!(events[3].kind, EventKind::End);
        assert_eq!(events[3].name, names::CERTIFY);
        assert_eq!(events[4].name, names::OPTIMIZE);
        assert_eq!(totals(&events)[names::EVAL_DELTA], 2);
    }

    #[test]
    fn guard_created_disabled_stays_inert_after_enable() {
        let _g = GATE.lock().unwrap();
        let _ = drain();
        set_enabled(false);
        let guard = span(names::PARSE);
        set_enabled(true);
        drop(guard);
        set_enabled(false);
        assert!(drain().is_empty(), "no dangling End without a Begin");
    }

    #[test]
    fn multi_thread_events_carry_distinct_tids() {
        let _g = GATE.lock().unwrap();
        let _ = drain();
        set_enabled(true);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span(names::SCHEDULE);
                    counter(names::EVAL_FULL, 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let events = drain();
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(events.len(), 9);
        assert_eq!(tids.len(), 3);
    }
}
