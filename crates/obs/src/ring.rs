//! Per-thread SPSC event buffers and the global drain registry.
//!
//! Each recording thread owns one [`ThreadBuffer`]: a fixed array of slots
//! with a producer index (`head`, written only by the owning thread) and a
//! consumer index (`tail`, written only under the registry lock). The
//! owning thread is the single producer, the drainer — whoever holds the
//! registry mutex — the single consumer, so the pair of indices with
//! release/acquire publication is a textbook SPSC bounded queue:
//!
//! - **push** (owner): read `head` relaxed, read `tail` acquire; if full,
//!   bump the drop counter and return; otherwise write the slot, then
//!   publish with a release store of `head + 1`.
//! - **drain** (consumer): read `tail` relaxed, read `head` acquire, copy
//!   slots `tail..head`, then free them with a release store of `tail`.
//!
//! A full buffer **drops** the event instead of blocking or overwriting —
//! the pipeline must never stall on its own instrumentation — and counts
//! the drop so exporters can flag the hole.

use crate::{EventKind, TraceEvent};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Slots per thread. At 32 bytes a slot this is 512 KiB per recording
/// thread — roomy enough that a periodic drainer (the serve trace flusher
/// runs every second) never loses events in practice.
const CAPACITY: usize = 1 << 14;

/// One recorded event, before thread attribution.
#[derive(Clone, Copy)]
struct Slot {
    kind: EventKind,
    name: &'static str,
    value: u64,
    ts_ns: u64,
}

const EMPTY_SLOT: Slot = Slot { kind: EventKind::Count, name: "", value: 0, ts_ns: 0 };

/// A single thread's event buffer. Shared as `Arc`: the owning thread's
/// TLS keeps one reference for pushing, the registry keeps another so the
/// buffer can still be drained after the thread exits.
struct ThreadBuffer {
    slots: Box<[UnsafeCell<Slot>]>,
    /// Producer index; monotonically increasing, wrapped by `% CAPACITY`
    /// on access.
    head: AtomicUsize,
    /// Consumer index; only advanced while holding the registry lock.
    tail: AtomicUsize,
    dropped: AtomicU64,
    tid: u32,
    thread_name: String,
}

// SAFETY: the slot array is a SPSC queue. The single producer (the owning
// thread, via TLS) writes only slots in `[head, tail + CAPACITY)` and
// publishes them with a release store; the single consumer (serialized by
// the registry mutex) reads only published slots `[tail, head)` after an
// acquire load. No slot is ever accessed concurrently.
unsafe impl Sync for ThreadBuffer {}
unsafe impl Send for ThreadBuffer {}

impl ThreadBuffer {
    fn new(tid: u32, thread_name: String) -> Self {
        ThreadBuffer {
            slots: (0..CAPACITY).map(|_| UnsafeCell::new(EMPTY_SLOT)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
            thread_name,
        }
    }

    /// Producer side; must only be called from the owning thread.
    fn push(&self, kind: EventKind, name: &'static str, value: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ts_ns = epoch().elapsed().as_nanos() as u64;
        // SAFETY: slot `head % CAPACITY` is outside the published range
        // `[tail, head)`, so the consumer does not read it until the
        // release store below makes the write visible.
        unsafe {
            *self.slots[head % CAPACITY].get() = Slot { kind, name, value, ts_ns };
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side; caller must hold the registry lock.
    fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let mut i = tail;
        while i != head {
            // SAFETY: `[tail, head)` was published by the producer's
            // release store and is not rewritten until `tail` advances.
            let slot = unsafe { *self.slots[i % CAPACITY].get() };
            out.push(TraceEvent {
                tid: self.tid,
                thread_name: self.thread_name.clone(),
                kind: slot.kind,
                name: slot.name,
                value: slot.value,
                ts_ns: slot.ts_ns,
            });
            i = i.wrapping_add(1);
        }
        self.tail.store(head, Ordering::Release);
    }
}

/// All buffers ever registered. Buffers of exited threads stay (cheap,
/// bounded by the process's peak thread count) so their tail events are
/// still drained.
static REGISTRY: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// The process-wide trace epoch: all timestamps are nanoseconds since the
/// first recorded event.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: Arc<ThreadBuffer> = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current().name().unwrap_or("").to_string();
        let buf = Arc::new(ThreadBuffer::new(tid, name));
        REGISTRY.lock().expect("obs registry poisoned").push(Arc::clone(&buf));
        buf
    };
}

/// Records one event into the calling thread's buffer. Callers have
/// already checked the [`crate::enabled`] gate.
pub(crate) fn push(kind: EventKind, name: &'static str, value: u64) {
    // `try_with` so a trace call during TLS destruction (thread teardown)
    // degrades to a dropped event instead of a panic.
    let _ = LOCAL.try_with(|buf| buf.push(kind, name, value));
}

/// Drains every registered buffer (destructive, exactly-once delivery).
pub(crate) fn drain_all() -> Vec<TraceEvent> {
    let registry = REGISTRY.lock().expect("obs registry poisoned");
    let mut out = Vec::new();
    for buf in registry.iter() {
        buf.drain_into(&mut out);
    }
    out
}

/// Total events dropped to full buffers, across all threads.
pub(crate) fn dropped_total() -> u64 {
    let registry = REGISTRY.lock().expect("obs registry poisoned");
    registry.iter().map(|b| b.dropped.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_buffer_drops_instead_of_blocking() {
        let buf = ThreadBuffer::new(999, "t".into());
        for _ in 0..CAPACITY + 10 {
            buf.push(EventKind::Count, "x", 1);
        }
        assert_eq!(buf.dropped.load(Ordering::Relaxed), 10);
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert_eq!(out.len(), CAPACITY);
        // Space is reclaimed after the drain.
        buf.push(EventKind::Count, "y", 2);
        out.clear();
        buf.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "y");
    }

    #[test]
    fn timestamps_are_monotone_per_buffer() {
        let buf = ThreadBuffer::new(998, "t".into());
        for i in 0..100 {
            buf.push(EventKind::Count, "tick", i);
        }
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        for pair in out.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }
}
