//! Chrome-trace-event export.
//!
//! Emits the [Trace Event Format] JSON array understood by
//! `chrome://tracing`, Perfetto and speedscope: `"B"`/`"E"` duration events
//! for spans (the viewers nest them per thread), `"C"` counter events with
//! running totals, and `"M"` metadata events naming each thread.
//!
//! Two entry points:
//!
//! - [`chrome_trace_json`] renders one drained batch into a complete,
//!   well-terminated array — the CLI `--trace out.json` path.
//! - [`ChromeTraceWriter`] appends batches incrementally to an
//!   `io::Write`. It never writes the closing `]` until
//!   [`ChromeTraceWriter::finish`], exploiting the format's documented
//!   tolerance for an unterminated array: a daemon killed mid-run (the
//!   serve `--trace-dir` flusher) still leaves a loadable trace behind.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{EventKind, TraceEvent};
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single-line JSON object (no trailing comma).
fn render_event(e: &TraceEvent, counters: &mut HashMap<(u32, &'static str), u64>) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"name\":\"");
    escape_json(e.name, &mut s);
    s.push_str("\",\"ph\":\"");
    s.push_str(match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Count => "C",
    });
    // Trace-event timestamps are microseconds; keep sub-µs precision with
    // a fixed three decimals.
    s.push_str(&format!(
        "\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
        e.ts_ns / 1_000,
        e.ts_ns % 1_000,
        e.tid
    ));
    if e.kind == EventKind::Count {
        // Counter tracks plot running totals, not deltas.
        let total = counters.entry((e.tid, e.name)).or_insert(0);
        *total += e.value;
        s.push_str(",\"args\":{\"");
        escape_json(e.name, &mut s);
        s.push_str(&format!("\":{total}}}"));
    }
    s.push('}');
    s
}

/// Renders the `"M"` thread-name metadata event for a tid.
fn render_thread_meta(tid: u32, thread_name: &str) -> String {
    let mut s = String::with_capacity(96);
    s.push_str(&format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
    ));
    escape_json(if thread_name.is_empty() { "unnamed" } else { thread_name }, &mut s);
    s.push_str("\"}}");
    s
}

/// Renders a drained batch as one complete Chrome trace (a terminated JSON
/// array, one event per line).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut counters = HashMap::new();
    let mut named: HashSet<u32> = HashSet::new();
    let mut out = String::from("[\n");
    let mut first = true;
    for e in events {
        if named.insert(e.tid) {
            if !first {
                out.push_str(",\n");
            }
            out.push_str(&render_thread_meta(e.tid, &e.thread_name));
            first = false;
        }
        if !first {
            out.push_str(",\n");
        }
        out.push_str(&render_event(e, &mut counters));
        first = false;
    }
    out.push_str("\n]\n");
    out
}

/// Incremental trace writer for long-running processes.
///
/// Opens the array on construction and appends events batch by batch; the
/// file stays loadable even if the process dies before
/// [`ChromeTraceWriter::finish`] because trace viewers accept an
/// unterminated top-level array.
pub struct ChromeTraceWriter<W: Write> {
    sink: W,
    counters: HashMap<(u32, &'static str), u64>,
    named: HashSet<u32>,
    wrote_any: bool,
}

impl<W: Write> ChromeTraceWriter<W> {
    /// Starts a trace: writes the opening `[`.
    ///
    /// # Errors
    ///
    /// Propagates write failures from the sink.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(b"[\n")?;
        Ok(ChromeTraceWriter {
            sink,
            counters: HashMap::new(),
            named: HashSet::new(),
            wrote_any: false,
        })
    }

    /// Appends a drained batch and flushes, so the bytes survive a kill.
    ///
    /// # Errors
    ///
    /// Propagates write failures from the sink.
    pub fn append(&mut self, events: &[TraceEvent]) -> io::Result<()> {
        let mut chunk = String::new();
        for e in events {
            if self.named.insert(e.tid) {
                if self.wrote_any {
                    chunk.push_str(",\n");
                }
                chunk.push_str(&render_thread_meta(e.tid, &e.thread_name));
                self.wrote_any = true;
            }
            if self.wrote_any {
                chunk.push_str(",\n");
            }
            chunk.push_str(&render_event(e, &mut self.counters));
            self.wrote_any = true;
        }
        self.sink.write_all(chunk.as_bytes())?;
        self.sink.flush()
    }

    /// Terminates the array. Optional — the trace loads without it.
    ///
    /// # Errors
    ///
    /// Propagates write failures from the sink.
    pub fn finish(mut self) -> io::Result<()> {
        self.sink.write_all(b"\n]\n")?;
        self.sink.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, kind: EventKind, name: &'static str, value: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent { tid, thread_name: format!("t{tid}"), kind, name, value, ts_ns }
    }

    #[test]
    fn complete_trace_has_metadata_and_counter_totals() {
        let events = vec![
            ev(1, EventKind::Begin, "optimize", 0, 1_000),
            ev(1, EventKind::Count, "search.accept", 2, 2_000),
            ev(1, EventKind::Count, "search.accept", 3, 3_000),
            ev(1, EventKind::End, "optimize", 0, 4_000),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        // Running total: 2 then 5, not the raw deltas.
        assert!(json.contains("{\"search.accept\":2}"));
        assert!(json.contains("{\"search.accept\":5}"));
    }

    #[test]
    fn incremental_writer_is_loadable_without_finish() {
        let mut sink = Vec::new();
        {
            let mut w = ChromeTraceWriter::new(&mut sink).unwrap();
            w.append(&[ev(1, EventKind::Begin, "job.run", 0, 10)]).unwrap();
            w.append(&[ev(1, EventKind::End, "job.run", 0, 20)]).unwrap();
            // No finish(): simulates a killed daemon.
        }
        let text = String::from_utf8(sink).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(!text.trim_end().ends_with(']'));
        // The validator still accepts it (unterminated arrays are legal).
        crate::validate::validate_chrome_trace(&text).unwrap();
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
