//! # ftes-opt
//!
//! Design optimization for fault-tolerant embedded systems (paper §6):
//! deciding the fault-tolerance policy assignment `F = <P, Q, R, X>`, the
//! mapping `M` of processes and replicas, and the checkpoint counts, such
//! that `k` transient faults are tolerated and the estimated worst-case
//! schedule length is minimized.
//!
//! * [`synthesize`] with a [`Strategy`] — the Fig. 7 comparison: the
//!   paper's MXR policy-assignment optimization vs the MX / MR / SFX
//!   strawmen;
//! * [`compare_checkpointing`] — the Fig. 8 comparison: global checkpoint
//!   optimization \[15\] vs the per-process local optimum of \[27\];
//! * [`tabu_search`] — the underlying search engine.
//!
//! ```
//! use ftes_gen::{generate_application, GeneratorConfig};
//! use ftes_model::Time;
//! use ftes_opt::{synthesize, SearchConfig, Strategy};
//! use ftes_tdma::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = generate_application(&GeneratorConfig::new(20, 3), 1)?;
//! let platform = Platform::homogeneous(3, Time::new(8))?;
//! let cfg = SearchConfig { iterations: 20, ..SearchConfig::default() };
//! let result = synthesize(&app, &platform, 2, Strategy::Mxr, cfg)?;
//! assert!(result.estimate.worst_case_length >= result.estimate.fault_free_length);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod bus;
mod checkpoint;
mod constructive;
mod error;
mod repair;
mod search;
mod strategy;

pub use anneal::{greedy_descent, simulated_annealing, SearchTrace};
pub use bus::{optimize_bus, BusOptConfig, OptimizedBus};
pub use checkpoint::{
    checkpointing_local, compare_checkpointing, fault_tolerance_overhead,
    optimize_checkpoints_global, CheckpointComparison,
};
pub use constructive::constructive_mapping;
pub use error::OptError;
pub use repair::{
    observed_calibration, synthesize_certified, synthesize_certified_mode, CertifiedSynthesis,
    CertifyMode, RepairConfig,
};
pub use search::{
    apply_move, candidate_policies, sample_move, tabu_search, tabu_search_guarded_with,
    tabu_search_traced, tabu_search_traced_with, tabu_search_with, BestGuard, CandidateMove,
    PolicyMoves, SearchConfig, Synthesized,
};
pub use strategy::{synthesize, synthesize_with, Strategy};
