//! Errors reported by design optimization.

use std::error::Error;
use std::fmt;

/// Error produced while synthesizing a system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptError {
    /// No feasible initial configuration exists (e.g. replication demanded
    /// on a process with too few candidate nodes under the MR strategy).
    NoFeasibleConfiguration(String),
    /// A scheduling evaluation failed.
    Sched(ftes_sched::SchedError),
    /// FT-CPG preparation failed.
    Cpg(ftes_ftcpg::CpgError),
    /// A model input was invalid.
    Model(ftes_model::ModelError),
    /// A fault-tolerance input was invalid.
    Ft(ftes_ft::FtError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::NoFeasibleConfiguration(why) => {
                write!(f, "no feasible configuration: {why}")
            }
            OptError::Sched(e) => write!(f, "schedule evaluation failed: {e}"),
            OptError::Cpg(e) => write!(f, "FT-CPG error: {e}"),
            OptError::Model(e) => write!(f, "model error: {e}"),
            OptError::Ft(e) => write!(f, "fault-tolerance error: {e}"),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Sched(e) => Some(e),
            OptError::Cpg(e) => Some(e),
            OptError::Model(e) => Some(e),
            OptError::Ft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ftes_sched::SchedError> for OptError {
    fn from(e: ftes_sched::SchedError) -> Self {
        OptError::Sched(e)
    }
}

impl From<ftes_ftcpg::CpgError> for OptError {
    fn from(e: ftes_ftcpg::CpgError) -> Self {
        OptError::Cpg(e)
    }
}

impl From<ftes_model::ModelError> for OptError {
    fn from(e: ftes_model::ModelError) -> Self {
        OptError::Model(e)
    }
}

impl From<ftes_ft::FtError> for OptError {
    fn from(e: ftes_ft::FtError) -> Self {
        OptError::Ft(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OptError::NoFeasibleConfiguration("demo".into());
        assert!(e.to_string().contains("demo"));
        assert!(e.source().is_none());
        let e = OptError::from(ftes_ft::FtError::NoCopies);
        assert!(e.source().is_some());
    }
}
