//! The four synthesis strategies compared in the paper's Fig. 7.
//!
//! * **MXR** — the paper's approach \[13\]: tabu search over both mapping and
//!   fault-tolerance policy assignment (re-execution, replication, or a
//!   combination per process).
//! * **MX** — mapping optimized, but policies fixed to re-execution only.
//! * **MR** — mapping optimized, but policies fixed to active replication
//!   only (processes whose mapping restrictions make replication impossible
//!   fall back to re-execution and the fallback count is reported).
//! * **SFX** — the straightforward solution of §1: the mapping is optimized
//!   while *ignoring* fault tolerance, then re-execution is bolted on
//!   without re-optimizing.

use crate::{
    constructive_mapping, tabu_search_with, OptError, PolicyMoves, SearchConfig, Synthesized,
};
use ftes_ft::PolicyAssignment;
use ftes_model::Application;
use ftes_sched::SystemEvaluator;
use ftes_tdma::Platform;
use std::fmt;

/// One of the Fig. 7 synthesis strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Mapping + policy assignment optimization (the paper's approach).
    Mxr,
    /// Mapping optimization with re-execution only.
    Mx,
    /// Mapping optimization with active replication only.
    Mr,
    /// Fault-oblivious mapping with re-execution bolted on.
    Sfx,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Mxr => "MXR",
            Strategy::Mx => "MX",
            Strategy::Mr => "MR",
            Strategy::Sfx => "SFX",
        };
        write!(f, "{s}")
    }
}

/// Synthesizes a configuration with the chosen strategy.
///
/// # Errors
///
/// Returns [`OptError::NoFeasibleConfiguration`] when even the fallback
/// initial state cannot be built, and propagates evaluation errors.
///
/// # Examples
///
/// ```
/// use ftes_gen::{generate_application, GeneratorConfig};
/// use ftes_model::Time;
/// use ftes_opt::{synthesize, SearchConfig, Strategy};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = generate_application(&GeneratorConfig::new(20, 3), 7)?;
/// let platform = Platform::homogeneous(3, Time::new(8))?;
/// let cfg = SearchConfig { iterations: 30, ..SearchConfig::default() };
/// let mxr = synthesize(&app, &platform, 2, Strategy::Mxr, cfg)?;
/// let mx = synthesize(&app, &platform, 2, Strategy::Mx, cfg)?;
/// assert!(mxr.estimate.worst_case_length <= mx.estimate.worst_case_length);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(
    app: &Application,
    platform: &Platform,
    k: u32,
    strategy: Strategy,
    config: SearchConfig,
) -> Result<Synthesized, OptError> {
    let mut evaluator = SystemEvaluator::new(app, platform, k);
    synthesize_with(&mut evaluator, strategy, config)
}

/// [`synthesize`] over a caller-provided evaluator kernel: the whole
/// multi-phase search (e.g. MXR's MX bootstrap plus the full search)
/// shares one evaluator, and the flow layer can hand in a warm one.
///
/// # Errors
///
/// Same as [`synthesize`].
pub fn synthesize_with(
    evaluator: &mut SystemEvaluator,
    strategy: Strategy,
    config: SearchConfig,
) -> Result<Synthesized, OptError> {
    let k = evaluator.k();
    let initial_mapping =
        constructive_mapping(evaluator.app(), evaluator.platform().architecture())?;
    match strategy {
        Strategy::Mxr => {
            // Phase 1: the MX solution (mapping search under re-execution)
            // seeds the full search, so MXR is never worse than MX — the
            // same bootstrapping the authors' heuristic uses.
            let mx = synthesize_with(evaluator, Strategy::Mx, config)?;
            tabu_search_with(evaluator, mx, PolicyMoves::Full, config)
        }
        Strategy::Mx => {
            let policies = PolicyAssignment::uniform_reexecution(evaluator.app(), k);
            let initial = Synthesized::evaluate_with(evaluator, initial_mapping, policies)?;
            tabu_search_with(evaluator, initial, PolicyMoves::None, config)
        }
        Strategy::Mr => {
            let policies = PolicyAssignment::uniform_replication(evaluator.app(), k);
            let initial = Synthesized::evaluate_with(evaluator, initial_mapping, policies)?;
            tabu_search_with(evaluator, initial, PolicyMoves::None, config)
        }
        Strategy::Sfx => {
            // Phase 1: fault-oblivious mapping (k = 0 objective) — a
            // different fault budget needs its own kernel.
            let mut no_ft_eval = SystemEvaluator::new(evaluator.app(), evaluator.platform(), 0);
            let no_ft = PolicyAssignment::uniform_reexecution(no_ft_eval.app(), 0);
            let initial = Synthesized::evaluate_with(&mut no_ft_eval, initial_mapping, no_ft)?;
            let tuned = tabu_search_with(&mut no_ft_eval, initial, PolicyMoves::None, config)?;
            // Phase 2: bolt re-execution on without re-optimizing.
            let policies = PolicyAssignment::uniform_reexecution(evaluator.app(), k);
            Synthesized::evaluate_with(evaluator, tuned.mapping, policies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_gen::{generate_application, GeneratorConfig};
    use ftes_model::{samples, Time};

    fn quick_cfg(seed: u64) -> SearchConfig {
        SearchConfig { iterations: 25, neighborhood: 12, seed, ..SearchConfig::default() }
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::Mxr.to_string(), "MXR");
        assert_eq!(Strategy::Sfx.to_string(), "SFX");
    }

    #[test]
    fn mr_works_even_with_restricted_processes() {
        // P3 can only run on N1; MR co-locates its replicas there.
        let (app, arch) = samples::fig3();
        let nodes = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(nodes, Time::new(8)).unwrap()).unwrap();
        let s = synthesize(&app, &platform, 1, Strategy::Mr, quick_cfg(0)).unwrap();
        s.policies.validate(1).unwrap();
        for (_, p) in s.policies.iter() {
            assert_eq!(p.replica_count(), 1, "MR replicates everything");
        }
    }

    #[test]
    fn mxr_dominates_fixed_policies_on_random_instances() {
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let mut mxr_wins = 0;
        for seed in 0..3u64 {
            let app = generate_application(&GeneratorConfig::new(15, 3), seed).unwrap();
            let k = 2;
            let mxr = synthesize(&app, &platform, k, Strategy::Mxr, quick_cfg(seed)).unwrap();
            let mx = synthesize(&app, &platform, k, Strategy::Mx, quick_cfg(seed)).unwrap();
            let mr = synthesize(&app, &platform, k, Strategy::Mr, quick_cfg(seed)).unwrap();
            // MXR's search space contains MX's and starts from the same
            // initial state, so it can only be at least as good.
            assert!(mxr.estimate.worst_case_length <= mx.estimate.worst_case_length);
            if mxr.estimate.worst_case_length < mr.estimate.worst_case_length {
                mxr_wins += 1;
            }
        }
        assert!(mxr_wins >= 2, "MXR beats MR on most random instances");
    }

    #[test]
    fn sfx_is_no_better_than_mxr_on_average() {
        // SFX maps while ignoring fault tolerance; on average the FT-aware
        // MXR must do at least as well (the §1 motivation for design
        // optimization). Individual seeds may tie.
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let mut sfx_total = 0i64;
        let mut mxr_total = 0i64;
        for seed in 0..4u64 {
            let app = generate_application(&GeneratorConfig::new(15, 3), seed).unwrap();
            let sfx = synthesize(&app, &platform, 2, Strategy::Sfx, quick_cfg(seed)).unwrap();
            let mxr = synthesize(&app, &platform, 2, Strategy::Mxr, quick_cfg(seed)).unwrap();
            sfx_total += sfx.estimate.worst_case_length.units();
            mxr_total += mxr.estimate.worst_case_length.units();
        }
        // Allow 2% slack: with the tiny unit-test search budget the two
        // heuristics can land within noise of each other; the full-budget
        // Fig. 7 harness measures the real gap.
        assert!(
            (mxr_total as f64) <= (sfx_total as f64) * 1.02,
            "MXR avg {mxr_total} vs SFX avg {sfx_total}"
        );
    }

    #[test]
    fn synthesized_configurations_tolerate_k() {
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let app = generate_application(&GeneratorConfig::new(12, 3), 5).unwrap();
        for strategy in [Strategy::Mxr, Strategy::Mx, Strategy::Mr, Strategy::Sfx] {
            let s = synthesize(&app, &platform, 2, strategy, quick_cfg(1)).unwrap();
            s.policies.validate(2).unwrap();
        }
    }
}
