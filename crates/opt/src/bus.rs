//! TDMA bus-access optimization: choosing the slot order and slot lengths
//! of the TDMA round to minimize the estimated worst-case schedule length.
//!
//! The paper assumes a given TTP bus configuration (§2), but its own
//! reference \[8\] (Eles et al., *Scheduling with Bus Access Optimization
//! for Distributed Embedded Systems*) shows the bus configuration is itself
//! a powerful design variable. This module reproduces that extension on top
//! of the fault-tolerant flow: a hill-climbing search over slot
//! permutations and slot-length scalings, evaluating each candidate bus
//! with the root-schedule estimator.

use crate::{OptError, Synthesized};
use ftes_ft::PolicyAssignment;
use ftes_model::{Application, Mapping, Time};
use ftes_tdma::{Platform, Slot, TdmaBus};

/// Options for the bus-access optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusOptConfig {
    /// Candidate slot lengths to consider (each node's slot picks one).
    pub slot_lengths: [i64; 3],
    /// Maximum hill-climbing passes.
    pub max_passes: usize,
}

impl Default for BusOptConfig {
    fn default() -> Self {
        BusOptConfig { slot_lengths: [4, 8, 16], max_passes: 8 }
    }
}

/// Result of the bus optimization.
#[derive(Debug, Clone)]
pub struct OptimizedBus {
    /// The chosen bus configuration.
    pub bus: TdmaBus,
    /// Estimated worst-case length under the chosen bus.
    pub estimate: Synthesized,
    /// Estimated worst-case length under the initial (uniform) bus.
    pub initial_worst_case: Time,
}

impl OptimizedBus {
    /// Relative improvement over the uniform starting bus, in percent.
    pub fn improvement_percent(&self) -> f64 {
        let base = self.initial_worst_case.as_f64();
        if base <= 0.0 {
            return 0.0;
        }
        100.0 * (base - self.estimate.estimate.worst_case_length.as_f64()) / base
    }
}

/// Optimizes the TDMA slot sequence and lengths for a fixed mapping and
/// policy assignment.
///
/// Moves: swap two slots in the round; change one slot's length to another
/// candidate. Steepest-descent until a full pass yields no improvement.
///
/// # Errors
///
/// Propagates estimator errors; the initial uniform bus must be feasible
/// (every message must fit the smallest candidate slot — callers pick
/// `slot_lengths` accordingly).
pub fn optimize_bus(
    app: &Application,
    platform: &Platform,
    mapping: Mapping,
    policies: PolicyAssignment,
    k: u32,
    config: BusOptConfig,
) -> Result<OptimizedBus, OptError> {
    let arch = platform.architecture().clone();
    let evaluate = |bus: TdmaBus, mapping: Mapping, policies: PolicyAssignment| {
        let platform = Platform::new(arch.clone(), bus).map_err(ftes_sched::SchedError::from)?;
        Synthesized::evaluate(app, &platform, mapping, policies, k)
    };

    let mut slots: Vec<Slot> = platform.bus().slots().to_vec();
    let mut best = evaluate(
        TdmaBus::new(slots.clone()).map_err(ftes_sched::SchedError::from)?,
        mapping.clone(),
        policies.clone(),
    )?;
    let initial_worst_case = best.estimate.worst_case_length;

    for _ in 0..config.max_passes {
        let mut improved = false;
        // Slot swaps.
        for i in 0..slots.len() {
            for j in (i + 1)..slots.len() {
                let mut candidate = slots.clone();
                candidate.swap(i, j);
                let Ok(bus) = TdmaBus::new(candidate.clone()) else { continue };
                let Ok(s) = evaluate(bus, mapping.clone(), policies.clone()) else {
                    continue;
                };
                if s.objective() < best.objective() {
                    slots = candidate;
                    best = s;
                    improved = true;
                }
            }
        }
        // Slot length changes.
        for i in 0..slots.len() {
            for &len in &config.slot_lengths {
                if slots[i].length == Time::new(len) {
                    continue;
                }
                let mut candidate = slots.clone();
                candidate[i].length = Time::new(len);
                let Ok(bus) = TdmaBus::new(candidate.clone()) else { continue };
                let Ok(s) = evaluate(bus, mapping.clone(), policies.clone()) else {
                    continue;
                };
                if s.objective() < best.objective() {
                    slots = candidate;
                    best = s;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(OptimizedBus {
        bus: TdmaBus::new(slots).map_err(ftes_sched::SchedError::from)?,
        estimate: best,
        initial_worst_case,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_gen::{generate_application, GeneratorConfig};

    fn setup(seed: u64) -> (Application, Platform, Mapping, PolicyAssignment) {
        let config = GeneratorConfig {
            layers: Some(8),
            edge_probability: 0.7,
            ..GeneratorConfig::new(16, 3)
        };
        let app = generate_application(&config, seed).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let mapping = crate::constructive_mapping(&app, platform.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        (app, platform, mapping, policies)
    }

    #[test]
    fn optimization_never_worsens() {
        for seed in 0..4u64 {
            let (app, platform, mapping, policies) = setup(seed);
            let out = optimize_bus(&app, &platform, mapping, policies, 2, BusOptConfig::default())
                .unwrap();
            assert!(
                out.estimate.estimate.worst_case_length <= out.initial_worst_case,
                "seed {seed}"
            );
            assert!(out.improvement_percent() >= 0.0);
        }
    }

    #[test]
    fn finds_an_improvement_somewhere() {
        let mut improved = 0;
        for seed in 0..6u64 {
            let (app, platform, mapping, policies) = setup(seed);
            let out = optimize_bus(&app, &platform, mapping, policies, 2, BusOptConfig::default())
                .unwrap();
            if out.improvement_percent() > 0.0 {
                improved += 1;
            }
        }
        assert!(improved > 0, "bus access optimization must pay off on some instances");
    }

    #[test]
    fn preserves_one_slot_per_node() {
        let (app, platform, mapping, policies) = setup(1);
        let node_count = platform.architecture().node_count();
        let out =
            optimize_bus(&app, &platform, mapping, policies, 2, BusOptConfig::default()).unwrap();
        for n in 0..node_count {
            assert!(
                out.bus.longest_slot(ftes_model::NodeId::new(n)).is_some(),
                "every node keeps a slot"
            );
        }
        assert_eq!(out.bus.slots().len(), node_count);
    }

    #[test]
    fn zero_pass_budget_returns_initial() {
        let (app, platform, mapping, policies) = setup(2);
        let cfg = BusOptConfig { max_passes: 0, ..BusOptConfig::default() };
        let out = optimize_bus(&app, &platform, mapping, policies, 2, cfg).unwrap();
        assert_eq!(out.estimate.estimate.worst_case_length, out.initial_worst_case);
        assert_eq!(out.improvement_percent(), 0.0);
    }
}
