//! Constructive initial mapping: a communication-aware list-mapping
//! heuristic in the HEFT tradition, used to seed the tabu search (§6's
//! "constructive mapping" starting point, as in Kandasamy et al. \[19\] and
//! the authors' own flow).
//!
//! Processes are visited in topological order (so predecessors are placed
//! first); each is placed on the feasible node minimizing its estimated
//! finish time, accounting for accumulated node load and the bus cost of
//! cross-node predecessor data.

use ftes_model::{Application, Architecture, Mapping, ModelError, NodeId, Time};

/// Builds a communication-aware initial mapping.
///
/// # Errors
///
/// Propagates [`ModelError`] from mapping validation (only reachable for
/// inconsistent inputs).
///
/// # Examples
///
/// ```
/// use ftes_model::{samples, Architecture};
/// use ftes_opt::constructive_mapping;
///
/// # fn main() -> Result<(), ftes_model::ModelError> {
/// let (app, arch) = samples::fig3();
/// let mapping = constructive_mapping(&app, &arch)?;
/// // P3 can only live on N1 (index 0).
/// assert_eq!(mapping.node_of(ftes_model::ProcessId::new(2)).index(), 0);
/// # Ok(())
/// # }
/// ```
pub fn constructive_mapping(app: &Application, arch: &Architecture) -> Result<Mapping, ModelError> {
    let n = app.process_count();
    let order = app.topological_order();

    let mut load = vec![Time::ZERO; arch.node_count()];
    let mut finish = vec![Time::ZERO; n];
    let mut assign: Vec<NodeId> = vec![NodeId::new(0); n];
    for &pid in order {
        let p = app.process(pid);
        let mut best: Option<(Time, NodeId)> = None;
        let candidates: Vec<NodeId> = match p.fixed_node() {
            Some(fixed) => vec![fixed],
            None => p.candidate_nodes().collect(),
        };
        for node in candidates {
            let Some(wcet) = p.wcet_on(node) else { continue };
            let mut ready = p.release();
            for &(pred, mid) in app.predecessors(pid) {
                let comm = if assign[pred.index()] == node {
                    Time::ZERO
                } else {
                    app.message(mid).transmission()
                };
                ready = ready.max(finish[pred.index()] + comm);
            }
            let start = ready.max(load[node.index()]);
            let f = start + wcet;
            if best.map(|(bf, bn)| (f, node.index()) < (bf, bn.index())).unwrap_or(true) {
                best = Some((f, node));
            }
        }
        let (f, node) = best.expect("validated processes have a feasible node");
        assign[pid.index()] = node;
        finish[pid.index()] = f;
        load[node.index()] = f;
    }
    Mapping::new(app, arch, assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_gen::{generate_application, GeneratorConfig};
    use ftes_model::{samples, ProcessId};
    use ftes_tdma::Platform;

    #[test]
    fn respects_restrictions_and_fixed_nodes() {
        let (app, arch) = samples::fig3();
        let m = constructive_mapping(&app, &arch).unwrap();
        // P3 is N1-only.
        assert_eq!(m.node_of(ProcessId::new(2)), ftes_model::NodeId::new(0));
    }

    #[test]
    fn spreads_parallel_work() {
        // Fig. 3: P2 and P3 are both fed by P1 and independent; a
        // communication-aware mapper should not pile everything on one
        // node (unlike Mapping::cheapest, which does).
        let (app, arch) = samples::fig3();
        let m = constructive_mapping(&app, &arch).unwrap();
        let nodes: std::collections::BTreeSet<_> = m.iter().map(|(_, n)| n.index()).collect();
        assert!(nodes.len() > 1, "constructive mapping uses both nodes");
    }

    #[test]
    fn beats_cheapest_on_average() {
        // Deep graphs with cross-node traffic are where communication-aware
        // placement pays; compare the fault-free root-schedule length (the
        // quantity the mapper actually estimates).
        let platform = Platform::homogeneous(3, ftes_model::Time::new(8)).unwrap();
        let mut constructive_total = 0.0;
        let mut cheapest_total = 0.0;
        for seed in 0..6u64 {
            let config = GeneratorConfig {
                layers: Some(10),
                edge_probability: 0.7,
                ..GeneratorConfig::new(20, 3)
            };
            let app = generate_application(&config, seed).unwrap();
            let policies = PolicyAssignment::uniform_reexecution(&app, 2);
            let eval = |m: Mapping| {
                crate::Synthesized::evaluate(&app, &platform, m, policies.clone(), 2)
                    .unwrap()
                    .estimate
                    .fault_free_length
                    .as_f64()
            };
            constructive_total +=
                eval(constructive_mapping(&app, platform.architecture()).unwrap());
            cheapest_total += eval(Mapping::cheapest(&app, platform.architecture()).unwrap());
        }
        assert!(
            constructive_total < cheapest_total,
            "HEFT-style seeding beats cheapest-WCET on average: {constructive_total} vs {cheapest_total}"
        );
    }

    #[test]
    fn output_is_always_valid() {
        for seed in 0..5u64 {
            let app = generate_application(&GeneratorConfig::new(15, 4), seed).unwrap();
            let arch = ftes_model::Architecture::homogeneous(4).unwrap();
            // Mapping::new inside constructive_mapping validates feasibility.
            constructive_mapping(&app, &arch).unwrap();
        }
    }
}
