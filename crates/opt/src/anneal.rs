//! Alternative search engines over the same move space as the tabu search:
//! greedy steepest descent and simulated annealing. These back the search
//! ablation (`fig_ablation_search`): the paper commits to tabu search for
//! MXR \[13\]; the ablation quantifies how much the choice of metaheuristic
//! matters on our workloads.

use crate::search::{sample_neighborhood, score_neighborhood};
use crate::{OptError, PolicyMoves, SearchConfig, Synthesized};
use ftes_model::Application;
use ftes_sched::SystemEvaluator;
use ftes_tdma::Platform;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Objective trace of a search: the best objective value after each
/// iteration (worst-case schedule length units).
pub type SearchTrace = Vec<i64>;

/// Greedy steepest descent: per iteration, sample the neighborhood and take
/// the best move only if it improves the current state; stop early when a
/// full iteration finds no improvement.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn greedy_descent(
    app: &Application,
    platform: &Platform,
    k: u32,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
) -> Result<(Synthesized, SearchTrace), OptError> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut evaluator = SystemEvaluator::new(app, platform, k);
    evaluator.evaluate(&initial.copies, &initial.policies)?;
    let mut current = initial;
    let mut trace = SearchTrace::with_capacity(config.iterations);
    for _ in 0..config.iterations {
        // Sample the whole neighborhood, then score it in one batch pass.
        let proposals = sample_neighborhood(&evaluator, &current, policy_moves, config, &mut rng);
        let candidates = score_neighborhood(&mut evaluator, proposals);
        let mut best_move: Option<Synthesized> = None;
        for (cand, _) in candidates {
            if cand.objective() < best_move.as_ref().map_or(current.objective(), |b| b.objective())
            {
                best_move = Some(cand);
            }
        }
        ftes_obs::counter(ftes_obs::names::SEARCH_ITER, 1);
        match best_move {
            Some(next) => {
                ftes_obs::counter(ftes_obs::names::SEARCH_ACCEPT, 1);
                current = next;
                // Re-anchor the delta base at the accepted state.
                evaluator.evaluate(&current.copies, &current.policies)?;
            }
            None => {
                ftes_obs::counter(ftes_obs::names::SEARCH_REJECT, 1);
                trace.push(current.estimate.worst_case_length.units());
                break;
            }
        }
        trace.push(current.estimate.worst_case_length.units());
    }
    Ok((current, trace))
}

/// Simulated annealing over the same neighborhood: accept improving moves
/// always, worsening moves with probability `exp(−Δ/T)`, with geometric
/// cooling from an initial temperature proportional to the initial
/// objective.
///
/// Like the portfolio workers in `ftes-explore`, each outer iteration
/// samples its whole neighborhood from the iteration-start state, scores
/// it in one batch pass, then walks the candidates sequentially applying
/// the Metropolis acceptance rule (so `Δ` is measured against the evolving
/// current state).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn simulated_annealing(
    app: &Application,
    platform: &Platform,
    k: u32,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
) -> Result<(Synthesized, SearchTrace), OptError> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut evaluator = SystemEvaluator::new(app, platform, k);
    evaluator.evaluate(&initial.copies, &initial.policies)?;
    let mut current = initial.clone();
    let mut best = initial;
    let mut trace = SearchTrace::with_capacity(config.iterations);
    // Initial temperature: 5% of the initial objective; floor of 1.
    let mut temperature = (best.estimate.worst_case_length.as_f64() * 0.05).max(1.0);
    let cooling = 0.95f64;
    for _ in 0..config.iterations {
        // Sample and batch-score the neighborhood of the iteration-start
        // state, then apply the acceptance walk over the scored candidates.
        let proposals = sample_neighborhood(&evaluator, &current, policy_moves, config, &mut rng);
        let candidates = score_neighborhood(&mut evaluator, proposals);
        let mut accepted = false;
        for (cand, _) in candidates {
            let delta =
                (cand.estimate.worst_case_length - current.estimate.worst_case_length).as_f64();
            let accept = delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().min(1.0));
            ftes_obs::counter(ftes_obs::names::SEARCH_ITER, 1);
            ftes_obs::counter(
                if accept {
                    ftes_obs::names::SEARCH_ACCEPT
                } else {
                    ftes_obs::names::SEARCH_REJECT
                },
                1,
            );
            if accept {
                current = cand;
                accepted = true;
                if current.objective() < best.objective() {
                    best = current.clone();
                }
            }
        }
        if accepted {
            // Re-anchor the delta base at the walk's final state so the
            // next iteration's batch diffs against it.
            evaluator.evaluate(&current.copies, &current.policies)?;
        }
        temperature = (temperature * cooling).max(1e-3);
        trace.push(best.estimate.worst_case_length.units());
    }
    Ok((best, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_gen::{generate_application, GeneratorConfig};
    use ftes_model::{Mapping, Time};

    fn setup(seed: u64) -> (Application, Platform, Synthesized) {
        let app = generate_application(&GeneratorConfig::new(12, 3), seed).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let initial = Synthesized::evaluate(&app, &platform, mapping, policies, 2).unwrap();
        (app, platform, initial)
    }

    fn cfg(seed: u64) -> SearchConfig {
        SearchConfig { iterations: 20, neighborhood: 10, seed, ..SearchConfig::default() }
    }

    #[test]
    fn greedy_never_worsens_and_trace_is_monotone() {
        let (app, platform, initial) = setup(0);
        let start = initial.objective();
        let (result, trace) =
            greedy_descent(&app, &platform, 2, initial, PolicyMoves::Full, cfg(0)).unwrap();
        assert!(result.objective() <= start);
        for w in trace.windows(2) {
            assert!(w[1] <= w[0], "greedy trace is non-increasing");
        }
    }

    #[test]
    fn annealing_best_never_worse_than_initial() {
        let (app, platform, initial) = setup(1);
        let start = initial.objective();
        let (result, trace) =
            simulated_annealing(&app, &platform, 2, initial, PolicyMoves::Full, cfg(1)).unwrap();
        assert!(result.objective() <= start);
        assert_eq!(trace.len(), 20);
        for w in trace.windows(2) {
            assert!(w[1] <= w[0], "best-so-far trace is non-increasing");
        }
        result.policies.validate(2).unwrap();
    }

    #[test]
    fn engines_are_deterministic_in_seed() {
        let (app, platform, initial) = setup(2);
        let (a, ta) =
            simulated_annealing(&app, &platform, 2, initial.clone(), PolicyMoves::Full, cfg(7))
                .unwrap();
        let (b, tb) =
            simulated_annealing(&app, &platform, 2, initial, PolicyMoves::Full, cfg(7)).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(ta, tb);
    }
}
