//! The certify-and-repair loop: exact certification of search incumbents,
//! with bounded calibrated re-search when certification refutes them.
//!
//! The searches in this crate optimize against the fast root-schedule
//! estimator, which is optimistic relative to the exact conditional
//! schedule — so an incumbent whose *estimated* worst case meets the
//! deadline can still be unschedulable in the exact schedule tables. The
//! loop here closes that gap:
//!
//! 1. synthesize an incumbent with the chosen strategy (estimator-driven,
//!    unchanged);
//! 2. certify it on the exact conditional schedule through a
//!    [`Certifier`] (memoized, work-budgeted);
//! 3. on refutation, fold the observed `exact / estimate` ratio into the
//!    search's acceptance (see `SearchConfig::calibration_milli`) and
//!    re-search from the refuted incumbent with a re-derived seed — the
//!    calibrated objective now sorts configurations predicted
//!    unschedulable *after* every predicted-schedulable one, steering the
//!    search back toward the certified-feasible frontier;
//! 4. repeat up to [`RepairConfig::max_rounds`] times; if no round
//!    certifies, return the refuted incumbent with the smallest exact
//!    length, explicitly tagged.
//!
//! Instances whose FT-CPG exceeds the size budget short-circuit to the
//! estimate-only regime (the paper's large-scale experiments) — there is
//! no exact schedule to certify against, and the outcome says so.

use crate::{synthesize_with, OptError, PolicyMoves, SearchConfig, Strategy, Synthesized};
use ftes_sched::{calibration_milli, CertOutcome, Certifier, SystemEvaluator};

/// Tunables of the certify-and-repair loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// Calibrated re-searches allowed after a refuted certification. Zero
    /// disables repair (incumbents are still certified and tagged).
    pub max_rounds: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig { max_rounds: 2 }
    }
}

/// Result of a certified synthesis: the incumbent plus its exact verdict.
#[derive(Debug, Clone)]
pub struct CertifiedSynthesis {
    /// The returned incumbent. When `outcome` is certified this is the
    /// first configuration that passed exact certification; when refuted
    /// it is the refuted configuration with the smallest exact length.
    pub best: Synthesized,
    /// The incumbent's exact verdict.
    pub outcome: CertOutcome,
    /// Calibrated repair searches actually run.
    pub repair_rounds: u32,
    /// Final calibration factor (milli-units; 1000 = estimator never
    /// under-priced an incumbent on this instance).
    pub calibration_milli: u64,
}

/// [`synthesize_with`](crate::synthesize_with) followed by the
/// certify-and-repair loop: the returned incumbent is exact-certified
/// schedulable, or explicitly tagged with its exact verdict when repair
/// rounds (or the certifier's budget) ran out.
///
/// The certifier must be built for the same `(app, platform, k)` instance
/// as the evaluator; transparency lives in the certifier.
///
/// # Panics
///
/// Panics if the certifier and evaluator disagree on the fault budget
/// (a caller bug, not an input error).
///
/// # Errors
///
/// Propagates search errors and hard certification failures (anything but
/// size/work-budget overruns, which degrade to
/// [`CertOutcome::OverBudget`]).
pub fn synthesize_certified(
    evaluator: &mut SystemEvaluator,
    certifier: &mut Certifier,
    strategy: Strategy,
    search: SearchConfig,
    repair: RepairConfig,
) -> Result<CertifiedSynthesis, OptError> {
    assert_eq!(evaluator.k(), certifier.k(), "certifier built for a different fault budget");
    let mut incumbent = synthesize_with(evaluator, strategy, search)?;
    // Only MXR explores policies; the fixed-policy strategies repair by
    // remapping alone, mirroring their original search space.
    let policy_moves =
        if strategy == Strategy::Mxr { PolicyMoves::Full } else { PolicyMoves::None };

    let mut rounds = 0u32;
    let mut best_refuted: Option<(Synthesized, ftes_model::Time)> = None;
    loop {
        match certifier
            .certify(&incumbent.copies, &incumbent.policies)
            .map_err(certify_to_opt_error)?
        {
            CertOutcome::Exact { exact_len, deadline_met } => {
                certifier.record_estimate(exact_len, incumbent.estimate.worst_case_length);
                if deadline_met {
                    return Ok(CertifiedSynthesis {
                        best: incumbent,
                        outcome: CertOutcome::Exact { exact_len, deadline_met },
                        repair_rounds: rounds,
                        calibration_milli: certifier.calibration_milli(),
                    });
                }
                let better = best_refuted.as_ref().is_none_or(|&(_, len)| exact_len < len);
                if better {
                    best_refuted = Some((incumbent.clone(), exact_len));
                }
            }
            CertOutcome::OverBudget => {
                // Estimate-only regime (or exhausted certifier): nothing
                // exact to repair against; return the best refuted
                // configuration if one was measured, else the incumbent.
                let (best, outcome) = match best_refuted {
                    Some((refuted, len)) => {
                        (refuted, CertOutcome::Exact { exact_len: len, deadline_met: false })
                    }
                    None => (incumbent, CertOutcome::OverBudget),
                };
                return Ok(CertifiedSynthesis {
                    best,
                    outcome,
                    repair_rounds: rounds,
                    calibration_milli: certifier.calibration_milli(),
                });
            }
        }
        if rounds >= repair.max_rounds {
            let (best, exact_len) = best_refuted.expect("refuted at least once to get here");
            return Ok(CertifiedSynthesis {
                best,
                outcome: CertOutcome::Exact { exact_len, deadline_met: false },
                repair_rounds: rounds,
                calibration_milli: certifier.calibration_milli(),
            });
        }
        rounds += 1;
        ftes_obs::counter(ftes_obs::names::REPAIR_ROUND, 1);
        // Calibrated repair search from the refuted incumbent: a fresh
        // seed per round (golden-ratio mix keeps rounds decorrelated but
        // deterministic), acceptance inflating estimates by the measured
        // factor. When the refutation came from estimator under-pricing
        // the start state is itself penalized under the calibrated
        // objective (its inflated estimate exceeds the deadline), so any
        // predicted-schedulable configuration displaces it. Refutations
        // the factor cannot model — a missed *local* deadline, or the
        // pessimistic-inversion tail where exact ≤ estimate — leave the
        // calibration at 1, and the round repairs by reseeded
        // diversification alone.
        let cfg = SearchConfig {
            seed: search.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rounds as u64),
            calibration_milli: certifier.calibration_milli(),
            ..search
        };
        // Re-anchor the evaluator's delta base at the restart state.
        evaluator.evaluate(&incumbent.copies, &incumbent.policies)?;
        incumbent = crate::tabu_search_with(evaluator, incumbent, policy_moves, cfg)?;
    }
}

/// Maps hard certification failures onto [`OptError`] (graph and schedule
/// layers already have variants there).
fn certify_to_opt_error(e: ftes_sched::CertifyError) -> OptError {
    match e {
        ftes_sched::CertifyError::Cpg(e) => OptError::Cpg(e),
        ftes_sched::CertifyError::Sched(e) => OptError::Sched(e),
        // `CertifyError` is non-exhaustive; future variants surface as an
        // infeasibility with the full message rather than being swallowed.
        other => OptError::NoFeasibleConfiguration(other.to_string()),
    }
}

/// Convenience: the calibration factor a single observation implies (see
/// [`ftes_sched::calibration_milli`]); re-exported here because repair-loop
/// callers reason in search vocabulary.
pub fn observed_calibration(exact: ftes_model::Time, estimate: ftes_model::Time) -> u64 {
    calibration_milli(exact, estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ftcpg::BuildConfig;
    use ftes_model::{samples, FaultModel, Time, Transparency};
    use ftes_sched::{CertifyConfig, SystemEvaluator};
    use ftes_tdma::Platform;

    fn fig3_setup(k: u32) -> (SystemEvaluator, Certifier) {
        let (app, arch) = samples::fig3();
        let nodes = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(nodes, Time::new(8)).unwrap()).unwrap();
        let evaluator = SystemEvaluator::new(&app, &platform, k);
        let certifier = Certifier::new(
            &app,
            &platform,
            FaultModel::new(k),
            &Transparency::none(),
            CertifyConfig::default(),
        );
        (evaluator, certifier)
    }

    fn quick() -> SearchConfig {
        SearchConfig { iterations: 20, neighborhood: 10, ..SearchConfig::default() }
    }

    #[test]
    fn feasible_instances_certify_without_repair() {
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let result = synthesize_certified(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            quick(),
            RepairConfig::default(),
        )
        .unwrap();
        assert!(result.outcome.is_certified(), "{:?}", result.outcome);
        assert_eq!(result.repair_rounds, 0);
        assert!(result.outcome.exact_len().is_some());
        assert!(result.calibration_milli >= 1000);
        result.best.policies.validate(2).unwrap();
    }

    #[test]
    fn oversized_graphs_degrade_to_the_estimate_only_regime() {
        let (mut evaluator, _) = fig3_setup(2);
        let (app, arch) = samples::fig3();
        let nodes = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(nodes, Time::new(8)).unwrap()).unwrap();
        let mut certifier = Certifier::new(
            &app,
            &platform,
            FaultModel::new(2),
            &Transparency::none(),
            CertifyConfig { cpg: BuildConfig { node_limit: 2 }, ..CertifyConfig::default() },
        );
        let result = synthesize_certified(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            quick(),
            RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(result.outcome, CertOutcome::OverBudget);
        assert_eq!(result.repair_rounds, 0);
        assert_eq!(result.calibration_milli, 1000);
    }

    #[test]
    fn repair_is_bounded_and_deterministic() {
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let repair = RepairConfig { max_rounds: 1 };
        let a =
            synthesize_certified(&mut evaluator, &mut certifier, Strategy::Mxr, quick(), repair)
                .unwrap();
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let b =
            synthesize_certified(&mut evaluator, &mut certifier, Strategy::Mxr, quick(), repair)
                .unwrap();
        assert_eq!(a.best.estimate, b.best.estimate);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.repair_rounds, b.repair_rounds);
        assert!(a.repair_rounds <= 1);
    }

    #[test]
    fn observed_calibration_matches_the_sched_helper() {
        assert_eq!(observed_calibration(Time::new(1041), Time::new(441)), 2361);
        assert_eq!(observed_calibration(Time::new(100), Time::new(100)), 1000);
    }
}
