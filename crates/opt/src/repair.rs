//! The certify-and-repair loop: exact certification of search incumbents,
//! with bounded calibrated re-search when certification refutes them.
//!
//! The searches in this crate optimize against the fast root-schedule
//! estimator, which is optimistic relative to the exact conditional
//! schedule — so an incumbent whose *estimated* worst case meets the
//! deadline can still be unschedulable in the exact schedule tables. The
//! loop here closes that gap:
//!
//! 1. synthesize an incumbent with the chosen strategy (estimator-driven,
//!    unchanged);
//! 2. certify it on the exact conditional schedule through a
//!    [`Certifier`] (memoized, work-budgeted);
//! 3. on refutation, fold the observed `exact / estimate` ratio into the
//!    search's acceptance (see `SearchConfig::calibration_milli`) and
//!    re-search from the refuted incumbent with a re-derived seed — the
//!    calibrated objective now sorts configurations predicted
//!    unschedulable *after* every predicted-schedulable one, steering the
//!    search back toward the certified-feasible frontier;
//! 4. repeat up to [`RepairConfig::max_rounds`] times; if no round
//!    certifies, return the refuted incumbent with the smallest exact
//!    length, explicitly tagged.
//!
//! Instances whose FT-CPG exceeds the size budget short-circuit to the
//! estimate-only regime (the paper's large-scale experiments) — there is
//! no exact schedule to certify against, and the outcome says so.

use crate::{
    synthesize_with, tabu_search_guarded_with, OptError, PolicyMoves, SearchConfig, Strategy,
    Synthesized,
};
use ftes_ft::PolicyAssignment;
use ftes_sched::{calibration_milli, BoundedCert, CertOutcome, Certifier, SystemEvaluator};

/// Tunables of the certify-and-repair loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// Calibrated re-searches allowed after a refuted certification. Zero
    /// disables repair (incumbents are still certified and tagged).
    pub max_rounds: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig { max_rounds: 2 }
    }
}

/// When exact certification runs relative to the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CertifyMode {
    /// Certify the finished incumbent only, repairing refutations by
    /// calibrated re-search — the classic loop.
    #[default]
    PostHoc,
    /// Certify incumbents *while* the search runs: a candidate whose
    /// estimate meets the deadline may only displace the search's best
    /// after an incremental, bounded certification admits it (refuted
    /// states are demoted during the search, so the returned incumbent is
    /// already certified and the post-hoc loop usually answers from the
    /// verdict memo with zero repair rounds).
    Guided,
}

/// Result of a certified synthesis: the incumbent plus its exact verdict.
#[derive(Debug, Clone)]
pub struct CertifiedSynthesis {
    /// The returned incumbent. When `outcome` is certified this is the
    /// first configuration that passed exact certification; when refuted
    /// it is the refuted configuration with the smallest exact length.
    pub best: Synthesized,
    /// The incumbent's exact verdict.
    pub outcome: CertOutcome,
    /// Calibrated repair searches actually run.
    pub repair_rounds: u32,
    /// Final calibration factor (milli-units; 1000 = estimator never
    /// under-priced an incumbent on this instance).
    pub calibration_milli: u64,
}

/// [`synthesize_with`](crate::synthesize_with) followed by the
/// certify-and-repair loop: the returned incumbent is exact-certified
/// schedulable, or explicitly tagged with its exact verdict when repair
/// rounds (or the certifier's budget) ran out.
///
/// The certifier must be built for the same `(app, platform, k)` instance
/// as the evaluator; transparency lives in the certifier.
///
/// # Panics
///
/// Panics if the certifier and evaluator disagree on the fault budget
/// (a caller bug, not an input error).
///
/// # Errors
///
/// Propagates search errors and hard certification failures (anything but
/// size/work-budget overruns, which degrade to
/// [`CertOutcome::OverBudget`]).
pub fn synthesize_certified(
    evaluator: &mut SystemEvaluator,
    certifier: &mut Certifier,
    strategy: Strategy,
    search: SearchConfig,
    repair: RepairConfig,
) -> Result<CertifiedSynthesis, OptError> {
    synthesize_certified_mode(evaluator, certifier, strategy, search, repair, CertifyMode::PostHoc)
}

/// [`synthesize_certified`] with an explicit [`CertifyMode`]: `PostHoc` is
/// the classic loop, `Guided` threads an incremental bounded certification
/// guard through the search itself (see [`CertifyMode::Guided`]).
///
/// # Panics
///
/// Panics if the certifier and evaluator disagree on the fault budget
/// (a caller bug, not an input error).
///
/// # Errors
///
/// Same as [`synthesize_certified`].
pub fn synthesize_certified_mode(
    evaluator: &mut SystemEvaluator,
    certifier: &mut Certifier,
    strategy: Strategy,
    search: SearchConfig,
    repair: RepairConfig,
    mode: CertifyMode,
) -> Result<CertifiedSynthesis, OptError> {
    assert_eq!(evaluator.k(), certifier.k(), "certifier built for a different fault budget");
    let mut incumbent = match mode {
        CertifyMode::PostHoc => synthesize_with(evaluator, strategy, search)?,
        CertifyMode::Guided => synthesize_guided_with(evaluator, certifier, strategy, search)?,
    };
    // Only MXR explores policies; the fixed-policy strategies repair by
    // remapping alone, mirroring their original search space.
    let policy_moves =
        if strategy == Strategy::Mxr { PolicyMoves::Full } else { PolicyMoves::None };

    let mut rounds = 0u32;
    let mut best_refuted: Option<(Synthesized, ftes_model::Time)> = None;
    loop {
        match certifier
            .certify(&incumbent.copies, &incumbent.policies)
            .map_err(certify_to_opt_error)?
        {
            CertOutcome::Exact { exact_len, deadline_met } => {
                certifier.record_estimate(exact_len, incumbent.estimate.worst_case_length);
                if deadline_met {
                    return Ok(CertifiedSynthesis {
                        best: incumbent,
                        outcome: CertOutcome::Exact { exact_len, deadline_met },
                        repair_rounds: rounds,
                        calibration_milli: certifier.calibration_milli(),
                    });
                }
                let better = best_refuted.as_ref().is_none_or(|&(_, len)| exact_len < len);
                if better {
                    best_refuted = Some((incumbent.clone(), exact_len));
                }
            }
            CertOutcome::OverBudget => {
                // Estimate-only regime (or exhausted certifier): nothing
                // exact to repair against; return the best refuted
                // configuration if one was measured, else the incumbent.
                let (best, outcome) = match best_refuted {
                    Some((refuted, len)) => {
                        (refuted, CertOutcome::Exact { exact_len: len, deadline_met: false })
                    }
                    None => (incumbent, CertOutcome::OverBudget),
                };
                return Ok(CertifiedSynthesis {
                    best,
                    outcome,
                    repair_rounds: rounds,
                    calibration_milli: certifier.calibration_milli(),
                });
            }
        }
        if rounds >= repair.max_rounds {
            let (best, exact_len) = best_refuted.expect("refuted at least once to get here");
            return Ok(CertifiedSynthesis {
                best,
                outcome: CertOutcome::Exact { exact_len, deadline_met: false },
                repair_rounds: rounds,
                calibration_milli: certifier.calibration_milli(),
            });
        }
        rounds += 1;
        ftes_obs::counter(ftes_obs::names::REPAIR_ROUND, 1);
        // Calibrated repair search from the refuted incumbent: a fresh
        // seed per round (golden-ratio mix keeps rounds decorrelated but
        // deterministic), acceptance inflating estimates by the measured
        // factor. When the refutation came from estimator under-pricing
        // the start state is itself penalized under the calibrated
        // objective (its inflated estimate exceeds the deadline), so any
        // predicted-schedulable configuration displaces it. Refutations
        // the factor cannot model — a missed *local* deadline, or the
        // pessimistic-inversion tail where exact ≤ estimate — leave the
        // calibration at 1, and the round repairs by reseeded
        // diversification alone.
        let cfg = SearchConfig {
            seed: search.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rounds as u64),
            calibration_milli: certifier.calibration_milli(),
            ..search
        };
        // Re-anchor the evaluator's delta base at the restart state.
        evaluator.evaluate(&incumbent.copies, &incumbent.policies)?;
        incumbent = match mode {
            CertifyMode::PostHoc => {
                crate::tabu_search_with(evaluator, incumbent, policy_moves, cfg)?
            }
            CertifyMode::Guided => {
                let deadline = evaluator.app().deadline();
                tabu_search_guarded_with(
                    evaluator,
                    incumbent,
                    policy_moves,
                    cfg,
                    &mut certify_guard(certifier, deadline),
                )?
                .0
            }
        };
    }
}

/// The certify-guided admission guard: candidates whose estimate already
/// misses the deadline are admitted untested (they rank exactly as the
/// estimator says; an exact run buys nothing), candidates that *look*
/// schedulable are incrementally certified against the deadline as an
/// upper bound — a pruned refutation or an exact deadline miss demotes
/// them during the search. `OverBudget` (size or work budget) admits: in
/// the estimate-only regime the guided search degrades to the classic one.
fn certify_guard(
    certifier: &mut Certifier,
    deadline: ftes_model::Time,
) -> impl FnMut(&Synthesized) -> Result<bool, OptError> + '_ {
    move |cand: &Synthesized| {
        if cand.estimate.worst_case_length > deadline {
            return Ok(true);
        }
        match certifier
            .certify_bounded(&cand.copies, &cand.policies, deadline)
            .map_err(certify_to_opt_error)?
        {
            BoundedCert::Verdict(CertOutcome::Exact { exact_len, deadline_met }) => {
                certifier.record_estimate(exact_len, cand.estimate.worst_case_length);
                Ok(deadline_met)
            }
            BoundedCert::Verdict(CertOutcome::OverBudget) => Ok(true),
            BoundedCert::Pruned { .. } => Ok(false),
        }
    }
}

/// The strategy dispatch of [`synthesize_with`], with the certify-guided
/// guard threaded through each strategy's *final* tabu phase (bootstrap
/// phases stay unguarded: MXR's MX seed explores plain re-execution
/// mappings, and SFX's phase 1 optimizes a fault-oblivious `k = 0`
/// objective the `k`-certifier cannot judge — SFX therefore synthesizes
/// exactly as post hoc and is guided only in its repair rounds).
fn synthesize_guided_with(
    evaluator: &mut SystemEvaluator,
    certifier: &mut Certifier,
    strategy: Strategy,
    config: SearchConfig,
) -> Result<Synthesized, OptError> {
    let k = evaluator.k();
    let deadline = evaluator.app().deadline();
    match strategy {
        Strategy::Mxr => {
            let mx = synthesize_with(evaluator, Strategy::Mx, config)?;
            Ok(tabu_search_guarded_with(
                evaluator,
                mx,
                PolicyMoves::Full,
                config,
                &mut certify_guard(certifier, deadline),
            )?
            .0)
        }
        Strategy::Mx | Strategy::Mr => {
            let initial_mapping =
                crate::constructive_mapping(evaluator.app(), evaluator.platform().architecture())?;
            let policies = if strategy == Strategy::Mx {
                PolicyAssignment::uniform_reexecution(evaluator.app(), k)
            } else {
                PolicyAssignment::uniform_replication(evaluator.app(), k)
            };
            let initial = Synthesized::evaluate_with(evaluator, initial_mapping, policies)?;
            Ok(tabu_search_guarded_with(
                evaluator,
                initial,
                PolicyMoves::None,
                config,
                &mut certify_guard(certifier, deadline),
            )?
            .0)
        }
        Strategy::Sfx => synthesize_with(evaluator, Strategy::Sfx, config),
    }
}

/// Maps hard certification failures onto [`OptError`] (graph and schedule
/// layers already have variants there).
fn certify_to_opt_error(e: ftes_sched::CertifyError) -> OptError {
    match e {
        ftes_sched::CertifyError::Cpg(e) => OptError::Cpg(e),
        ftes_sched::CertifyError::Sched(e) => OptError::Sched(e),
        // `CertifyError` is non-exhaustive; future variants surface as an
        // infeasibility with the full message rather than being swallowed.
        other => OptError::NoFeasibleConfiguration(other.to_string()),
    }
}

/// Convenience: the calibration factor a single observation implies (see
/// [`ftes_sched::calibration_milli`]); re-exported here because repair-loop
/// callers reason in search vocabulary.
pub fn observed_calibration(exact: ftes_model::Time, estimate: ftes_model::Time) -> u64 {
    calibration_milli(exact, estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ftcpg::BuildConfig;
    use ftes_model::{samples, FaultModel, Time, Transparency};
    use ftes_sched::{CertifyConfig, SystemEvaluator};
    use ftes_tdma::Platform;

    fn fig3_setup(k: u32) -> (SystemEvaluator, Certifier) {
        let (app, arch) = samples::fig3();
        let nodes = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(nodes, Time::new(8)).unwrap()).unwrap();
        let evaluator = SystemEvaluator::new(&app, &platform, k);
        let certifier = Certifier::new(
            &app,
            &platform,
            FaultModel::new(k),
            &Transparency::none(),
            CertifyConfig::default(),
        );
        (evaluator, certifier)
    }

    fn quick() -> SearchConfig {
        SearchConfig { iterations: 20, neighborhood: 10, ..SearchConfig::default() }
    }

    #[test]
    fn feasible_instances_certify_without_repair() {
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let result = synthesize_certified(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            quick(),
            RepairConfig::default(),
        )
        .unwrap();
        assert!(result.outcome.is_certified(), "{:?}", result.outcome);
        assert_eq!(result.repair_rounds, 0);
        assert!(result.outcome.exact_len().is_some());
        assert!(result.calibration_milli >= 1000);
        result.best.policies.validate(2).unwrap();
    }

    #[test]
    fn oversized_graphs_degrade_to_the_estimate_only_regime() {
        let (mut evaluator, _) = fig3_setup(2);
        let (app, arch) = samples::fig3();
        let nodes = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(nodes, Time::new(8)).unwrap()).unwrap();
        let mut certifier = Certifier::new(
            &app,
            &platform,
            FaultModel::new(2),
            &Transparency::none(),
            CertifyConfig { cpg: BuildConfig { node_limit: 2 }, ..CertifyConfig::default() },
        );
        let result = synthesize_certified(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            quick(),
            RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(result.outcome, CertOutcome::OverBudget);
        assert_eq!(result.repair_rounds, 0);
        assert_eq!(result.calibration_milli, 1000);
    }

    #[test]
    fn repair_is_bounded_and_deterministic() {
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let repair = RepairConfig { max_rounds: 1 };
        let a =
            synthesize_certified(&mut evaluator, &mut certifier, Strategy::Mxr, quick(), repair)
                .unwrap();
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let b =
            synthesize_certified(&mut evaluator, &mut certifier, Strategy::Mxr, quick(), repair)
                .unwrap();
        assert_eq!(a.best.estimate, b.best.estimate);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.repair_rounds, b.repair_rounds);
        assert!(a.repair_rounds <= 1);
    }

    #[test]
    fn observed_calibration_matches_the_sched_helper() {
        assert_eq!(observed_calibration(Time::new(1041), Time::new(441)), 2361);
        assert_eq!(observed_calibration(Time::new(100), Time::new(100)), 1000);
    }

    fn generated_setup(seed: u64) -> (SystemEvaluator, Certifier) {
        let app =
            ftes_gen::generate_application(&ftes_gen::GeneratorConfig::new(10, 3), seed).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let evaluator = SystemEvaluator::new(&app, &platform, 1);
        let certifier = Certifier::new(
            &app,
            &platform,
            FaultModel::new(1),
            &Transparency::none(),
            CertifyConfig::default(),
        );
        (evaluator, certifier)
    }

    #[test]
    fn guided_mode_certifies_incumbents_during_the_search() {
        // A generated instance whose deadline the search can meet: improving
        // candidates look schedulable, so the guard certifies them on
        // acceptance — incrementally, against the certifier's anchor — and
        // the final post-hoc check answers from the verdict memo.
        let (mut evaluator, mut certifier) = generated_setup(0);
        let cfg = SearchConfig { iterations: 25, neighborhood: 12, ..SearchConfig::default() };
        let result = synthesize_certified_mode(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            cfg,
            RepairConfig::default(),
            CertifyMode::Guided,
        )
        .unwrap();
        assert!(result.outcome.is_certified(), "{:?}", result.outcome);
        assert_eq!(result.repair_rounds, 0, "guided incumbents are already certified");
        let stats = certifier.stats();
        assert!(stats.cache_hits > 0, "post-hoc check must hit the memo: {stats:?}");
        assert!(stats.incremental_builds > 0, "guided runs rebuild from the anchor: {stats:?}");
        result.best.policies.validate(1).unwrap();
    }

    #[test]
    fn guided_mode_is_deterministic() {
        let cfg = SearchConfig { iterations: 25, neighborhood: 12, ..SearchConfig::default() };
        let run = || {
            let (mut evaluator, mut certifier) = generated_setup(3);
            synthesize_certified_mode(
                &mut evaluator,
                &mut certifier,
                Strategy::Mxr,
                cfg,
                RepairConfig::default(),
                CertifyMode::Guided,
            )
            .map(|r| {
                let s = certifier.stats();
                // Everything but wall-clock must replay exactly.
                let counters =
                    (s.requests, s.cache_hits, s.exact_runs, s.incremental_builds, s.pruned_runs);
                (r.best.estimate, r.outcome, r.repair_rounds, counters)
            })
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn post_hoc_mode_matches_the_classic_entry_point() {
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let classic = synthesize_certified(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            quick(),
            RepairConfig::default(),
        )
        .unwrap();
        let (mut evaluator, mut certifier) = fig3_setup(2);
        let explicit = synthesize_certified_mode(
            &mut evaluator,
            &mut certifier,
            Strategy::Mxr,
            quick(),
            RepairConfig::default(),
            CertifyMode::PostHoc,
        )
        .unwrap();
        assert_eq!(classic.best.estimate, explicit.best.estimate);
        assert_eq!(classic.outcome, explicit.outcome);
        assert_eq!(classic.repair_rounds, explicit.repair_rounds);
    }
}
