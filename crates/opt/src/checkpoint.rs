//! Global checkpoint-count optimization (paper §6, Fig. 8; technique of
//! \[15\]).
//!
//! The baseline of Fig. 8 computes the optimal number of checkpoints for
//! each process *in isolation* with the closed form of Punnekkat et al.
//! \[27\] ([`ftes_ft::RecoveryScheme::optimal_checkpoints_local`]). That
//! local optimum minimizes the process's own worst-case time but ignores
//! the schedule: checkpoints of processes off the critical path inflate the
//! fault-free schedule without buying recovery slack where it matters.
//!
//! The global optimizer starts from the local optimum and greedily applies
//! ±1-checkpoint moves, accepting whichever move most reduces the
//! *estimated worst-case schedule length* of the whole application, until
//! no move improves (or the iteration cap is reached).

use crate::{OptError, Synthesized};
use ftes_ft::{Policy, PolicyAssignment};
use ftes_model::{Application, Mapping};
use ftes_sched::SystemEvaluator;
use ftes_tdma::Platform;

/// Result of the checkpoint-optimization comparison for one instance.
#[derive(Debug, Clone)]
pub struct CheckpointComparison {
    /// Configuration using the per-process local optimum \[27\].
    pub local: Synthesized,
    /// Configuration after global optimization \[15\].
    pub global: Synthesized,
}

impl CheckpointComparison {
    /// Percentage improvement of the global optimization over the local
    /// baseline, measured on the worst-case schedule length — the "average
    /// % deviation" series of Fig. 8.
    pub fn improvement_percent(&self) -> f64 {
        let base = self.local.estimate.worst_case_length.as_f64();
        if base <= 0.0 {
            return 0.0;
        }
        100.0 * (base - self.global.estimate.worst_case_length.as_f64()) / base
    }
}

/// Builds the local-optimum checkpointing configuration (\[27\], the Fig. 8
/// baseline) on a fixed mapping.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn checkpointing_local(
    app: &Application,
    platform: &Platform,
    mapping: Mapping,
    k: u32,
    max_checkpoints: u32,
) -> Result<Synthesized, OptError> {
    let policies = PolicyAssignment::local_checkpointing(app, k, max_checkpoints)?;
    Synthesized::evaluate(app, platform, mapping, policies, k)
}

/// Globally optimizes checkpoint counts starting from `initial`
/// (greedy steepest descent over ±1 moves, \[15\]).
///
/// Only single-copy checkpointing policies are touched; replicated
/// processes keep their plans.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn optimize_checkpoints_global(
    app: &Application,
    platform: &Platform,
    initial: Synthesized,
    k: u32,
    max_checkpoints: u32,
    max_iterations: usize,
) -> Result<Synthesized, OptError> {
    // One kernel for the whole descent; ±1-checkpoint candidates are
    // neighbors of the accepted state, so they take the delta path.
    let mut evaluator = SystemEvaluator::new(app, platform, k);
    evaluator.evaluate(&initial.copies, &initial.policies)?;
    let mut best = initial;
    for _ in 0..max_iterations {
        let mut improved: Option<Synthesized> = None;
        for (pid, _) in app.processes() {
            let policy = best.policies.policy(pid);
            if policy.copies().len() != 1 {
                continue;
            }
            let plan = policy.copies()[0];
            for delta in [-1i64, 1] {
                let x = plan.checkpoints as i64 + delta;
                if x < 0 || x > i64::from(max_checkpoints) {
                    continue;
                }
                let mut policies = best.policies.clone();
                policies.set(pid, Policy::checkpointing(plan.recoveries, x as u32));
                let cand =
                    Synthesized::evaluate_neighbor(&mut evaluator, best.mapping.clone(), policies)?;
                let beats_current = cand.objective()
                    < improved.as_ref().map_or(best.objective(), |s| s.objective());
                if beats_current {
                    improved = Some(cand);
                }
            }
        }
        match improved {
            Some(next) => {
                best = next;
                // Re-anchor the delta base at the accepted state.
                evaluator.evaluate(&best.copies, &best.policies)?;
            }
            None => break,
        }
    }
    Ok(best)
}

/// Runs the full Fig. 8 comparison on one instance: local baseline \[27\] vs
/// global optimization \[15\], on the same mapping.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn compare_checkpointing(
    app: &Application,
    platform: &Platform,
    mapping: Mapping,
    k: u32,
    max_checkpoints: u32,
) -> Result<CheckpointComparison, OptError> {
    let local = checkpointing_local(app, platform, mapping, k, max_checkpoints)?;
    let global = optimize_checkpoints_global(app, platform, local.clone(), k, max_checkpoints, 64)?;
    Ok(CheckpointComparison { local, global })
}

/// Fault-tolerance overhead of a configuration relative to a fault-free
/// baseline length: `FTO = (worst − baseline) / baseline · 100%` (the
/// Fig. 7/8 metric).
pub fn fault_tolerance_overhead(s: &Synthesized, baseline_fault_free: ftes_model::Time) -> f64 {
    s.estimate.fault_tolerance_overhead(baseline_fault_free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_gen::{generate_application, GeneratorConfig};
    use ftes_model::{samples, ProcessId, Time};

    #[test]
    fn global_never_worse_than_local() {
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        for seed in 0..4u64 {
            let app = generate_application(&GeneratorConfig::new(20, 3), seed).unwrap();
            let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
            let cmp = compare_checkpointing(&app, &platform, mapping, 3, 16).unwrap();
            assert!(
                cmp.global.estimate.worst_case_length <= cmp.local.estimate.worst_case_length,
                "greedy descent can only improve (seed {seed})"
            );
            assert!(cmp.improvement_percent() >= 0.0);
            cmp.global.policies.validate(3).unwrap();
        }
    }

    #[test]
    fn global_optimization_finds_improvements_somewhere() {
        // Across a handful of instances, the global pass should strictly
        // improve at least one (the Fig. 8 effect).
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let mut improvements = 0;
        for seed in 0..6u64 {
            let app = generate_application(&GeneratorConfig::new(25, 3), seed).unwrap();
            let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
            let cmp = compare_checkpointing(&app, &platform, mapping, 3, 16).unwrap();
            if cmp.improvement_percent() > 0.0 {
                improvements += 1;
            }
        }
        assert!(improvements > 0, "global checkpointing must beat local somewhere");
    }

    #[test]
    fn replicated_processes_are_left_alone() {
        let (app, arch) = samples::fig3();
        let node_count = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, Time::new(8)).unwrap())
                .unwrap();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let k = 1;
        let mut policies = PolicyAssignment::local_checkpointing(&app, k, 8).unwrap();
        policies.set(ProcessId::new(0), Policy::replication(k));
        let initial = Synthesized::evaluate(&app, &platform, mapping, policies, k).unwrap();
        let out = optimize_checkpoints_global(&app, &platform, initial, k, 8, 16).unwrap();
        assert_eq!(out.policies.policy(ProcessId::new(0)).replica_count(), 1);
    }

    #[test]
    fn fto_helper_matches_estimate() {
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let (app, _) = samples::fig3();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let s = checkpointing_local(&app, &platform, mapping, 2, 8).unwrap();
        let fto = fault_tolerance_overhead(&s, s.estimate.fault_free_length);
        assert!(fto >= 0.0);
    }
}
