//! Tabu-search engine over mapping and policy-assignment moves (the MXR
//! optimization of \[13\], §6).
//!
//! A candidate state is a base mapping plus one policy per process; replicas
//! are placed by [`CopyMapping::from_base`] and the state is evaluated with
//! the root-schedule estimator. Moves:
//!
//! * **remap** — move one (non-fixed) process to another feasible node;
//! * **repolicy** — switch one process among its candidate policies
//!   (re-execution, replication, replication+checkpointed original).
//!
//! Recently touched processes are tabu for `tenure` iterations unless a move
//! beats the global best (aspiration).

use crate::OptError;
use ftes_ft::{CopyPlan, Policy, PolicyAssignment};
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, Architecture, Mapping, NodeId, ProcessId, Time};
use ftes_sched::{Estimate, SystemEvaluator};
use ftes_tdma::Platform;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Tunables of the tabu search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Total iterations.
    pub iterations: usize,
    /// Tabu tenure (iterations a touched process stays tabu).
    pub tenure: usize,
    /// Number of candidate moves sampled per iteration.
    pub neighborhood: usize,
    /// Cap on checkpoint counts considered by candidate policies.
    pub max_checkpoints: u32,
    /// Seed for the move sampler (deterministic searches).
    pub seed: u64,
    /// Estimator calibration factor in milli-units (1000 = trust the
    /// estimator as-is; values above 1000 inflate estimates before judging
    /// them against the deadline). The certify-and-repair loop measures the
    /// factor as the worst observed `exact / estimate` ratio and re-searches
    /// with it, so acceptance stops preferring configurations whose
    /// estimated worst case only *looks* schedulable. At the default 1000
    /// the search behaves exactly as the uncalibrated engine.
    pub calibration_milli: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 120,
            tenure: 8,
            neighborhood: 24,
            max_checkpoints: 16,
            seed: 1,
            calibration_milli: 1000,
        }
    }
}

impl SearchConfig {
    /// `true` when the estimated worst case, inflated by the calibration
    /// factor, exceeds the deadline — the acceptance penalty flag of the
    /// calibrated objective. Always `false` at the default factor of 1000,
    /// so uncalibrated searches are bit-for-bit unchanged.
    pub(crate) fn calibrated_over_deadline(&self, estimate: &Estimate, deadline: Time) -> bool {
        self.calibration_milli > 1000
            && (estimate.worst_case_length.units() as i128) * (self.calibration_milli as i128)
                > (deadline.units() as i128) * 1000
    }

    /// The calibrated search objective: states predicted unschedulable
    /// under the calibration factor sort after every predicted-schedulable
    /// state; within a class the usual (worst-case, fault-free) order
    /// applies.
    pub(crate) fn calibrated_objective(
        &self,
        candidate: &Synthesized,
        deadline: Time,
    ) -> (bool, Time, Time) {
        let (worst, fault_free) = candidate.objective();
        (self.calibrated_over_deadline(&candidate.estimate, deadline), worst, fault_free)
    }
}

/// A synthesized configuration: mapping, policies, derived copy placement
/// and its estimated worst-case schedule length.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// Base process mapping `M`.
    pub mapping: Mapping,
    /// Fault-tolerance policy assignment `F`.
    pub policies: PolicyAssignment,
    /// Copy placement (original + replicas).
    pub copies: CopyMapping,
    /// Estimated fault-free and worst-case schedule lengths.
    pub estimate: Estimate,
}

impl Synthesized {
    /// Evaluates a (mapping, policies) state with a one-shot evaluator.
    ///
    /// Hot paths hold a [`SystemEvaluator`] and use
    /// [`Synthesized::evaluate_with`] instead, amortizing the kernel's
    /// construction across a whole search.
    ///
    /// # Errors
    ///
    /// Propagates estimator and copy-placement errors.
    pub fn evaluate(
        app: &Application,
        platform: &Platform,
        mapping: Mapping,
        policies: PolicyAssignment,
        k: u32,
    ) -> Result<Self, OptError> {
        let mut evaluator = SystemEvaluator::new(app, platform, k);
        Synthesized::evaluate_with(&mut evaluator, mapping, policies)
    }

    /// Evaluates a (mapping, policies) state through a reusable evaluator
    /// kernel, anchoring it as the kernel's delta base.
    ///
    /// # Errors
    ///
    /// Propagates estimator and copy-placement errors.
    pub fn evaluate_with(
        evaluator: &mut SystemEvaluator,
        mapping: Mapping,
        policies: PolicyAssignment,
    ) -> Result<Self, OptError> {
        let copies = CopyMapping::from_base(
            evaluator.app(),
            evaluator.platform().architecture(),
            &mapping,
            &policies,
        )?;
        let estimate = evaluator.evaluate(&copies, &policies)?;
        Ok(Synthesized { mapping, policies, copies, estimate })
    }

    /// Evaluates a *neighbor* of the evaluator's anchored base state via
    /// the delta path (falling back to a full evaluation when the dirty
    /// region cascades — never to a wrong result).
    ///
    /// # Errors
    ///
    /// Propagates estimator and copy-placement errors.
    pub fn evaluate_neighbor(
        evaluator: &mut SystemEvaluator,
        mapping: Mapping,
        policies: PolicyAssignment,
    ) -> Result<Self, OptError> {
        let copies = CopyMapping::from_base(
            evaluator.app(),
            evaluator.platform().architecture(),
            &mapping,
            &policies,
        )?;
        let estimate = evaluator.delta_evaluate(&copies, &policies)?;
        Ok(Synthesized { mapping, policies, copies, estimate })
    }

    /// The optimization objective: worst-case length, fault-free length as
    /// tie-break.
    pub fn objective(&self) -> (Time, Time) {
        (self.estimate.worst_case_length, self.estimate.fault_free_length)
    }
}

/// Which policies a move may assign (strategy restriction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMoves {
    /// Policies are frozen; only remapping moves are explored.
    None,
    /// The full candidate set: re-execution, replication, combined.
    Full,
}

/// Candidate policies of one process under fault budget `k`.
pub fn candidate_policies(
    app: &Application,
    p: ProcessId,
    k: u32,
    max_checkpoints: u32,
) -> Vec<Policy> {
    let proc = app.process(p);
    let mut out = vec![Policy::reexecution(k)];
    if k == 0 {
        return out;
    }
    // Checkpointed single copy with the local optimum X (a cheap, good
    // default; the global checkpoint pass refines it).
    let min_wcet = proc
        .candidate_nodes()
        .filter_map(|n| proc.wcet_on(n))
        .min()
        .expect("validated application");
    if let Ok(scheme) = ftes_ft::RecoveryScheme::for_process(proc, min_wcet) {
        let x = scheme.optimal_checkpoints_local(k, max_checkpoints);
        if x > 0 {
            out.push(Policy::checkpointing(k, x));
        }
    }
    // Pure replication (Fig. 4b). Replicas may share nodes when the
    // process's candidate set is small (see CopyMapping).
    out.push(Policy::replication(k));
    // Combined (Fig. 4c): q replicas, the original absorbs the remaining
    // k − q faults by re-execution.
    for q in 1..k {
        let mut copies = vec![CopyPlan::reexecuted(k - q)];
        copies.extend(std::iter::repeat_n(CopyPlan::plain(), q as usize));
        out.push(Policy::from_copies(copies).expect("non-empty copy list"));
    }
    out
}

/// One sampled transformation of a candidate `(mapping, policies)` state —
/// the neighborhood vocabulary shared by every search engine (tabu,
/// annealing, greedy descent and the parallel portfolio workers of
/// `ftes-explore`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateMove {
    /// Move one process to another feasible node.
    Remap {
        /// The process being remapped.
        process: ProcessId,
        /// The target node.
        to: NodeId,
    },
    /// Switch one process to another candidate policy.
    Repolicy {
        /// The process whose policy changes.
        process: ProcessId,
        /// The new fault-tolerance policy.
        policy: Policy,
    },
}

impl CandidateMove {
    /// The process the move touches (the unit of tabu bookkeeping).
    pub fn process(&self) -> ProcessId {
        match self {
            CandidateMove::Remap { process, .. } | CandidateMove::Repolicy { process, .. } => {
                *process
            }
        }
    }
}

/// Samples one candidate move (remap or repolicy) from the neighborhood of
/// the given state **without evaluating it**; returns `None` for degenerate
/// samples (no-op moves, fixed or single-node processes).
///
/// Splitting sampling from evaluation lets callers batch evaluations —
/// `ftes-explore` fans a whole neighborhood across a thread pool and a
/// memoized estimate cache.
pub fn sample_move(
    app: &Application,
    mapping: &Mapping,
    policies: &PolicyAssignment,
    k: u32,
    policy_moves: PolicyMoves,
    config: SearchConfig,
    rng: &mut ChaCha8Rng,
) -> Option<CandidateMove> {
    let n = app.process_count();
    let p = ProcessId::new(rng.gen_range(0..n));
    let proc = app.process(p);
    let try_policy = policy_moves == PolicyMoves::Full && rng.gen_bool(0.5);
    if try_policy {
        let cands = candidate_policies(app, p, k, config.max_checkpoints);
        let pol = cands[rng.gen_range(0..cands.len())].clone();
        if *policies.policy(p) == pol {
            return None;
        }
        Some(CandidateMove::Repolicy { process: p, policy: pol })
    } else {
        if proc.fixed_node().is_some() {
            return None;
        }
        let nodes: Vec<NodeId> = proc.candidate_nodes().collect();
        if nodes.len() < 2 {
            return None;
        }
        let target = nodes[rng.gen_range(0..nodes.len())];
        if target == mapping.node_of(p) {
            return None;
        }
        Some(CandidateMove::Remap { process: p, to: target })
    }
}

/// Applies a move to a `(mapping, policies)` state, returning the successor
/// state or `None` when the move is infeasible (e.g. the remap violates a
/// mapping restriction).
pub fn apply_move(
    app: &Application,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &PolicyAssignment,
    mv: &CandidateMove,
) -> Option<(Mapping, PolicyAssignment)> {
    match mv {
        CandidateMove::Remap { process, to } => {
            let mapping = mapping.with_move(app, arch, *process, *to).ok()?;
            Some((mapping, policies.clone()))
        }
        CandidateMove::Repolicy { process, policy } => {
            let mut policies = policies.clone();
            policies.set(*process, policy.clone());
            Some((mapping.clone(), policies))
        }
    }
}

/// One sampled-and-applied (but not yet scored) neighbor of a search's
/// current state, ready for the evaluator's batch path.
pub(crate) struct Proposal {
    /// The process the originating move touches (tabu bookkeeping unit).
    pub(crate) process: ProcessId,
    pub(crate) mapping: Mapping,
    pub(crate) policies: PolicyAssignment,
    pub(crate) copies: CopyMapping,
}

/// Samples a whole neighborhood of `current` — up to `config.neighborhood`
/// candidate moves — applying each move and deriving its copy placement,
/// but **without scoring**. Degenerate samples (no-op moves, fixed or
/// single-node processes) and infeasible applications are skipped, exactly
/// like the sequential proposal loop did; the RNG stream is consumed
/// identically (scoring never drew from it).
///
/// Shared between the tabu search and the alternative engines in
/// [`crate::greedy_descent`] / [`crate::simulated_annealing`].
pub(crate) fn sample_neighborhood(
    evaluator: &SystemEvaluator,
    current: &Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<Proposal> {
    let k = evaluator.k();
    let app = evaluator.app();
    let arch = evaluator.platform().architecture();
    let mut proposals = Vec::with_capacity(config.neighborhood);
    for _ in 0..config.neighborhood {
        let Some(mv) =
            sample_move(app, &current.mapping, &current.policies, k, policy_moves, config, rng)
        else {
            continue;
        };
        let process = mv.process();
        let Some((mapping, policies)) =
            apply_move(app, arch, &current.mapping, &current.policies, &mv)
        else {
            continue;
        };
        // Infeasible copy placements are skipped rather than surfaced: the
        // move is simply not available (same as the sequential path).
        let Ok(copies) = CopyMapping::from_base(app, arch, &mapping, &policies) else { continue };
        proposals.push(Proposal { process, mapping, policies, copies });
    }
    proposals
}

/// Scores a sampled neighborhood through one [`evaluate_batch`] pass
/// (the kernel's base is the search's current state, so most candidates
/// re-schedule only a shared-prefix suffix). Candidates whose evaluation
/// fails (e.g. a policy the bus cannot carry) are dropped, mirroring the
/// sequential path's skip; survivors come back in proposal order.
///
/// [`evaluate_batch`]: SystemEvaluator::evaluate_batch
pub(crate) fn score_neighborhood(
    evaluator: &mut SystemEvaluator,
    proposals: Vec<Proposal>,
) -> Vec<(Synthesized, ProcessId)> {
    let refs: Vec<(&CopyMapping, &PolicyAssignment)> =
        proposals.iter().map(|pr| (&pr.copies, &pr.policies)).collect();
    let results = evaluator.evaluate_batch(&refs);
    drop(refs);
    proposals
        .into_iter()
        .zip(results)
        .filter_map(|(pr, res)| {
            let estimate = res.ok()?;
            let synthesized = Synthesized {
                mapping: pr.mapping,
                policies: pr.policies,
                copies: pr.copies,
                estimate,
            };
            Some((synthesized, pr.process))
        })
        .collect()
}

/// Runs a tabu search from an initial state, minimizing the estimated
/// worst-case schedule length.
///
/// # Errors
///
/// Propagates evaluation errors; the initial state must be feasible.
pub fn tabu_search(
    app: &Application,
    platform: &Platform,
    k: u32,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
) -> Result<Synthesized, OptError> {
    Ok(tabu_search_traced(app, platform, k, initial, policy_moves, config)?.0)
}

/// [`tabu_search`] over a caller-provided evaluator kernel (one evaluator
/// per search; the flow layer shares it across synthesis phases).
///
/// # Errors
///
/// Propagates evaluation errors; the initial state must be feasible.
pub fn tabu_search_with(
    evaluator: &mut SystemEvaluator,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
) -> Result<Synthesized, OptError> {
    Ok(tabu_search_traced_with(evaluator, initial, policy_moves, config)?.0)
}

/// [`tabu_search`] with an objective trace (best worst-case length after
/// each iteration), for the search ablation.
///
/// # Errors
///
/// Propagates evaluation errors; the initial state must be feasible.
pub fn tabu_search_traced(
    app: &Application,
    platform: &Platform,
    k: u32,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
) -> Result<(Synthesized, Vec<i64>), OptError> {
    let mut evaluator = SystemEvaluator::new(app, platform, k);
    tabu_search_traced_with(&mut evaluator, initial, policy_moves, config)
}

/// [`tabu_search_traced`] over a caller-provided evaluator kernel.
///
/// # Errors
///
/// Propagates evaluation errors; the initial state must be feasible.
pub fn tabu_search_traced_with(
    evaluator: &mut SystemEvaluator,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
) -> Result<(Synthesized, Vec<i64>), OptError> {
    tabu_search_guarded_with(evaluator, initial, policy_moves, config, &mut |_| Ok(true))
}

/// Admission guard consulted before a candidate may displace the search's
/// best-so-far state — the certify-guided hook. `Ok(true)` admits the
/// candidate as the new best; `Ok(false)` demotes it: the walk still
/// continues from it (it stays the *current* state), but it can never be
/// returned as the search's answer. The always-admit guard reproduces the
/// unguarded search bit for bit.
pub type BestGuard<'a> = &'a mut dyn FnMut(&Synthesized) -> Result<bool, OptError>;

/// [`tabu_search_traced_with`] with an admission guard on best-so-far
/// updates: certify-guided searches pass a guard that incrementally
/// certifies the candidate against the deadline and demotes refuted states
/// *during* the search instead of discovering them post hoc.
///
/// # Errors
///
/// Propagates evaluation errors and guard failures; the initial state must
/// be feasible.
pub fn tabu_search_guarded_with(
    evaluator: &mut SystemEvaluator,
    initial: Synthesized,
    policy_moves: PolicyMoves,
    config: SearchConfig,
    guard: BestGuard<'_>,
) -> Result<(Synthesized, Vec<i64>), OptError> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n = evaluator.app().process_count();
    let deadline = evaluator.app().deadline();
    // Anchor the delta base at the search's starting state.
    evaluator.evaluate(&initial.copies, &initial.policies)?;
    let mut current = initial.clone();
    let mut best = initial;
    let mut tabu_until = vec![0usize; n];
    let mut trace = Vec::with_capacity(config.iterations);

    for iter in 0..config.iterations {
        // Sample the whole neighborhood, then score it in one batch pass.
        let proposals = sample_neighborhood(evaluator, &current, policy_moves, config, &mut rng);
        let candidates = score_neighborhood(evaluator, proposals);
        let mut best_move: Option<(Synthesized, ProcessId)> = None;
        for (candidate, p) in candidates {
            let aspiration = config.calibrated_objective(&candidate, deadline)
                < config.calibrated_objective(&best, deadline);
            if tabu_until[p.index()] > iter && !aspiration {
                continue;
            }
            if best_move
                .as_ref()
                .map(|(s, _)| {
                    config.calibrated_objective(&candidate, deadline)
                        < config.calibrated_objective(s, deadline)
                })
                .unwrap_or(true)
            {
                best_move = Some((candidate, p));
            }
        }
        ftes_obs::counter(ftes_obs::names::SEARCH_ITER, 1);
        if let Some((next, p)) = best_move {
            ftes_obs::counter(ftes_obs::names::SEARCH_ACCEPT, 1);
            tabu_until[p.index()] = iter + config.tenure;
            if config.calibrated_objective(&next, deadline)
                < config.calibrated_objective(&best, deadline)
                && guard(&next)?
            {
                best = next.clone();
            }
            current = next;
            // Re-anchor the delta base at the accepted state.
            evaluator.evaluate(&current.copies, &current.policies)?;
        } else {
            ftes_obs::counter(ftes_obs::names::SEARCH_REJECT, 1);
        }
        trace.push(best.estimate.worst_case_length.units());
    }
    Ok((best, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::samples;

    fn setup(k: u32) -> (Application, Platform, Synthesized) {
        let (app, arch) = samples::fig3();
        let node_count = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, Time::new(8)).unwrap())
                .unwrap();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let initial = Synthesized::evaluate(&app, &platform, mapping, policies, k).unwrap();
        (app, platform, initial)
    }

    #[test]
    fn candidate_policies_tolerate_k() {
        let (app, _) = samples::fig3();
        // Replication is always among the candidates (replicas may share a
        // node); every candidate tolerates k.
        for k in 1..=3 {
            for (pid, _) in app.processes() {
                let cands = candidate_policies(&app, pid, k, 16);
                assert!(cands.iter().any(|p| p.replica_count() == k));
                for c in cands {
                    assert!(c.tolerates(k), "candidate must tolerate k={k}");
                }
            }
        }
    }

    #[test]
    fn k_zero_has_single_candidate() {
        let (app, _) = samples::fig3();
        let cands = candidate_policies(&app, ProcessId::new(0), 0, 16);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0], Policy::reexecution(0));
    }

    #[test]
    fn tabu_search_never_worsens_the_best() {
        let (app, platform, initial) = setup(2);
        let initial_obj = initial.objective();
        let result = tabu_search(
            &app,
            &platform,
            2,
            initial,
            PolicyMoves::Full,
            SearchConfig { iterations: 40, ..SearchConfig::default() },
        )
        .unwrap();
        assert!(result.objective() <= initial_obj);
        result.policies.validate(2).unwrap();
    }

    #[test]
    fn mapping_only_search_keeps_policies() {
        let (app, platform, initial) = setup(1);
        let before: Vec<_> = initial.policies.iter().map(|(_, p)| p.clone()).collect();
        let result = tabu_search(
            &app,
            &platform,
            1,
            initial,
            PolicyMoves::None,
            SearchConfig { iterations: 30, ..SearchConfig::default() },
        )
        .unwrap();
        let after: Vec<_> = result.policies.iter().map(|(_, p)| p.clone()).collect();
        assert_eq!(before, after, "PolicyMoves::None must not touch policies");
    }

    #[test]
    fn guard_admissions_control_the_returned_best() {
        let (app, platform, initial) = setup(2);
        let cfg = SearchConfig { iterations: 30, ..SearchConfig::default() };
        // An always-true guard reproduces the unguarded search bit for bit,
        // and is consulted once per attempted best displacement.
        let mut evaluator = SystemEvaluator::new(&app, &platform, 2);
        let mut calls = 0u32;
        let (admitted, trace_a) = tabu_search_guarded_with(
            &mut evaluator,
            initial.clone(),
            PolicyMoves::Full,
            cfg,
            &mut |_| {
                calls += 1;
                Ok(true)
            },
        )
        .unwrap();
        let (unguarded, trace_b) =
            tabu_search_traced(&app, &platform, 2, initial.clone(), PolicyMoves::Full, cfg)
                .unwrap();
        assert!(calls > 0, "the walk must try to displace the best at least once");
        assert_eq!(admitted.estimate, unguarded.estimate);
        assert_eq!(trace_a, trace_b);
        // An always-false guard demotes every candidate: the best never
        // moves off the initial state.
        let mut evaluator = SystemEvaluator::new(&app, &platform, 2);
        let (demoted, _) = tabu_search_guarded_with(
            &mut evaluator,
            initial.clone(),
            PolicyMoves::Full,
            cfg,
            &mut |_| Ok(false),
        )
        .unwrap();
        assert_eq!(demoted.estimate, initial.estimate);
        assert_eq!(demoted.mapping, initial.mapping);
    }

    #[test]
    fn search_is_deterministic_in_seed() {
        let (app, platform, initial) = setup(2);
        let cfg = SearchConfig { iterations: 25, seed: 99, ..SearchConfig::default() };
        let a = tabu_search(&app, &platform, 2, initial.clone(), PolicyMoves::Full, cfg).unwrap();
        let b = tabu_search(&app, &platform, 2, initial, PolicyMoves::Full, cfg).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.mapping, b.mapping);
    }
}
