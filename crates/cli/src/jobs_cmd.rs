//! The `ftes jobs` subcommand: a thin HTTP client for the serve daemon's
//! asynchronous job API.
//!
//! ```text
//! USAGE:
//!   ftes jobs submit --addr HOST:PORT (--spec FILE | --demo |
//!                    --explore "PARAMS" |
//!                    --corpus-family NAME [--seed N] [--workers N]) [--wait]
//!   ftes jobs list   --addr HOST:PORT
//!   ftes jobs status --addr HOST:PORT ID [--wait] [--result]
//!   ftes jobs cancel --addr HOST:PORT ID
//! ```
//!
//! `submit` prints `job N queued` (the id on its own parseable line);
//! `--wait` polls the job to a terminal state. `status --result` prints
//! only the raw terminal result bytes — the deterministic payload the CI
//! kill-resume smoke compares byte-for-byte between a crashed-and-resumed
//! daemon and an uninterrupted one.

use ftes::spec::FIG5_SPEC;
use ftes_serve::request;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long `--wait` polls before giving up on a terminal state.
const WAIT_TIMEOUT: Duration = Duration::from_secs(600);

/// What a `submit` invocation sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitPayload {
    /// `POST /jobs`: an asynchronous synthesis of one `.ftes` document.
    Synthesize(String),
    /// `POST /explore`: an asynchronous suite run (`key=value` params).
    Explore(String),
    /// `POST /corpus/run`: an asynchronous generated-corpus batch.
    Corpus {
        /// Family name (or `all`).
        family: String,
        /// Master seed (server default when `None`).
        seed: Option<u64>,
        /// Bounded worker count (server default when `None`).
        workers: Option<usize>,
    },
}

/// A fully parsed `ftes jobs` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobsCommand {
    /// `ftes jobs submit`: enqueue one job, optionally wait for it.
    Submit {
        /// Daemon address.
        addr: String,
        /// What to submit.
        payload: SubmitPayload,
        /// Poll the job to a terminal state before exiting.
        wait: bool,
    },
    /// `ftes jobs list`: print the daemon's job summaries.
    List {
        /// Daemon address.
        addr: String,
    },
    /// `ftes jobs status`: print one job's snapshot.
    Status {
        /// Daemon address.
        addr: String,
        /// Job id.
        id: u64,
        /// Poll to a terminal state first.
        wait: bool,
        /// Print only the raw terminal result bytes.
        result_only: bool,
    },
    /// `ftes jobs cancel`: request cancellation at the next row boundary.
    Cancel {
        /// Daemon address.
        addr: String,
        /// Job id.
        id: u64,
    },
}

impl JobsCommand {
    /// Parses the arguments following the `jobs` keyword.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a missing/unknown action,
    /// unknown flags, malformed values or a missing `--addr`.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let action = args.first().map(String::as_str);
        let rest = args.get(1..).unwrap_or(&[]);
        match action {
            Some("submit") => parse_submit(rest),
            Some("list") => {
                let (addr, extras) = parse_common(rest)?;
                reject_extras(&extras, "list")?;
                Ok(JobsCommand::List { addr })
            }
            Some("status") => {
                let (addr, extras) = parse_common(rest)?;
                let mut id: Option<u64> = None;
                let mut wait = false;
                let mut result_only = false;
                for extra in extras {
                    match extra.as_str() {
                        "--wait" => wait = true,
                        "--result" => result_only = true,
                        word => id = Some(parse_id(word, id)?),
                    }
                }
                Ok(JobsCommand::Status {
                    addr,
                    id: id.ok_or("status needs a job id")?,
                    wait,
                    result_only,
                })
            }
            Some("cancel") => {
                let (addr, extras) = parse_common(rest)?;
                let mut id: Option<u64> = None;
                for extra in extras {
                    id = Some(parse_id(&extra, id)?);
                }
                Ok(JobsCommand::Cancel { addr, id: id.ok_or("cancel needs a job id")? })
            }
            Some(other) => {
                Err(format!("unknown jobs action `{other}` (submit|list|status|cancel)"))
            }
            None => Err("jobs needs an action: submit | list | status | cancel".to_string()),
        }
    }

    /// Executes the command. Returns `true` for the exit-0 outcome: the
    /// daemon answered, and — when a terminal state was observed via
    /// `--wait` — the job completed.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and non-2xx daemon replies.
    pub fn execute(&self) -> Result<bool, Box<dyn std::error::Error>> {
        match self {
            JobsCommand::Submit { addr, payload, wait } => {
                let (path, body) = match payload {
                    SubmitPayload::Synthesize(spec) => ("/jobs", spec.clone()),
                    SubmitPayload::Explore(params) => ("/explore", params.clone()),
                    SubmitPayload::Corpus { family, seed, workers } => {
                        let mut body = format!("family={family}");
                        if let Some(seed) = seed {
                            body.push_str(&format!(" seed={seed}"));
                        }
                        if let Some(workers) = workers {
                            body.push_str(&format!(" workers={workers}"));
                        }
                        ("/corpus/run", body)
                    }
                };
                let (status, reply) = http(addr, "POST", path, &body)?;
                if status != 202 {
                    return Err(format!("submit rejected ({status}): {reply}").into());
                }
                let id = parse_job_id(&reply)
                    .ok_or_else(|| format!("no job id in the reply: {reply}"))?;
                println!("job {id} queued");
                if !wait {
                    return Ok(true);
                }
                let snapshot = poll_terminal(addr, id)?;
                println!("{snapshot}");
                Ok(is_completed(&snapshot))
            }
            JobsCommand::List { addr } => {
                let (status, reply) = http(addr, "GET", "/jobs", "")?;
                if status != 200 {
                    return Err(format!("list failed ({status}): {reply}").into());
                }
                println!("{reply}");
                Ok(true)
            }
            JobsCommand::Status { addr, id, wait, result_only } => {
                let snapshot = if *wait {
                    poll_terminal(addr, *id)?
                } else {
                    let (status, reply) = http(addr, "GET", &format!("/jobs/{id}"), "")?;
                    if status != 200 {
                        return Err(format!("status failed ({status}): {reply}").into());
                    }
                    reply
                };
                if *result_only {
                    let result = extract_result(&snapshot)
                        .ok_or_else(|| format!("job {id} has no result (snapshot: {snapshot})"))?;
                    println!("{result}");
                } else {
                    println!("{snapshot}");
                }
                // Without --wait a still-running job is a healthy answer;
                // with it, anything short of `completed` exits non-zero.
                Ok(!*wait || is_completed(&snapshot))
            }
            JobsCommand::Cancel { addr, id } => {
                let (status, reply) = http(addr, "DELETE", &format!("/jobs/{id}"), "")?;
                if status != 200 {
                    return Err(format!("cancel failed ({status}): {reply}").into());
                }
                println!("{reply}");
                Ok(true)
            }
        }
    }
}

/// Parses `submit` flags: exactly one payload selector plus `--wait`.
fn parse_submit(rest: &[String]) -> Result<JobsCommand, String> {
    let mut addr: Option<String> = None;
    let mut payload: Option<SubmitPayload> = None;
    let mut seed: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut wait = false;
    let set = |slot: &mut Option<SubmitPayload>, value: SubmitPayload| -> Result<(), String> {
        if slot.is_some() {
            return Err(
                "submit takes exactly one of --spec/--demo/--explore/--corpus-family".to_string()
            );
        }
        *slot = Some(value);
        Ok(())
    };
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        let value = |flag: &str| -> Result<String, String> {
            rest.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "--addr" => {
                addr = Some(value(arg)?);
                i += 2;
            }
            "--spec" => {
                let path = value(arg)?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                set(&mut payload, SubmitPayload::Synthesize(text))?;
                i += 2;
            }
            "--demo" => {
                set(&mut payload, SubmitPayload::Synthesize(FIG5_SPEC.to_string()))?;
                i += 1;
            }
            "--explore" => {
                set(&mut payload, SubmitPayload::Explore(value(arg)?))?;
                i += 2;
            }
            "--corpus-family" => {
                set(
                    &mut payload,
                    SubmitPayload::Corpus { family: value(arg)?, seed: None, workers: None },
                )?;
                i += 2;
            }
            "--seed" => {
                let v = value(arg)?;
                seed = Some(v.parse().map_err(|_| format!("bad number `{v}` for --seed"))?);
                i += 2;
            }
            "--workers" => {
                let v = value(arg)?;
                workers = Some(v.parse().map_err(|_| format!("bad number `{v}` for --workers"))?);
                i += 2;
            }
            "--wait" => {
                wait = true;
                i += 1;
            }
            other => return Err(format!("unknown submit flag `{other}`")),
        }
    }
    let mut payload =
        payload.ok_or("submit needs one of --spec/--demo/--explore/--corpus-family")?;
    match &mut payload {
        SubmitPayload::Corpus { seed: s, workers: w, .. } => {
            *s = seed;
            *w = workers;
        }
        _ if seed.is_some() || workers.is_some() => {
            return Err("--seed/--workers only apply to --corpus-family".to_string());
        }
        _ => {}
    }
    Ok(JobsCommand::Submit {
        addr: addr.ok_or("--addr is required (see `ftes serve` output)")?,
        payload,
        wait,
    })
}

/// Pulls `--addr` out of an argument list; everything else comes back as
/// leftovers for the action-specific parser.
fn parse_common(rest: &[String]) -> Result<(String, Vec<String>), String> {
    let mut addr: Option<String> = None;
    let mut extras = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--addr" {
            addr =
                Some(rest.get(i + 1).cloned().ok_or_else(|| "--addr needs a value".to_string())?);
            i += 2;
        } else {
            extras.push(rest[i].clone());
            i += 1;
        }
    }
    Ok((addr.ok_or("--addr is required (see `ftes serve` output)")?, extras))
}

fn reject_extras(extras: &[String], action: &str) -> Result<(), String> {
    match extras.first() {
        Some(extra) => Err(format!("unexpected argument `{extra}` after `{action}`")),
        None => Ok(()),
    }
}

fn parse_id(word: &str, already: Option<u64>) -> Result<u64, String> {
    if already.is_some() {
        return Err(format!("unexpected extra argument `{word}`"));
    }
    word.parse().map_err(|_| format!("bad job id `{word}`"))
}

/// One request over a fresh connection to the daemon.
fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    request(&stream, method, path, body).map_err(|e| format!("{addr}: {e}"))
}

/// Polls `GET /jobs/<id>` until the state is terminal.
fn poll_terminal(addr: &str, id: u64) -> Result<String, String> {
    let deadline = Instant::now() + WAIT_TIMEOUT;
    loop {
        let (status, reply) = http(addr, "GET", &format!("/jobs/{id}"), "")?;
        if status != 200 {
            return Err(format!("status failed ({status}): {reply}"));
        }
        for terminal in ["completed", "failed", "cancelled"] {
            if reply.contains(&format!("\"state\":\"{terminal}\"")) {
                return Ok(reply);
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} did not reach a terminal state in {WAIT_TIMEOUT:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Extracts the job id out of a `202` submission body.
fn parse_job_id(body: &str) -> Option<u64> {
    let rest = body.split("\"job\":").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn is_completed(snapshot: &str) -> bool {
    snapshot.contains("\"state\":\"completed\"")
}

/// Slices the spliced `result` value out of a status body (`None` while
/// the job is non-terminal or after a failure).
fn extract_result(snapshot: &str) -> Option<&str> {
    let start = snapshot.find("\"result\":")? + "\"result\":".len();
    let end = snapshot.rfind(",\"error\":")?;
    let result = &snapshot[start..end];
    if result == "null" {
        return None;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<JobsCommand, String> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        JobsCommand::parse(&args)
    }

    #[test]
    fn parse_covers_the_four_actions() {
        let cmd = parse(&["submit", "--addr", "a:1", "--demo", "--wait"]).unwrap();
        assert_eq!(
            cmd,
            JobsCommand::Submit {
                addr: "a:1".into(),
                payload: SubmitPayload::Synthesize(FIG5_SPEC.to_string()),
                wait: true,
            }
        );
        let cmd = parse(&["submit", "--addr", "a:1", "--explore", "processes=8"]).unwrap();
        assert_eq!(
            cmd,
            JobsCommand::Submit {
                addr: "a:1".into(),
                payload: SubmitPayload::Explore("processes=8".into()),
                wait: false,
            }
        );
        let cmd = parse(&[
            "submit",
            "--addr",
            "a:1",
            "--corpus-family",
            "automotive",
            "--seed",
            "7",
            "--workers",
            "2",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            JobsCommand::Submit {
                addr: "a:1".into(),
                payload: SubmitPayload::Corpus {
                    family: "automotive".into(),
                    seed: Some(7),
                    workers: Some(2),
                },
                wait: false,
            }
        );
        assert_eq!(
            parse(&["list", "--addr", "a:1"]).unwrap(),
            JobsCommand::List { addr: "a:1".into() }
        );
        assert_eq!(
            parse(&["status", "--addr", "a:1", "3", "--wait", "--result"]).unwrap(),
            JobsCommand::Status { addr: "a:1".into(), id: 3, wait: true, result_only: true }
        );
        assert_eq!(
            parse(&["cancel", "--addr", "a:1", "9"]).unwrap(),
            JobsCommand::Cancel { addr: "a:1".into(), id: 9 }
        );
    }

    #[test]
    fn malformed_invocations_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["purge"]).is_err());
        assert!(parse(&["submit", "--addr", "a:1"]).is_err(), "no payload");
        assert!(parse(&["submit", "--demo"]).is_err(), "no addr");
        assert!(parse(&["submit", "--addr", "a:1", "--demo", "--explore", "x"]).is_err());
        assert!(parse(&["submit", "--addr", "a:1", "--demo", "--seed", "3"]).is_err());
        assert!(
            parse(&["submit", "--addr", "a:1", "--corpus-family", "all", "--seed", "x"]).is_err()
        );
        assert!(parse(&["list", "--addr", "a:1", "extra"]).is_err());
        assert!(parse(&["status", "--addr", "a:1"]).is_err(), "no id");
        assert!(parse(&["status", "--addr", "a:1", "x"]).is_err());
        assert!(parse(&["cancel", "--addr", "a:1", "1", "2"]).is_err());
    }

    #[test]
    fn reply_helpers_parse_daemon_bodies() {
        assert_eq!(parse_job_id(r#"{"job":12,"state":"queued"}"#), Some(12));
        assert_eq!(parse_job_id(r#"{"error":"full"}"#), None);
        assert!(is_completed(r#"{"state":"completed"}"#));
        assert!(!is_completed(r#"{"state":"running"}"#));
        let snapshot = r#"{"job":1,"rows":[],"result":{"specs":2},"error":null}"#;
        assert_eq!(extract_result(snapshot), Some(r#"{"specs":2}"#));
        let pending = r#"{"job":1,"rows":[],"result":null,"error":null}"#;
        assert_eq!(extract_result(pending), None);
    }
}
