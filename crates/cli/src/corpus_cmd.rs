//! The `ftes corpus` subcommand: generate the named scenario-spec
//! families as real `.ftes` files and batch-run a corpus directory
//! through the explore+certify pipeline.
//!
//! ```text
//! USAGE:
//!   ftes corpus list
//!   ftes corpus generate [--family all|NAME[,NAME…]] [--seed N] [--out DIR]
//!   ftes corpus run [--dir DIR] [--workers N] [--csv FILE] [--json FILE] [--fresh]
//! ```
//!
//! `generate` emits deterministic documents: the same `(family, seed)`
//! always produces byte-identical files. `run` is **resumable**: the CSV
//! report is the progress state — rows are appended in corpus order as
//! specs complete, and a re-run skips every spec that already has a row
//! (`--fresh` starts over). Because rows carry no wall-clock fields, a
//! finished CSV is byte-identical for any `--workers` value.

use ftes::corpus::{
    aggregate, aggregate_to_json, parse_corpus_csv, recover_corpus_csv, CorpusJob, CorpusVerdict,
    CORPUS_CSV_HEADER,
};
use ftes::gen::corpus::{generate_corpus, Family, DEFAULT_CORPUS_SEED};
use ftes_jobs::{drive_corpus, JobInterrupt};
use std::error::Error;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// A fully parsed `ftes corpus` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusCommand {
    /// `ftes corpus list`: print the family catalog.
    List,
    /// `ftes corpus generate`: emit family members as `.ftes` files.
    Generate {
        /// Families to generate (catalog order, deduplicated).
        families: Vec<Family>,
        /// Master seed.
        seed: u64,
        /// Output directory (created if missing).
        out_dir: PathBuf,
    },
    /// `ftes corpus run`: batch-synthesize a corpus directory.
    Run {
        /// Directory of `.ftes` documents.
        dir: PathBuf,
        /// Bounded worker count.
        workers: usize,
        /// CSV report path (default `<dir>/corpus_results.csv`).
        csv: PathBuf,
        /// JSON aggregate path (default `<dir>/corpus_results.json`).
        json: PathBuf,
        /// Ignore an existing CSV instead of resuming onto it.
        fresh: bool,
    },
}

impl CorpusCommand {
    /// Parses the arguments following the `corpus` keyword.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a missing/unknown action,
    /// unknown flags, malformed numbers or unknown family names.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let action = args.first().map(String::as_str);
        let rest = args.get(1..).unwrap_or(&[]);
        let value = |i: usize, flag: &str| -> Result<String, String> {
            rest.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match action {
            Some("list") => {
                if let Some(extra) = rest.first() {
                    return Err(format!("unexpected argument `{extra}` after `list`"));
                }
                Ok(CorpusCommand::List)
            }
            Some("generate") => {
                let mut families: Vec<Family> = Vec::new();
                let mut seed = DEFAULT_CORPUS_SEED;
                let mut out_dir = PathBuf::from("corpus");
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--family" => {
                            for name in value(i, "--family")?.split(',') {
                                if name == "all" {
                                    families.extend(Family::ALL);
                                } else {
                                    families.push(Family::from_name(name).ok_or_else(|| {
                                        format!("unknown family `{name}` (try `ftes corpus list`)")
                                    })?);
                                }
                            }
                            i += 2;
                        }
                        "--seed" => {
                            let v = value(i, "--seed")?;
                            seed = v.parse().map_err(|_| format!("bad number `{v}` for --seed"))?;
                            i += 2;
                        }
                        "--out" => {
                            out_dir = PathBuf::from(value(i, "--out")?);
                            i += 2;
                        }
                        other => return Err(format!("unknown generate flag `{other}`")),
                    }
                }
                if families.is_empty() {
                    families.extend(Family::ALL);
                }
                // Keep catalog order, drop duplicates.
                let mut deduped = Vec::new();
                for f in Family::ALL {
                    if families.contains(&f) && !deduped.contains(&f) {
                        deduped.push(f);
                    }
                }
                Ok(CorpusCommand::Generate { families: deduped, seed, out_dir })
            }
            Some("run") => {
                let mut dir = PathBuf::from("corpus");
                let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
                let mut csv: Option<PathBuf> = None;
                let mut json: Option<PathBuf> = None;
                let mut fresh = false;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--dir" => {
                            dir = PathBuf::from(value(i, "--dir")?);
                            i += 2;
                        }
                        "--workers" => {
                            let v = value(i, "--workers")?;
                            workers = v
                                .parse::<usize>()
                                .map_err(|_| format!("bad number `{v}` for --workers"))?
                                .max(1);
                            i += 2;
                        }
                        "--csv" => {
                            csv = Some(PathBuf::from(value(i, "--csv")?));
                            i += 2;
                        }
                        "--json" => {
                            json = Some(PathBuf::from(value(i, "--json")?));
                            i += 2;
                        }
                        "--fresh" => {
                            fresh = true;
                            i += 1;
                        }
                        other => return Err(format!("unknown run flag `{other}`")),
                    }
                }
                Ok(CorpusCommand::Run {
                    csv: csv.unwrap_or_else(|| dir.join("corpus_results.csv")),
                    json: json.unwrap_or_else(|| dir.join("corpus_results.json")),
                    dir,
                    workers,
                    fresh,
                })
            }
            Some(other) => Err(format!("unknown corpus action `{other}` (list|generate|run)")),
            None => Err("corpus needs an action: list | generate | run".to_string()),
        }
    }

    /// Executes the command. Returns `true` for the exit-0 outcome:
    /// `list`/`generate` always, `run` when the complete report (earlier
    /// resumed invocations included) carries no `error` rows — refuted
    /// rows are normal corpus output, infrastructure failures are not,
    /// and they keep the exit non-zero until the specs actually succeed.
    ///
    /// # Errors
    ///
    /// Propagates IO failures and a CSV/directory mismatch on resume.
    pub fn execute(&self) -> Result<bool, Box<dyn Error>> {
        match self {
            CorpusCommand::List => {
                println!("{:<12} {:>7}  description", "family", "members");
                for family in Family::ALL {
                    println!(
                        "{:<12} {:>7}  {}",
                        family.name(),
                        family.members().len(),
                        family.description()
                    );
                }
                println!(
                    "\ngenerate with: ftes corpus generate --family all --seed {DEFAULT_CORPUS_SEED}"
                );
                Ok(true)
            }
            CorpusCommand::Generate { families, seed, out_dir } => {
                let corpus = generate_corpus(families, *seed)?;
                std::fs::create_dir_all(out_dir)?;
                for spec in &corpus {
                    std::fs::write(out_dir.join(&spec.file_name), &spec.text)?;
                }
                println!(
                    "generated {} specs ({} families, seed {}) into {}",
                    corpus.len(),
                    families.len(),
                    seed,
                    out_dir.display()
                );
                Ok(true)
            }
            CorpusCommand::Run { dir, workers, csv, json, fresh } => {
                run_directory(dir, *workers, csv, json, *fresh)
            }
        }
    }
}

/// Loads a corpus directory as jobs, in file-name order (which groups
/// generated members by family in index order).
fn load_jobs(dir: &Path) -> Result<Vec<CorpusJob>, Box<dyn Error>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus directory {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "ftes"))
        .collect();
    paths.sort();
    let mut jobs = Vec::with_capacity(paths.len());
    for path in paths {
        let name =
            path.file_name().expect("read_dir yields named entries").to_string_lossy().into_owned();
        // Spec names land verbatim in CSV rows; refuse CSV-breaking file
        // names before any synthesis runs (resume could never match the
        // sanitized row back to the file).
        if !CorpusJob::csv_safe(&name) {
            return Err(format!(
                "{}: file name contains CSV-breaking characters (comma/newline) — rename it",
                path.display()
            )
            .into());
        }
        let text = std::fs::read_to_string(&path)?;
        let family = CorpusJob::family_from_header(&text)
            .map_or_else(|| "unknown".to_string(), str::to_string);
        jobs.push(CorpusJob { name, family, text });
    }
    Ok(jobs)
}

/// The resumable batch run: the CSV is the progress state.
fn run_directory(
    dir: &Path,
    workers: usize,
    csv_path: &Path,
    json_path: &Path,
    fresh: bool,
) -> Result<bool, Box<dyn Error>> {
    let jobs = load_jobs(dir)?;
    if jobs.is_empty() {
        return Err(format!(
            "no .ftes documents in {} (generate with `ftes corpus generate`)",
            dir.display()
        )
        .into());
    }

    // Resume: rows already in the CSV are done, provided they line up
    // with a prefix of the corpus in order. A torn tail — the previous
    // run was killed mid-row-write — is recovered by dropping the
    // in-flight suffix, never by refusing the whole report.
    let completed_rows = if fresh {
        Vec::new()
    } else {
        match std::fs::read_to_string(csv_path) {
            Ok(text) => {
                let (rows, discarded) = recover_corpus_csv(&text).map_err(|e| {
                    format!(
                        "{}: {e}; not a corpus report — rerun with --fresh to overwrite",
                        csv_path.display()
                    )
                })?;
                if rows.len() > jobs.len()
                    || rows.iter().zip(&jobs).any(|(row, job)| row.spec != job.name)
                {
                    return Err(format!(
                        "{}: rows do not match the corpus directory; rerun with --fresh",
                        csv_path.display()
                    )
                    .into());
                }
                if discarded {
                    println!(
                        "recovered {}: a torn tail from an interrupted run was discarded",
                        csv_path.display()
                    );
                }
                rows
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Box::new(e)),
        }
    };
    let completed = completed_rows.len();

    // Rewrite the report from the recovered prefix before appending:
    // this lands every append on a clean line boundary no matter how the
    // previous run died.
    let mut content = String::with_capacity(128 * (completed + 1));
    content.push_str(CORPUS_CSV_HEADER);
    content.push('\n');
    for row in &completed_rows {
        content.push_str(&row.to_csv());
        content.push('\n');
    }
    std::fs::write(csv_path, content)?;
    let mut file = std::fs::OpenOptions::new().append(true).open(csv_path)?;
    if completed > 0 {
        println!(
            "resuming: {completed}/{} specs already done in {}",
            jobs.len(),
            csv_path.display()
        );
    }

    let total = jobs.len();
    let started = Instant::now();
    // The batch runs through the same driver the serve daemon's job
    // executor uses (`ftes-jobs`): one streaming-row contract, one resume
    // contract, whichever front end drives it. The CSV is the progress
    // state: a row that failed to persist must fail the invocation
    // loudly, not silently hole the report (the callback can't return an
    // error, so the first one is carried out).
    let mut sink_error: Option<std::io::Error> = None;
    let never_cancelled = AtomicBool::new(false);
    let outcome = drive_corpus(&jobs, workers, &completed_rows, &never_cancelled, |i, row| {
        // Append + flush per row: a killed run resumes from here.
        // One pre-formatted buffer per row (bytes + newline in a
        // single write) keeps the torn-write window minimal.
        if sink_error.is_none() {
            let buf = format!("{}\n", row.to_csv());
            let written = file.write_all(buf.as_bytes()).and_then(|()| file.flush());
            if let Err(e) = written {
                sink_error = Some(e);
            }
        }
        println!(
            "[{:>3}/{}] {:<28} certified={:<7} exact={}",
            i + 1,
            total,
            row.spec,
            row.certified.as_csv(),
            row.exact_len.map_or_else(|| "-".to_string(), |v| v.to_string()),
        );
    })
    .map_err(|interrupt| match interrupt {
        JobInterrupt::Failed(message) => message,
        JobInterrupt::Cancelled => unreachable!("the CLI never sets the cancel flag"),
    })?;
    let wall = started.elapsed();
    drop(file);
    if let Some(e) = sink_error {
        return Err(format!(
            "{}: failed to persist a result row ({e}); the report is incomplete — \
             re-run to resume from the last persisted row",
            csv_path.display()
        )
        .into());
    }
    for (spec, message) in &outcome.errors {
        eprintln!("error: {spec}: {message}");
    }

    // Aggregate over the *complete* CSV (earlier invocations included).
    let all_rows = parse_corpus_csv(&std::fs::read_to_string(csv_path)?)?;
    std::fs::write(json_path, aggregate_to_json(&all_rows))?;

    println!();
    println!(
        "{:<12} {:>5} {:>10} {:>8} {:>8} {:>7} {:>13} {:>15}",
        "family",
        "specs",
        "certified",
        "refuted",
        "skipped",
        "errors",
        "schedulable %",
        "avg exact len"
    );
    for agg in aggregate(&all_rows) {
        println!(
            "{:<12} {:>5} {:>10} {:>8} {:>8} {:>7} {:>12.1}% {:>15}",
            agg.name,
            agg.specs,
            agg.counters.certified,
            agg.counters.refuted,
            agg.counters.uncertifiable,
            agg.errors,
            agg.schedulable_pct(),
            agg.avg_certified_exact_len.map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
        );
    }
    println!(
        "\n{} specs ({} this run, {} ms); reports: {} + {}",
        all_rows.len(),
        outcome.rows.len() - completed,
        wall.as_millis(),
        csv_path.display(),
        json_path.display(),
    );
    // Exit status covers the whole report, not just this invocation: a
    // resumed run whose CSV carries `error` rows from an earlier attempt
    // must keep exiting non-zero until those specs actually succeed
    // (delete the CSV or --fresh to retry them).
    Ok(all_rows.iter().all(|r| r.certified != CorpusVerdict::Error))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CorpusCommand, String> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        CorpusCommand::parse(&args)
    }

    #[test]
    fn parse_covers_the_three_actions() {
        assert_eq!(parse(&["list"]).unwrap(), CorpusCommand::List);
        let gen = parse(&["generate", "--family", "automotive,util", "--seed", "9", "--out", "x"])
            .unwrap();
        assert_eq!(
            gen,
            CorpusCommand::Generate {
                families: vec![Family::Automotive, Family::Util],
                seed: 9,
                out_dir: PathBuf::from("x"),
            }
        );
        let run = parse(&["run", "--dir", "d", "--workers", "3", "--fresh"]).unwrap();
        match run {
            CorpusCommand::Run { dir, workers, csv, json, fresh } => {
                assert_eq!(dir, PathBuf::from("d"));
                assert_eq!(workers, 3);
                assert_eq!(csv, PathBuf::from("d/corpus_results.csv"));
                assert_eq!(json, PathBuf::from("d/corpus_results.json"));
                assert!(fresh);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn generate_defaults_to_all_families_and_dedups() {
        match parse(&["generate"]).unwrap() {
            CorpusCommand::Generate { families, seed, out_dir } => {
                assert_eq!(families, Family::ALL.to_vec());
                assert_eq!(seed, DEFAULT_CORPUS_SEED);
                assert_eq!(out_dir, PathBuf::from("corpus"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&["generate", "--family", "all,automotive"]).unwrap() {
            CorpusCommand::Generate { families, .. } => {
                assert_eq!(families, Family::ALL.to_vec(), "duplicates collapse");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_invocations_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["prune"]).is_err());
        assert!(parse(&["list", "extra"]).is_err());
        assert!(parse(&["generate", "--family", "bogus"]).is_err());
        assert!(parse(&["generate", "--seed", "x"]).is_err());
        assert!(parse(&["generate", "--bogus"]).is_err());
        assert!(parse(&["run", "--workers", "x"]).is_err());
        assert!(parse(&["run", "--bogus"]).is_err());
    }

    /// End-to-end resume: a killed run's CSV prefix is honored and the
    /// finished report is byte-identical to an uninterrupted run.
    #[test]
    fn run_resumes_from_a_truncated_csv() {
        let dir = std::env::temp_dir().join(format!(
            "ftes-corpus-cmd-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, deadline) in [("a.ftes", 300), ("b.ftes", 320), ("c.ftes", 340)] {
            std::fs::write(
                dir.join(name),
                format!(
                    "nodes 2\nslot 8\ndeadline {deadline}\nk 1\nstrategy mxr\n\
                     process A wcet 10 12 alpha 1 mu 1 chi 1\n\
                     process B wcet 8 8 alpha 1 mu 1 chi 1\n\
                     message m0 A B 1\n"
                ),
            )
            .unwrap();
        }
        let csv = dir.join("corpus_results.csv");
        let json = dir.join("corpus_results.json");

        assert!(run_directory(&dir, 2, &csv, &json, false).unwrap());
        let full = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(full.lines().count(), 4, "header + one row per spec:\n{full}");
        assert!(std::fs::read_to_string(&json).unwrap().contains("\"specs\":3"));

        // Kill after the first row: keep header + row 0, resume.
        let prefix: Vec<&str> = full.lines().take(2).collect();
        std::fs::write(&csv, format!("{}\n", prefix.join("\n"))).unwrap();
        assert!(run_directory(&dir, 1, &csv, &json, false).unwrap());
        assert_eq!(std::fs::read_to_string(&csv).unwrap(), full, "resume reproduces the report");

        // Kill between a row's bytes and its newline: the unterminated
        // final row is discarded (its newline never hit disk) and the
        // resume still converges on the identical report.
        std::fs::write(&csv, full.trim_end_matches('\n')).unwrap();
        assert!(run_directory(&dir, 1, &csv, &json, false).unwrap());
        assert_eq!(std::fs::read_to_string(&csv).unwrap(), full, "torn newline recovered");

        // Kill mid-row: the partial line is dropped, the rest re-runs.
        std::fs::write(&csv, format!("{}\n{}", prefix.join("\n"), "test,b.ftes,2,2")).unwrap();
        assert!(run_directory(&dir, 1, &csv, &json, false).unwrap());
        assert_eq!(std::fs::read_to_string(&csv).unwrap(), full, "torn row recovered");

        // A CSV that does not match the directory refuses to resume…
        std::fs::write(
            &csv,
            format!("{CORPUS_CSV_HEADER}\nx,zz.ftes,2,2,1,mxr,1,1,-,true,0,1000,true\n"),
        )
        .unwrap();
        assert!(run_directory(&dir, 1, &csv, &json, false).is_err());
        // …and --fresh overwrites it.
        assert!(run_directory(&dir, 1, &csv, &json, true).unwrap());
        assert_eq!(std::fs::read_to_string(&csv).unwrap(), full);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
