//! Trace-capture plumbing shared by the CLI subcommands.
//!
//! Tracing is a side channel by contract: every trace artifact goes to a
//! file the user named and every status line about it goes to stderr, so
//! the deterministic stdout contracts (CSV tables, JSON reports) hold
//! with tracing on. One-shot commands capture with [`TraceCapture`]
//! (enable → run → drain once → write); the resident `ftes serve` daemon
//! streams through [`spawn_trace_flusher`] instead, appending to an
//! incrementally-loadable Chrome trace about once a second so a
//! `kill -9`'d daemon still leaves a readable file behind.

use ftes::obs;
use std::io;
use std::path::{Path, PathBuf};

/// Removes `flag VALUE` from `args`, returning the value.
///
/// Used for the root command, whose remaining `--` arguments are plain
/// boolean flags — a value-carrying flag must be extracted first or its
/// value would be mistaken for the input file.
///
/// # Errors
///
/// Returns a message when the flag is present without a value.
pub fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

/// One-shot trace capture: the whole command runs traced, then the
/// buffers are drained once and written out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCapture {
    /// Chrome-trace-event JSON output path (`--trace FILE`).
    pub chrome: Option<String>,
    /// Folded-stack text output path (`--folded FILE`), one
    /// `root;child;leaf <self-µs>` line per stack — flamegraph input.
    pub folded: Option<String>,
}

impl TraceCapture {
    /// Extracts `--trace FILE` and `--folded FILE` from `args`.
    ///
    /// # Errors
    ///
    /// Returns a message when either flag is present without a value.
    pub fn take_from(args: &mut Vec<String>) -> Result<Self, String> {
        Ok(TraceCapture {
            chrome: take_value_flag(args, "--trace")?,
            folded: take_value_flag(args, "--folded")?,
        })
    }

    /// Whether any output was requested.
    pub fn active(&self) -> bool {
        self.chrome.is_some() || self.folded.is_some()
    }

    /// Turns the global trace gate on when any output was requested.
    pub fn begin(&self) {
        if self.active() {
            obs::set_enabled(true);
        }
    }

    /// Drains the captured events and writes the requested artifacts,
    /// reporting each file on stderr.
    ///
    /// # Errors
    ///
    /// Propagates output-file IO errors.
    pub fn finish(&self) -> io::Result<()> {
        if !self.active() {
            return Ok(());
        }
        obs::set_enabled(false);
        let events = obs::drain();
        let dropped = obs::dropped_events();
        if let Some(path) = &self.chrome {
            std::fs::write(path, obs::chrome::chrome_trace_json(&events))?;
            eprintln!("trace: {} events -> {path} (chrome trace)", events.len());
        }
        if let Some(path) = &self.folded {
            std::fs::write(path, obs::folded::folded_stacks(&events))?;
            eprintln!("trace: folded stacks -> {path}");
        }
        if dropped > 0 {
            eprintln!("trace: {dropped} events dropped on full ring buffers");
        }
        Ok(())
    }
}

/// Enables tracing and spawns the daemon's trace flusher: a detached
/// thread draining the ring buffers into `<dir>/trace.json` about once a
/// second. Every append flushes, and the Chrome trace array format stays
/// loadable without its closing bracket, so the trace survives however
/// the daemon dies.
///
/// # Errors
///
/// Propagates directory-creation and file-open failures.
pub fn spawn_trace_flusher(dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("trace.json");
    let file = std::fs::File::create(&path)?;
    let mut writer = obs::chrome::ChromeTraceWriter::new(file)?;
    obs::set_enabled(true);
    std::thread::Builder::new().name("ftes-trace-flush".into()).spawn(move || loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        let events = obs::drain();
        if !events.is_empty() && writer.append(&events).is_err() {
            // Sink gone (disk full, deleted directory): stop tracing
            // rather than spin on a dead file.
            obs::set_enabled(false);
            return;
        }
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn value_flags_are_extracted_with_their_values() {
        let mut args = words(&["--csv", "--trace", "out.json", "spec.ftes"]);
        assert_eq!(take_value_flag(&mut args, "--trace").unwrap().as_deref(), Some("out.json"));
        assert_eq!(args, words(&["--csv", "spec.ftes"]));
        assert_eq!(take_value_flag(&mut args, "--trace").unwrap(), None);
        let mut args = words(&["--trace"]);
        assert!(take_value_flag(&mut args, "--trace").is_err());
    }

    #[test]
    fn capture_parses_both_outputs_and_reports_activity() {
        let mut args = words(&["--trace", "t.json", "--folded", "f.txt", "--demo"]);
        let capture = TraceCapture::take_from(&mut args).unwrap();
        assert_eq!(capture.chrome.as_deref(), Some("t.json"));
        assert_eq!(capture.folded.as_deref(), Some("f.txt"));
        assert!(capture.active());
        assert_eq!(args, words(&["--demo"]));
        assert!(!TraceCapture::default().active());
    }
}
