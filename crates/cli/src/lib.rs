//! # ftes-cli
//!
//! Command-line front end for the fault-tolerant embedded-system synthesis
//! flow: parses the `.ftes` specification format (see [`parse_spec`]) and
//! drives [`ftes::synthesize_system`]. The `ftes` binary lives in this
//! crate; the parser is a library so tests and other tools can reuse it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spec;

pub use spec::{parse_spec, ParseError, SystemSpec, FIG5_SPEC};
