//! # ftes-cli
//!
//! Command-line front end for the fault-tolerant embedded-system synthesis
//! flow: drives [`ftes::synthesize_system`] on parsed `.ftes`
//! specifications (the parser lives in [`ftes::spec`] so the HTTP service
//! can share it; this crate re-exports it), the `explore` subcommand (see
//! [`ExploreCommand`]) runs the parallel design-space exploration suite,
//! the `corpus` subcommand (see [`CorpusCommand`]) generates and
//! batch-runs the scenario-spec families, the `serve` / `load`
//! subcommands (see [`ServeCommand`] / [`LoadCommand`]) run and exercise
//! the `ftes-serve` synthesis service, and the `jobs` subcommand (see
//! [`JobsCommand`]) is a thin client for the daemon's asynchronous,
//! crash-safe job API, and the `lint` subcommand (see [`LintCommand`])
//! runs the `ftes-lint` workspace invariant analyzer. The `ftes` binary
//! lives in this crate; everything else is a library so tests and other
//! tools can reuse it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus_cmd;
mod explore_cmd;
mod jobs_cmd;
mod lint_cmd;
mod serve_cmd;
mod trace_cmd;

pub use corpus_cmd::CorpusCommand;
pub use explore_cmd::{ExploreCommand, ExploreFormat};
pub use ftes::spec::{parse_spec, ParseError, SystemSpec, FIG5_SPEC};
pub use jobs_cmd::{JobsCommand, SubmitPayload};
pub use lint_cmd::LintCommand;
pub use serve_cmd::{LoadCommand, ServeCommand};
pub use trace_cmd::{spawn_trace_flusher, take_value_flag, TraceCapture};
