//! # ftes-cli
//!
//! Command-line front end for the fault-tolerant embedded-system synthesis
//! flow: parses the `.ftes` specification format (see [`parse_spec`]) and
//! drives [`ftes::synthesize_system`]; the `explore` subcommand (see
//! [`ExploreCommand`]) runs the parallel design-space exploration suite.
//! The `ftes` binary lives in this crate; everything else is a library so
//! tests and other tools can reuse it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore_cmd;
mod spec;

pub use explore_cmd::{ExploreCommand, ExploreFormat};
pub use spec::{parse_spec, ParseError, SystemSpec, FIG5_SPEC};
