//! `ftes lint` — run the workspace invariant analyzer (`ftes-lint`).
//!
//! ```text
//! ftes lint [--json] [--rule <name>] [--root DIR] [--out FILE]
//! ```
//!
//! Exit code 0 when the tree is clean, 2 when any diagnostic fired, 1 on
//! usage or I/O errors — mirroring the synthesis exit-code convention
//! (0 schedulable / 2 not / 1 error).

use std::path::PathBuf;

/// Parsed `ftes lint` invocation.
pub struct LintCommand {
    /// Workspace root (defaults to the nearest ancestor with `Cargo.toml`
    /// and `crates/`).
    root: PathBuf,
    /// Emit the machine-readable JSON report instead of text lines.
    json: bool,
    /// Restrict to one rule.
    rule: Option<String>,
    /// Also write the JSON report to this file (for CI artifacts).
    out: Option<PathBuf>,
}

impl LintCommand {
    /// Parse `ftes lint` arguments.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut json = false;
        let mut rule = None;
        let mut out = None;
        let mut root = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => json = true,
                "--rule" => {
                    let name =
                        it.next().ok_or_else(|| "--rule requires a rule name".to_string())?;
                    if !ftes_lint::is_rule(name) {
                        return Err(format!(
                            "unknown rule `{name}` (known: {})",
                            ftes_lint::rules::RULES
                                .iter()
                                .map(|(n, _)| *n)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    rule = Some(name.clone());
                }
                "--out" => {
                    out = Some(PathBuf::from(
                        it.next().ok_or_else(|| "--out requires a path".to_string())?,
                    ));
                }
                "--root" => {
                    root = Some(PathBuf::from(
                        it.next().ok_or_else(|| "--root requires a path".to_string())?,
                    ));
                }
                other => return Err(format!("unknown lint flag `{other}`")),
            }
        }
        let root = match root {
            Some(r) => r,
            None => {
                let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
                ftes_lint::workspace::find_root(&cwd).ok_or_else(|| {
                    "not inside the ftes workspace (no ancestor with Cargo.toml + crates/); \
                     pass --root DIR"
                        .to_string()
                })?
            }
        };
        Ok(LintCommand { root, json, rule, out })
    }

    /// Run the analyzer; `Ok(true)` means the tree is clean.
    pub fn execute(&self) -> Result<bool, Box<dyn std::error::Error>> {
        let diags = ftes_lint::lint_workspace(&self.root, self.rule.as_deref())?;
        if let Some(path) = &self.out {
            std::fs::write(path, ftes_lint::to_json(&diags))?;
        }
        if self.json {
            print!("{}", ftes_lint::to_json(&diags));
        } else {
            for d in &diags {
                println!("{d}");
            }
            let scope = match &self.rule {
                Some(r) => format!("rule {r}"),
                None => format!("{} rules", ftes_lint::rules::RULES.len()),
            };
            eprintln!(
                "ftes lint: {} diagnostic{} ({scope})",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
            );
        }
        Ok(diags.is_empty())
    }
}
