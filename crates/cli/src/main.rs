//! `ftes` — synthesize fault-tolerant schedules from a `.ftes` system
//! specification.
//!
//! ```text
//! USAGE:
//!   ftes <spec.ftes> [--csv] [--markdown] [--dot] [--timeline] [--verify]
//!   ftes --demo      [same flags]          # runs the built-in Fig. 5 spec
//!   ftes explore …   # parallel design-space exploration (see --help)
//!   ftes corpus …    # generate + batch-run scenario-spec families (see --help)
//!   ftes serve …     # run the synthesis HTTP service (see --help)
//!   ftes load …      # drive load against a running service (see --help)
//!   ftes jobs …      # submit/poll/cancel asynchronous daemon jobs (see --help)
//!   ftes lint …      # run the workspace invariant analyzer (see --help)
//! ```

#![forbid(unsafe_code)]

use ftes::sched::export::{
    scenario_timeline, tables_to_csv, tables_to_markdown, timeline_to_ascii,
};
use ftes::sim::verify_exhaustive;
use ftes::{synthesize_system, FlowConfig};
use ftes_cli::{
    parse_spec, CorpusCommand, ExploreCommand, JobsCommand, LintCommand, LoadCommand, ServeCommand,
    SystemSpec, TraceCapture, FIG5_SPEC,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => return run_explore(&args[1..]),
        Some("corpus") => return run_corpus_cmd(&args[1..]),
        Some("serve") => return run_serve(&args[1..]),
        Some("load") => return run_load_cmd(&args[1..]),
        Some("jobs") => return run_jobs_cmd(&args[1..]),
        Some("lint") => return run_lint_cmd(&args[1..]),
        _ => {}
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    // Value-carrying flags come out first; everything `--` that remains
    // is a boolean flag.
    let capture = match TraceCapture::take_from(&mut args) {
        Ok(capture) => capture,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let flags: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| a.starts_with("--")).collect();
    let input = args.iter().find(|a| !a.starts_with("--"));

    let text = if flags.contains(&"--demo") {
        FIG5_SPEC.to_string()
    } else {
        let Some(path) = input else {
            eprintln!("error: no input file (try --demo)");
            return ExitCode::FAILURE;
        };
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    capture.begin();
    let spec = match parse_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verdict = run(&spec, &flags);
    if let Err(e) = capture.finish() {
        eprintln!("error: writing trace: {e}");
        return ExitCode::FAILURE;
    }
    match verdict {
        Ok(schedulable) => {
            if schedulable {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(spec: &SystemSpec, flags: &[&str]) -> Result<bool, Box<dyn std::error::Error>> {
    let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
    let psi =
        synthesize_system(&spec.app, &spec.platform, spec.fault_model, &spec.transparency, config)?;

    println!(
        "synthesized with {} for {}: worst case {} vs deadline {} => {}",
        spec.strategy,
        spec.fault_model,
        psi.worst_case_length(),
        spec.app.deadline(),
        if psi.schedulable { "SCHEDULABLE" } else { "NOT SCHEDULABLE" },
    );
    match psi.certification {
        ftes::Certification::Certified { exact_len } => println!(
            "certified on the exact conditional schedule: exact {} (estimate {}, \
             calibration {:.3}x, {} repair round{})",
            exact_len,
            psi.estimate.worst_case_length,
            psi.calibration_milli as f64 / 1000.0,
            psi.repair_rounds,
            if psi.repair_rounds == 1 { "" } else { "s" },
        ),
        ftes::Certification::Refuted { exact_len } => println!(
            "NOT CERTIFIED: exact schedule length {} refutes the estimate {} \
             (repair exhausted after {} rounds)",
            exact_len, psi.estimate.worst_case_length, psi.repair_rounds,
        ),
        ftes::Certification::Uncertifiable => {
            println!("(FT-CPG over the size budget; certified:false, estimate-only verdict)")
        }
    }
    for (pid, policy) in psi.policies.iter() {
        println!(
            "  {:<12} {:?} on N{} (Q={})",
            spec.app.process(pid).name(),
            policy.kind(),
            psi.mapping.node_of(pid).index(),
            policy.replica_count(),
        );
    }

    let Some(exact) = psi.exact.as_ref() else {
        println!("(instance too large for exact tables; estimate only)");
        return Ok(psi.schedulable);
    };
    if flags.contains(&"--csv") {
        print!("{}", tables_to_csv(&exact.tables, &exact.cpg));
    }
    if flags.contains(&"--markdown") {
        print!("{}", tables_to_markdown(&exact.tables, &exact.cpg));
    }
    if flags.contains(&"--dot") {
        print!("{}", ftes::ftcpg::dot::ftcpg_to_dot(&exact.cpg));
    }
    if flags.contains(&"--timeline") {
        let bars = scenario_timeline(
            &exact.cpg,
            &exact.schedule,
            &ftes::ftcpg::FaultScenario::fault_free(),
        );
        print!("{}", timeline_to_ascii(&bars, 72));
    }
    if flags.contains(&"--verify") {
        let verdict = verify_exhaustive(
            &spec.app,
            &exact.cpg,
            &exact.schedule,
            &spec.transparency,
            1_000_000,
        )?;
        println!(
            "verified {} fault scenarios: worst makespan {}, sound: {}",
            verdict.scenarios,
            verdict.worst_makespan,
            verdict.is_sound()
        );
    }
    Ok(psi.schedulable)
}

fn run_explore(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match ExploreCommand::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.execute() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_corpus_cmd(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match CorpusCommand::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.execute() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_serve(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match ServeCommand::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.execute() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_load_cmd(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match LoadCommand::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.execute() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_jobs_cmd(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match JobsCommand::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.execute() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint_cmd(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match LintCommand::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.execute() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "ftes — synthesis of fault-tolerant embedded systems (DATE 2008 reproduction)\n\n\
         USAGE:\n  ftes <spec.ftes> [flags]\n  ftes --demo [flags]\n  \
         ftes explore [explore flags]\n  ftes corpus <action> [corpus flags]\n  \
         ftes serve [serve flags]\n  ftes load [load flags]\n\n\
         FLAGS:\n  --csv        print schedule tables as CSV\n  \
         --markdown   print schedule tables as Markdown\n  \
         --dot        print the FT-CPG in Graphviz DOT\n  \
         --timeline   print the fault-free Gantt timeline\n  \
         --verify     exhaustively fault-inject the synthesized schedule\n  \
         --demo       use the built-in Fig. 5 specification\n  \
         --trace FILE   write a Chrome trace of the run (chrome://tracing)\n  \
         --folded FILE  write folded stacks of the run (flamegraph input)\n\n\
         EXPLORE (parallel design-space exploration over a scenario grid):\n  \
         --grid paper            the paper's §6 grid (20–100 processes, k 3–7)\n  \
         --processes N --nodes N --k K   one custom point\n  \
         --seeds N    workloads per point        --seed N     master seed\n  \
         --threads N  evaluation threads         --point-par N concurrent points\n  \
         --rounds N   portfolio rounds           --iters N    iterations/round\n  \
         --verify     fault-inject each incumbent (verified column)\n  \
         --no-certify skip exact certification of incumbents (on by default)\n  \
         --certify-guided  certify incumbents inside the search loop (demote\n  \
         \u{20}            refuted states during search, not after)\n  \
         --csv | --json               machine-readable output\n  \
         --out FILE                   also write the report to FILE\n  \
         --trace FILE | --folded FILE trace the suite run (side files)\n\n\
         CORPUS (scenario-spec families + batch synthesis driver):\n  \
         list                         print the family catalog\n  \
         generate [--family all|NAME[,NAME]] [--seed N] [--out DIR]\n  \
         \u{20}            emit deterministic .ftes files (default: all families, seed 7)\n  \
         run [--dir DIR] [--workers N] [--csv FILE] [--json FILE] [--fresh]\n  \
         \u{20}            batch-run a corpus through explore+certify; the CSV is\n  \
         \u{20}            the resumable progress state and is byte-identical for\n  \
         \u{20}            any worker count\n\n\
         SERVE (the synthesis HTTP service; prints `listening on HOST:PORT`):\n  \
         --addr HOST:PORT | --port N  bind address (default 127.0.0.1:0)\n  \
         --workers N   handler threads            --queue N    connection-queue bound\n  \
         --cache-entries N            result-cache capacity\n  \
         --journal DIR crash-safe job journal (killed daemon resumes on restart)\n  \
         --job-queue N job-queue bound (16)       --job-workers N  job threads (1)\n  \
         --trace-dir DIR  stream a Chrome trace to DIR/trace.json (~1s flush)\n\n\
         LOAD (closed-loop load harness against a running service):\n  \
         --addr HOST:PORT  target (required)      --clients N  threads (8)\n  \
         --requests N  total requests (50)        --spec FILE  mix entry (repeatable)\n  \
         --jobs N      async submit->poll->result round trips on top of the mix\n\n\
         JOBS (thin client for the daemon's asynchronous job API):\n  \
         submit --addr A (--spec FILE | --demo | --explore \"PARAMS\" |\n  \
         \u{20}                --corpus-family NAME [--seed N] [--workers N]) [--wait]\n  \
         list   --addr A              id-ordered job summaries\n  \
         status --addr A ID [--wait] [--result]   snapshot / raw result bytes\n  \
         cancel --addr A ID           cancel at the next row boundary\n\n\
         LINT (the ftes-lint workspace invariant analyzer; see docs/lints.md):\n  \
         --json        machine-readable JSON diagnostics on stdout\n  \
         --rule NAME   run one rule (determinism, byte-identity, atomics-policy,\n  \
         \u{20}             panic-freedom, forbid-unsafe, taxonomy, allow-syntax)\n  \
         --out FILE    also write the JSON report to FILE (CI artifact)\n  \
         --root DIR    workspace root (default: nearest Cargo.toml + crates/)\n\n\
         EXIT CODE: 0 schedulable (load: all ok; lint: clean), 2 not\n  \
         (load: failures; lint: diagnostics), 1 error"
    );
}
