//! The `ftes serve` and `ftes load` subcommands: run the synthesis
//! service in the foreground, and drive load against a running instance.
//!
//! ```text
//! USAGE:
//!   ftes serve [--addr HOST:PORT | --port N] [--workers N]
//!              [--queue N] [--cache-entries N]
//!              [--journal DIR] [--job-queue N] [--job-workers N]
//!              [--trace-dir DIR]
//!   ftes load  --addr HOST:PORT [--clients N] [--requests N]
//!              [--jobs N] [--spec FILE]...
//! ```
//!
//! `--journal DIR` makes the daemon's job executor crash-safe: accepted
//! jobs, progress rows and terminal results are journaled, and a killed
//! daemon restarted on the same directory resumes incomplete jobs.
//! `ftes load --jobs N` adds N asynchronous submit→poll→result round
//! trips on top of the synchronous mix and reports their
//! submit-to-terminal latency percentiles.
//!
//! `ftes serve` prints `listening on HOST:PORT` (the resolved ephemeral
//! port when `--port 0`) as its first output line so scripts — the CI
//! smoke step included — can discover the address.

use ftes_serve::{run_load, start, LoadConfig, ServeConfig};

/// A fully parsed `ftes serve` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeCommand {
    /// The service configuration.
    pub config: ServeConfig,
    /// `--trace-dir DIR`: stream request/synthesis trace events into
    /// `DIR/trace.json`, flushed about once a second. The file is a
    /// Chrome trace array that loads without its closing bracket, so it
    /// survives however the daemon dies.
    pub trace_dir: Option<std::path::PathBuf>,
}

impl ServeCommand {
    /// Parses the arguments following the `serve` keyword.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut config = ServeConfig::default();
        let mut trace_dir = None;
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            let value = args.get(i + 1).cloned().ok_or_else(|| format!("{arg} needs a value"));
            match arg {
                "--addr" => config.addr = value?,
                "--trace-dir" => trace_dir = Some(std::path::PathBuf::from(value?)),
                "--port" => {
                    let port: u16 =
                        value?.parse().map_err(|_| format!("bad port `{}`", args[i + 1]))?;
                    config.addr = format!("127.0.0.1:{port}");
                }
                "--workers" => config.workers = parse_positive(arg, &value?)?,
                "--queue" => config.queue_capacity = parse_positive(arg, &value?)?,
                "--cache-entries" => config.cache_capacity = parse_positive(arg, &value?)?,
                "--journal" => config.journal_dir = Some(std::path::PathBuf::from(value?)),
                "--job-queue" => config.job_queue_capacity = parse_positive(arg, &value?)?,
                "--job-workers" => config.job_workers = parse_positive(arg, &value?)?,
                other => return Err(format!("unknown serve flag `{other}`")),
            }
            i += 2;
        }
        Ok(ServeCommand { config, trace_dir })
    }

    /// Starts the service, announces the bound address on stdout and
    /// blocks forever (foreground daemon; stop with SIGINT/SIGTERM).
    ///
    /// # Errors
    ///
    /// Propagates bind failures and trace-sink setup failures.
    pub fn execute(self) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(dir) = &self.trace_dir {
            let path = crate::spawn_trace_flusher(dir)?;
            eprintln!("tracing to {}", path.display());
        }
        let server = start(self.config)?;
        println!("listening on {}", server.addr());
        // Line-buffered stdout flushes on newline, but make the contract
        // explicit: the address must be visible before we block.
        use std::io::Write;
        std::io::stdout().flush()?;
        server.wait();
        Ok(())
    }
}

/// A fully parsed `ftes load` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCommand {
    /// The load-run configuration.
    pub config: LoadConfig,
}

impl LoadCommand {
    /// Parses the arguments following the `load` keyword.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, malformed
    /// values, a missing `--addr` or an unreadable `--spec` file.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut addr: Option<String> = None;
        let mut clients = 8usize;
        let mut requests = 50usize;
        let mut jobs_requests = 0usize;
        let mut specs: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            let value = args.get(i + 1).cloned().ok_or_else(|| format!("{arg} needs a value"));
            match arg {
                "--addr" => addr = Some(value?),
                "--clients" => clients = parse_positive(arg, &value?)?,
                "--requests" => requests = parse_positive(arg, &value?)?,
                "--jobs" => jobs_requests = parse_positive(arg, &value?)?,
                "--spec" => {
                    let path = value?;
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    specs.push(text);
                }
                other => return Err(format!("unknown load flag `{other}`")),
            }
            i += 2;
        }
        let addr = addr.ok_or("--addr is required (see `ftes serve` output)")?;
        let mut config = LoadConfig::against(addr);
        config.clients = clients;
        config.requests = requests;
        config.jobs_requests = jobs_requests;
        if !specs.is_empty() {
            config.specs = specs;
        }
        Ok(LoadCommand { config })
    }

    /// Runs the load harness and prints the report. Returns `true` when
    /// every request succeeded (drives the process exit code).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the harness.
    pub fn execute(&self) -> Result<bool, Box<dyn std::error::Error>> {
        let report = run_load(&self.config)?;
        print!("{}", report.render());
        Ok(report.failed == 0 && report.jobs.as_ref().is_none_or(|jobs| jobs.failed == 0))
    }
}

fn parse_positive(flag: &str, value: &str) -> Result<usize, String> {
    let n: usize = value.parse().map_err(|_| format!("bad number `{value}` for {flag}"))?;
    if n == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cmd = ServeCommand::parse(&[]).unwrap();
        assert_eq!(cmd.config.addr, "127.0.0.1:0");
        let cmd = ServeCommand::parse(&words(&[
            "--port",
            "8099",
            "--workers",
            "3",
            "--queue",
            "7",
            "--cache-entries",
            "11",
        ]))
        .unwrap();
        assert_eq!(cmd.config.addr, "127.0.0.1:8099");
        assert_eq!(cmd.config.workers, 3);
        assert_eq!(cmd.config.queue_capacity, 7);
        assert_eq!(cmd.config.cache_capacity, 11);
        let cmd = ServeCommand::parse(&words(&["--addr", "0.0.0.0:9000"])).unwrap();
        assert_eq!(cmd.config.addr, "0.0.0.0:9000");
        let cmd = ServeCommand::parse(&words(&[
            "--journal",
            "journal_dir",
            "--job-queue",
            "5",
            "--job-workers",
            "2",
        ]))
        .unwrap();
        assert_eq!(cmd.config.journal_dir, Some(std::path::PathBuf::from("journal_dir")));
        assert_eq!(cmd.config.job_queue_capacity, 5);
        assert_eq!(cmd.config.job_workers, 2);
        assert_eq!(cmd.trace_dir, None, "tracing is opt-in");
        let cmd = ServeCommand::parse(&words(&["--trace-dir", "traces"])).unwrap();
        assert_eq!(cmd.trace_dir, Some(std::path::PathBuf::from("traces")));
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(ServeCommand::parse(&words(&["--port", "banana"])).is_err());
        assert!(ServeCommand::parse(&words(&["--workers", "0"])).is_err());
        assert!(ServeCommand::parse(&words(&["--workers"])).is_err());
        assert!(ServeCommand::parse(&words(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn load_requires_addr_and_accepts_specs() {
        assert!(LoadCommand::parse(&[]).is_err());
        let cmd = LoadCommand::parse(&words(&[
            "--addr",
            "127.0.0.1:1234",
            "--clients",
            "4",
            "--requests",
            "20",
        ]))
        .unwrap();
        assert_eq!(cmd.config.addr, "127.0.0.1:1234");
        assert_eq!(cmd.config.clients, 4);
        assert_eq!(cmd.config.requests, 20);
        assert_eq!(cmd.config.specs.len(), 2, "default repeated-spec mix");
        assert_eq!(cmd.config.jobs_requests, 0, "jobs mode is opt-in");
        let cmd = LoadCommand::parse(&words(&["--addr", "a:1", "--jobs", "6"])).unwrap();
        assert_eq!(cmd.config.jobs_requests, 6);
        assert!(LoadCommand::parse(&words(&["--addr", "x", "--spec", "/nonexistent/path.ftes"]))
            .is_err());
    }
}
