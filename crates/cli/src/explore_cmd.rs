//! The `ftes explore` subcommand: parallel design-space exploration over a
//! §6-style scenario grid, with summary / CSV / JSON output.
//!
//! ```text
//! USAGE:
//!   ftes explore [--grid paper] [--seeds N]
//!   ftes explore --processes N --nodes N --k K [--seeds N]
//!
//! TUNING:
//!   --seed N       master seed (default 1)
//!   --threads N    evaluation threads per point (default: all cores)
//!   --point-par N  grid points explored concurrently (default 1)
//!   --rounds N     portfolio synchronization rounds (default 4)
//!   --iters N      iterations per worker per round (default 30)
//!
//! OUTPUT:
//!   --csv | --json print machine-readable results instead of the summary
//!   --out FILE     write the chosen format to FILE as well
//!
//! CERTIFICATION:
//!   incumbents are exact-certified by default (and demoted down the
//!   Pareto front when refuted); --no-certify reports raw estimator
//!   winners, --verify additionally fault-injects the reported incumbent,
//!   --certify-guided moves certification inside the search loop (an
//!   incumbent must survive an incremental exact run before it becomes
//!   best; refuted states are demoted during search, not after)
//! ```

use ftes::explore::{
    paper_grid, suite_to_csv, suite_to_json, CertifyVerdict, PortfolioConfig, ScenarioPoint,
    SuiteConfig, SuiteOutcome, VerifyConfig, VerifyOutcome,
};
use ftes::model::Time;
use ftes_jobs::{drive_suite, JobInterrupt};
use std::sync::atomic::AtomicBool;

/// Output format of the subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreFormat {
    /// Human-readable per-point summary (default).
    Summary,
    /// The CSV report of `ftes-explore`.
    Csv,
    /// The JSON report of `ftes-explore`.
    Json,
}

/// A fully parsed `ftes explore` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreCommand {
    /// The suite to run.
    pub suite: SuiteConfig,
    /// Output format.
    pub format: ExploreFormat,
    /// Optional output file for the formatted report.
    pub out: Option<String>,
    /// Trace outputs (`--trace FILE` / `--folded FILE`): per-iteration
    /// search events and certification spans from the whole suite run.
    pub trace: crate::TraceCapture,
}

impl ExploreCommand {
    /// Parses the arguments following the `explore` keyword.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, malformed
    /// numbers or contradictory grid selections.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut args = args.to_vec();
        let trace = crate::TraceCapture::take_from(&mut args)?;
        let args = &args[..];
        let mut processes: Option<usize> = None;
        let mut nodes: Option<usize> = None;
        let mut k: Option<u32> = None;
        let mut seeds: u64 = 1;
        let mut grid_paper = false;
        let mut portfolio = PortfolioConfig::default();
        let mut point_parallelism = 1usize;
        let mut format = ExploreFormat::Summary;
        let mut out = None;
        let mut verify = None;
        let mut certify = true;

        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            let arg = args[i].as_str();
            match arg {
                "--grid" => {
                    let v = value(args, i, arg)?;
                    if v != "paper" {
                        return Err(format!("unknown grid `{v}` (only `paper`)"));
                    }
                    grid_paper = true;
                    i += 2;
                }
                "--processes" | "--nodes" | "--k" | "--seeds" | "--seed" | "--threads"
                | "--point-par" | "--rounds" | "--iters" => {
                    let v = value(args, i, arg)?;
                    let n: u64 = v.parse().map_err(|_| format!("bad number `{v}` for {arg}"))?;
                    match arg {
                        "--processes" => processes = Some(n as usize),
                        "--nodes" => nodes = Some(n as usize),
                        "--k" => k = Some(n as u32),
                        "--seeds" => seeds = n.max(1),
                        "--seed" => portfolio.seed = n,
                        "--threads" => portfolio.threads = (n as usize).max(1),
                        "--point-par" => point_parallelism = (n as usize).max(1),
                        "--rounds" => portfolio.rounds = (n as usize).max(1),
                        "--iters" => portfolio.iterations_per_round = (n as usize).max(1),
                        _ => unreachable!("arm guards the flag set"),
                    }
                    i += 2;
                }
                "--verify" => {
                    verify = Some(VerifyConfig::default());
                    i += 1;
                }
                "--no-certify" => {
                    certify = false;
                    i += 1;
                }
                "--certify-guided" => {
                    portfolio.certify_guided = true;
                    i += 1;
                }
                "--csv" => {
                    format = ExploreFormat::Csv;
                    i += 1;
                }
                "--json" => {
                    format = ExploreFormat::Json;
                    i += 1;
                }
                "--out" => {
                    out = Some(value(args, i, arg)?);
                    i += 2;
                }
                other => return Err(format!("unknown explore flag `{other}`")),
            }
        }

        let custom = processes.is_some() || nodes.is_some() || k.is_some();
        if grid_paper && custom {
            return Err("--grid paper conflicts with --processes/--nodes/--k".into());
        }
        let points = if custom {
            let processes = processes.ok_or("--processes is required for a custom point")?;
            let nodes = nodes.ok_or("--nodes is required for a custom point")?;
            let k = k.ok_or("--k is required for a custom point")?;
            (0..seeds).map(|seed| ScenarioPoint { processes, nodes, k, seed }).collect()
        } else {
            paper_grid(seeds)
        };

        Ok(ExploreCommand {
            suite: SuiteConfig {
                points,
                portfolio,
                point_parallelism,
                slot: Time::new(8),
                verify,
                certify,
            },
            format,
            out,
            trace,
        })
    }

    /// Runs the suite and renders output. Returns `true` when every point
    /// was schedulable (drives the process exit code).
    ///
    /// # Errors
    ///
    /// Propagates exploration failures and output-file IO errors.
    pub fn execute(&self) -> Result<bool, Box<dyn std::error::Error>> {
        // The CLI is a thin client of the same suite driver the serve
        // daemon's job executor runs (watermark 0, cancellation never
        // requested): one code path computes every explore report.
        let never_cancelled = AtomicBool::new(false);
        self.trace.begin();
        let outcome = drive_suite(&self.suite, 0, &never_cancelled, |_, _| {});
        // Drain even a failed run's events — partial traces are exactly
        // what diagnoses the failure (stderr + side files only, so the
        // stdout report contract is untouched).
        self.trace.finish()?;
        let outcome = outcome.map_err(|interrupt| match interrupt {
            JobInterrupt::Failed(message) => message,
            JobInterrupt::Cancelled => {
                unreachable!("the CLI never sets the cancel flag")
            }
        })?;
        let rendered = match self.format {
            ExploreFormat::Summary => summarize(&outcome),
            ExploreFormat::Csv => suite_to_csv(&outcome),
            ExploreFormat::Json => suite_to_json(&outcome),
        };
        print!("{rendered}");
        if let Some(path) = &self.out {
            std::fs::write(path, &rendered)?;
        }
        Ok(outcome.points.iter().all(|p| p.schedulable))
    }
}

/// The human-readable per-point table.
fn summarize(outcome: &SuiteOutcome) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>6} {:>10} {:>10} {:>8} {:>7} {:>9} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "point",
        "nodes",
        "k",
        "fault-free",
        "worst-case",
        "slack%",
        "pareto",
        "cache-hit",
        "evals/s",
        "certified",
        "exact",
        "verified",
        "ms"
    );
    for p in &outcome.points {
        let verified = match p.verified {
            VerifyOutcome::Sound => "sound",
            VerifyOutcome::Unsound => "UNSOUND",
            VerifyOutcome::Skipped => "skipped",
            VerifyOutcome::NotRequested => "-",
        };
        let certified = match p.certified {
            CertifyVerdict::Certified(_) => {
                if p.demoted > 0 {
                    "demoted"
                } else {
                    "yes"
                }
            }
            CertifyVerdict::Refuted(_) => "REFUTED",
            CertifyVerdict::Skipped => "skipped",
            CertifyVerdict::NotRequested => "-",
        };
        let exact =
            p.certified.exact_len().map_or_else(|| "-".to_string(), |t| t.units().to_string());
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>10} {:>10} {:>8.1} {:>7} {:>8.0}% {:>8.0} {:>9} {:>9} {:>8} {:>8} {}",
            p.point.label(),
            p.point.nodes,
            p.point.k,
            p.fault_free.units(),
            p.worst_case.units(),
            p.slack_pct,
            p.archive.len(),
            100.0 * p.cache.hit_rate(),
            p.evals_per_sec(),
            certified,
            exact,
            verified,
            p.wall.as_millis(),
            if p.schedulable { "" } else { "  ** MISSES DEADLINE **" },
        );
    }
    let totals = outcome.total_cache();
    let evals = outcome.total_evals();
    let _ = writeln!(
        out,
        "{} points in {} ms; estimator calls {} (plus {} cache hits, {:.0}% hit rate); \
         {} kernel evaluations from {} evaluators ({} reused, {:.0} evals/s)",
        outcome.points.len(),
        outcome.wall.as_millis(),
        totals.misses,
        totals.hits,
        100.0 * totals.hit_rate(),
        evals.evaluations(),
        evals.constructions,
        evals.reused(),
        outcome.evals_per_sec(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ExploreCommand, String> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        ExploreCommand::parse(&args)
    }

    #[test]
    fn default_is_the_paper_grid() {
        let cmd = parse(&[]).unwrap();
        assert_eq!(cmd.suite.points.len(), 5);
        assert_eq!(cmd.format, ExploreFormat::Summary);
        assert_eq!(cmd.suite.points[0].processes, 20);
        assert_eq!(cmd.suite.points[4].k, 7);
    }

    #[test]
    fn custom_point_with_seeds() {
        let cmd = parse(&[
            "--processes",
            "12",
            "--nodes",
            "3",
            "--k",
            "2",
            "--seeds",
            "3",
            "--seed",
            "9",
            "--threads",
            "2",
            "--rounds",
            "2",
            "--iters",
            "5",
            "--json",
            "--verify",
        ])
        .unwrap();
        assert_eq!(cmd.suite.points.len(), 3);
        assert!(cmd.suite.points.iter().all(|p| p.processes == 12 && p.k == 2));
        assert_eq!(cmd.suite.portfolio.seed, 9);
        assert_eq!(cmd.suite.portfolio.rounds, 2);
        assert_eq!(cmd.format, ExploreFormat::Json);
        assert_eq!(cmd.suite.verify, Some(VerifyConfig::default()));
        assert!(cmd.suite.certify, "certification is on by default");
    }

    #[test]
    fn no_certify_flag_disables_certification() {
        let cmd = parse(&["--no-certify"]).unwrap();
        assert!(!cmd.suite.certify);
        assert!(parse(&[]).unwrap().suite.certify);
    }

    #[test]
    fn certify_guided_flag_enables_in_loop_certification() {
        let cmd = parse(&["--certify-guided"]).unwrap();
        assert!(cmd.suite.portfolio.certify_guided);
        assert!(!parse(&[]).unwrap().suite.portfolio.certify_guided, "guided is opt-in");
    }

    #[test]
    fn conflicting_and_malformed_flags_error() {
        assert!(parse(&["--grid", "paper", "--processes", "10"]).is_err());
        assert!(parse(&["--grid", "fig9"]).is_err());
        assert!(parse(&["--processes", "ten"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--processes", "10", "--nodes", "2"]).is_err(), "missing --k");
    }

    #[test]
    fn execute_runs_a_tiny_point_end_to_end() {
        let cmd = parse(&[
            "--processes",
            "8",
            "--nodes",
            "2",
            "--k",
            "1",
            "--threads",
            "2",
            "--rounds",
            "2",
            "--iters",
            "4",
            "--csv",
        ])
        .unwrap();
        let ok = cmd.execute().unwrap();
        // Small generated instances with the default deadline factor are
        // schedulable; the exact flag value matters less than the run
        // completing and producing consistent output.
        let _ = ok;
    }
}
