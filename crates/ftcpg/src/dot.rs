//! Graphviz DOT export of FT-CPGs, mirroring the visual language of the
//! paper's Fig. 5b: conditional processes are double circles, regular copies
//! plain circles, synchronization nodes bars, and conditional edges are
//! labelled with their condition value.

use crate::{CpgNodeKind, FtCpg, Location};
use std::fmt::Write as _;

/// Renders the FT-CPG in Graphviz DOT syntax.
///
/// # Examples
///
/// ```
/// use ftes_ftcpg::{build_ftcpg, dot, BuildConfig, CopyMapping};
/// use ftes_ft::PolicyAssignment;
/// use ftes_model::{samples, FaultModel, Mapping, Transparency};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig1_process(1);
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 1);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(1),
///                       &Transparency::none(), BuildConfig::default())?;
/// let rendered = dot::ftcpg_to_dot(&cpg);
/// assert!(rendered.contains("digraph ftcpg"));
/// # Ok(())
/// # }
/// ```
pub fn ftcpg_to_dot(cpg: &FtCpg) -> String {
    let mut out = String::new();
    out.push_str("digraph ftcpg {\n  rankdir=TB;\n");
    for (id, node) in cpg.iter() {
        let shape = match node.kind {
            CpgNodeKind::ProcessCopy { .. } => {
                if node.conditional {
                    "doublecircle"
                } else {
                    "circle"
                }
            }
            CpgNodeKind::MessageCopy { .. } => "ellipse",
            CpgNodeKind::ProcessSync { .. } | CpgNodeKind::MessageSync { .. } => "box",
            CpgNodeKind::ReplicaJoin { .. } => "invtriangle",
        };
        let loc = match node.location {
            Location::Node(n) => format!("\\n@{n}"),
            Location::Bus => "\\n@bus".to_string(),
            Location::None => String::new(),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}{}\", shape={}, tooltip=\"{}\"];",
            id.index(),
            cpg.name(id),
            loc,
            shape,
            cpg.node(id).guard.display_with(|c| cpg.name(c).to_string()),
        );
    }
    for e in cpg.edges() {
        let label = match e.condition {
            Some(l) if l.fault => format!(" [label=\"F({})\", style=dashed]", cpg.name(l.cond)),
            Some(l) => format!(" [label=\"!F({})\"]", cpg.name(l.cond)),
            None => String::new(),
        };
        let _ = writeln!(out, "  n{} -> n{}{};", e.from.index(), e.to.index(), label);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_ft::PolicyAssignment;
    use ftes_model::{samples, FaultModel, Mapping};

    #[test]
    fn renders_fig5_nodes_edges_and_styles() {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let dot = ftcpg_to_dot(&cpg);
        assert!(dot.starts_with("digraph ftcpg {"));
        assert_eq!(dot.matches("->").count(), cpg.edge_count());
        // Sync nodes are boxes, conditional copies double circles.
        assert!(dot.contains("P3^S"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=doublecircle"));
        // Conditional edges are labelled.
        assert!(dot.contains("style=dashed"));
    }
}
