//! Mapping of every process *copy* (original + replicas) to a computation
//! node — the extension of `M: V → N` to the replica set `VR` (paper §6,
//! items 2 and 3 of the problem formulation).

use crate::CpgError;
use ftes_ft::PolicyAssignment;
use ftes_model::{Application, Architecture, Mapping, NodeId, ProcessId, Time};

/// Node assignment for every copy of every process.
///
/// Row `p` has one entry per copy of `p`'s policy (index 0 = the original
/// process, 1.. = replicas). Validated invariants:
///
/// * arity matches the policy's copy count,
/// * every copy sits on a node where the process has a WCET.
///
/// Replicas *prefer* pairwise distinct nodes (spatial redundancy, §3.2),
/// but sharing is permitted: transient faults hit individual executions,
/// not nodes, and the paper's fault model allows `k` to exceed the node
/// count (§2, footnote 1) — pure replication then necessarily co-locates
/// copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyMapping {
    rows: Vec<Vec<NodeId>>,
}

impl CopyMapping {
    /// Validates and wraps an explicit per-copy assignment.
    ///
    /// # Errors
    ///
    /// Returns [`CpgError::CopyArityMismatch`] or
    /// [`CpgError::InfeasibleCopyMapping`] when the invariants are
    /// violated.
    pub fn new(
        app: &Application,
        policies: &PolicyAssignment,
        rows: Vec<Vec<NodeId>>,
    ) -> Result<Self, CpgError> {
        if rows.len() != app.process_count() {
            return Err(CpgError::CopyArityMismatch {
                process: ProcessId::new(rows.len().min(app.process_count())),
                got: rows.len(),
                expected: app.process_count(),
            });
        }
        for (i, row) in rows.iter().enumerate() {
            let pid = ProcessId::new(i);
            let copies = policies.policy(pid).copies().len();
            if row.len() != copies {
                return Err(CpgError::CopyArityMismatch {
                    process: pid,
                    got: row.len(),
                    expected: copies,
                });
            }
            let proc = app.process(pid);
            for &node in row {
                if proc.wcet_on(node).is_none() {
                    return Err(CpgError::InfeasibleCopyMapping(pid, node));
                }
            }
        }
        Ok(CopyMapping { rows })
    }

    /// Derives a copy mapping from a base process mapping: copy 0 follows
    /// the base mapping; replicas are placed greedily on the feasible node
    /// with the smallest accumulated load, preferring nodes not yet used by
    /// this process (distinct placement when possible).
    ///
    /// # Errors
    ///
    /// Propagates [`CpgError::CopyArityMismatch`] (unreachable for
    /// consistent inputs).
    pub fn from_base(
        app: &Application,
        arch: &Architecture,
        base: &Mapping,
        policies: &PolicyAssignment,
    ) -> Result<Self, CpgError> {
        let mut load = vec![Time::ZERO; arch.node_count()];
        for (pid, node) in base.iter() {
            load[node.index()] += base.wcet_of(app, pid);
        }
        let mut rows = Vec::with_capacity(app.process_count());
        for (pid, proc) in app.processes() {
            let copies = policies.policy(pid).copies().len();
            let feasible: Vec<NodeId> = proc.candidate_nodes().collect();
            let mut row = vec![base.node_of(pid)];
            while row.len() < copies {
                let next = feasible
                    .iter()
                    .copied()
                    .min_by_key(|n| {
                        let reuse = row.iter().filter(|&&r| r == *n).count();
                        (reuse, load[n.index()], n.index())
                    })
                    .expect("validated processes have a feasible node");
                load[next.index()] += proc.wcet_on(next).expect("feasible node");
                row.push(next);
            }
            rows.push(row);
        }
        Ok(CopyMapping { rows })
    }

    /// Node of copy `copy` of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `copy` is out of range.
    pub fn node_of(&self, p: ProcessId, copy: usize) -> NodeId {
        self.rows[p.index()][copy]
    }

    /// All copy nodes of process `p` (index 0 = original).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn copies_of(&self, p: ProcessId) -> &[NodeId] {
        &self.rows[p.index()]
    }

    /// The base mapping restricted to copy 0 of every process.
    ///
    /// # Errors
    ///
    /// Propagates [`ftes_model::ModelError`] if the restriction is somehow
    /// infeasible (cannot happen for a validated copy mapping).
    pub fn base_mapping(
        &self,
        app: &Application,
        arch: &Architecture,
    ) -> Result<Mapping, ftes_model::ModelError> {
        Mapping::new(app, arch, self.rows.iter().map(|r| r[0]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::{Policy, PolicyAssignment};
    use ftes_model::samples;

    fn fig3_setup(k: u32) -> (Application, Architecture, Mapping, PolicyAssignment) {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        (app, arch, mapping, policies)
    }

    #[test]
    fn from_base_single_copy_follows_base() {
        let (app, arch, mapping, policies) = fig3_setup(2);
        let cm = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        for (pid, _) in app.processes() {
            assert_eq!(cm.copies_of(pid), &[mapping.node_of(pid)]);
        }
        assert_eq!(cm.base_mapping(&app, &arch).unwrap(), mapping);
    }

    #[test]
    fn from_base_places_replicas_on_distinct_nodes() {
        let (app, arch, mapping, mut policies) = fig3_setup(1);
        // Replicate P1 (id 0) once: two copies on the two nodes.
        policies.set(ProcessId::new(0), Policy::replication(1));
        let cm = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let copies = cm.copies_of(ProcessId::new(0));
        assert_eq!(copies.len(), 2);
        assert_ne!(copies[0], copies[1]);
    }

    #[test]
    fn replication_of_restricted_process_shares_its_node() {
        let (app, arch, mapping, mut policies) = fig3_setup(1);
        // P3 (id 2) can only run on N1 -> both copies share it (the k >
        // node-count regime of §2, footnote 1).
        policies.set(ProcessId::new(2), Policy::replication(1));
        let cm = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        assert_eq!(cm.copies_of(ProcessId::new(2)), &[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn explicit_rows_validated() {
        let (app, _arch, _mapping, mut policies) = fig3_setup(1);
        policies.set(ProcessId::new(0), Policy::replication(1));
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        // Wrong arity for P1.
        let bad = CopyMapping::new(
            &app,
            &policies,
            vec![vec![n0], vec![n0], vec![n0], vec![n0], vec![n0]],
        );
        assert!(matches!(bad, Err(CpgError::CopyArityMismatch { .. })));
        // Shared node for two copies is allowed.
        CopyMapping::new(
            &app,
            &policies,
            vec![vec![n0, n0], vec![n0], vec![n0], vec![n0], vec![n0]],
        )
        .unwrap();
        // Infeasible node for P3 (id 2).
        let bad = CopyMapping::new(
            &app,
            &policies,
            vec![vec![n0, n1], vec![n0], vec![n1], vec![n0], vec![n0]],
        );
        assert!(matches!(bad, Err(CpgError::InfeasibleCopyMapping(..))));
        // A valid one.
        let ok = CopyMapping::new(
            &app,
            &policies,
            vec![vec![n0, n1], vec![n0], vec![n0], vec![n0], vec![n0]],
        )
        .unwrap();
        assert_eq!(ok.node_of(ProcessId::new(0), 1), n1);
    }
}
