//! FT-CPG node and edge types and the graph container (paper §5.1).

use crate::{Guard, Literal};
use ftes_model::{MessageId, NodeId, ProcessId, Time};
use std::fmt;

/// Index of a node in a [`FtCpg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpgNodeId(u32);

impl CpgNodeId {
    /// Creates an id from a dense index.
    pub const fn new(index: usize) -> Self {
        CpgNodeId(index as u32)
    }

    /// Dense index for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where an FT-CPG node executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// On a computation node's CPU.
    Node(NodeId),
    /// On the shared TDMA bus.
    Bus,
    /// Nowhere — synchronization and join nodes take zero time (§5.1).
    None,
}

/// The role of an FT-CPG node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CpgNodeKind {
    /// The `m`-th execution copy `Pi^m` of a process: `copy` is the replica
    /// index (0 = original), `attempt` the 1-based execution attempt of that
    /// replica in its scenario context, `variant` the global display index
    /// `m` (matching the paper's `P2^4` notation).
    ProcessCopy {
        /// The application process.
        process: ProcessId,
        /// Replica index (0 = the original).
        copy: u32,
        /// 1-based attempt number within the replica's recovery chain.
        attempt: u32,
        /// Global display index `m` of this copy.
        variant: u32,
    },
    /// A copy of message `mi` carrying the output of one producer outcome.
    MessageCopy {
        /// The application message.
        message: MessageId,
        /// Global display index of this copy.
        variant: u32,
    },
    /// Synchronization node `Pi^S` of a frozen process.
    ProcessSync {
        /// The frozen process.
        process: ProcessId,
    },
    /// Synchronization node `mi^S` of a frozen message.
    MessageSync {
        /// The frozen message.
        message: MessageId,
    },
    /// Join of the replica chains of one process in one scenario context:
    /// completes when at least one replica is guaranteed to have delivered
    /// (see `ftes-sched`'s adversarial join analysis).
    ReplicaJoin {
        /// The replicated process.
        process: ProcessId,
        /// Display index of the join (one per arrival context).
        variant: u32,
    },
}

/// One node of the FT-CPG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpgNode {
    /// Role of the node.
    pub kind: CpgNodeKind,
    /// Conjunction of condition values under which the node executes.
    pub guard: Guard,
    /// Worst-case duration (zero for synchronization/join nodes and
    /// node-internal messages).
    pub duration: Time,
    /// Execution location.
    pub location: Location,
    /// `true` iff the node produces a fault condition `F` (conditional
    /// process, §5.1).
    pub conditional: bool,
}

/// One edge of the FT-CPG. `condition` is `Some` for conditional edges
/// (carrying the outcome literal of the producing conditional node) and
/// `None` for simple edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpgEdge {
    /// Source node.
    pub from: CpgNodeId,
    /// Target node.
    pub to: CpgNodeId,
    /// Outcome literal for conditional edges.
    pub condition: Option<Literal>,
}

/// A fault-tolerant conditional process graph `G(VP ∪ VC ∪ VT, ES ∪ EC)`.
///
/// Nodes are stored in a topological order (construction order); edges point
/// from earlier to later nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FtCpg {
    pub(crate) nodes: Vec<CpgNode>,
    pub(crate) edges: Vec<CpgEdge>,
    pub(crate) out_edges: Vec<Vec<usize>>,
    pub(crate) in_edges: Vec<Vec<usize>>,
    pub(crate) names: Vec<String>,
    /// Replica chains per join node: `joins[i] = (join, chains)` where
    /// `chains[j]` lists the attempt nodes of replica `j` in order.
    pub(crate) joins: Vec<(CpgNodeId, Vec<Vec<CpgNodeId>>)>,
    pub(crate) fault_budget: u32,
}

impl FtCpg {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The global fault budget `k` the graph was built for.
    pub fn fault_budget(&self) -> u32 {
        self.fault_budget
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: CpgNodeId) -> &CpgNode {
        &self.nodes[id.index()]
    }

    /// Display name of a node (e.g. `P2^4`, `m1^2`, `P3^S`, `P1(1)^2`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn name(&self, id: CpgNodeId) -> &str {
        &self.names[id.index()]
    }

    /// Iterator over `(CpgNodeId, &CpgNode)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (CpgNodeId, &CpgNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (CpgNodeId::new(i), n))
    }

    /// All edges.
    pub fn edges(&self) -> &[CpgEdge] {
        &self.edges
    }

    /// Outgoing edges of `id`.
    pub fn outgoing(&self, id: CpgNodeId) -> impl Iterator<Item = &CpgEdge> {
        self.out_edges[id.index()].iter().map(move |&e| &self.edges[e])
    }

    /// Incoming edges of `id`.
    pub fn incoming(&self, id: CpgNodeId) -> impl Iterator<Item = &CpgEdge> {
        self.in_edges[id.index()].iter().map(move |&e| &self.edges[e])
    }

    /// Conditional nodes (the producers of fault conditions), in topological
    /// order.
    pub fn conditional_nodes(&self) -> impl Iterator<Item = CpgNodeId> + '_ {
        self.iter().filter(|(_, n)| n.conditional).map(|(id, _)| id)
    }

    /// Synchronization nodes (frozen processes/messages), in topological
    /// order.
    pub fn sync_nodes(&self) -> impl Iterator<Item = CpgNodeId> + '_ {
        self.iter()
            .filter(|(_, n)| {
                matches!(n.kind, CpgNodeKind::ProcessSync { .. } | CpgNodeKind::MessageSync { .. })
            })
            .map(|(id, _)| id)
    }

    /// Replica-join metadata: for each join node, the attempt chains of each
    /// replica feeding it.
    pub fn joins(&self) -> &[(CpgNodeId, Vec<Vec<CpgNodeId>>)] {
        &self.joins
    }

    /// Nodes with no outgoing edges.
    pub fn leaves(&self) -> impl Iterator<Item = CpgNodeId> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_empty())
            .map(|(i, _)| CpgNodeId::new(i))
    }

    /// All process copies of one application process, in topological order.
    pub fn copies_of_process(&self, p: ProcessId) -> impl Iterator<Item = CpgNodeId> + '_ {
        self.iter()
            .filter(move |(_, n)| {
                matches!(n.kind, CpgNodeKind::ProcessCopy { process, .. } if process == p)
            })
            .map(|(id, _)| id)
    }

    /// All message copies (and the sync node, if frozen) of one message.
    pub fn copies_of_message(&self, m: MessageId) -> impl Iterator<Item = CpgNodeId> + '_ {
        self.iter()
            .filter(move |(_, n)| match n.kind {
                CpgNodeKind::MessageCopy { message, .. } | CpgNodeKind::MessageSync { message } => {
                    message == m
                }
                _ => false,
            })
            .map(|(id, _)| id)
    }

    /// Validates structural invariants (used by tests and debug assertions):
    /// edges go forward, guards of children imply or refine parents', and
    /// out-edges of a conditional node carry complementary literals on its
    /// condition.
    pub fn check_invariants(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.from.index() >= e.to.index() {
                return Err(format!("edge {} -> {} is not topological", e.from, e.to));
            }
        }
        for (id, n) in self.iter() {
            if n.conditional {
                for e in self.outgoing(id) {
                    if let Some(lit) = e.condition {
                        if lit.cond != id {
                            return Err(format!(
                                "conditional edge out of {} carries foreign condition",
                                self.name(id)
                            ));
                        }
                    }
                }
            }
            if n.duration.is_negative() {
                return Err(format!("negative duration on {}", self.name(id)));
            }
            if n.guard.fault_count() > self.fault_budget {
                return Err(format!(
                    "guard of {} exceeds the fault budget k={}",
                    self.name(id),
                    self.fault_budget
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let id = CpgNodeId::new(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "n5");
    }

    #[test]
    fn empty_graph_queries() {
        let g = FtCpg::default();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.conditional_nodes().count(), 0);
        assert_eq!(g.leaves().count(), 0);
        g.check_invariants().unwrap();
    }
}
