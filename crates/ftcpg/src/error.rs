//! Errors reported by FT-CPG construction.

use ftes_model::{NodeId, ProcessId};
use std::error::Error;
use std::fmt;

/// Error produced while building a fault-tolerant conditional process graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpgError {
    /// The graph would exceed the configured node budget; use the fast
    /// schedule-length estimator (`ftes-sched`) for instances of this size.
    GraphTooLarge {
        /// Configured limit.
        limit: usize,
    },
    /// A copy mapping row has the wrong number of entries for the process's
    /// policy.
    CopyArityMismatch {
        /// Offending process.
        process: ProcessId,
        /// Entries supplied.
        got: usize,
        /// Copies required by the policy.
        expected: usize,
    },
    /// A copy is mapped on a node where the process has no WCET.
    InfeasibleCopyMapping(ProcessId, NodeId),
    /// A model-level error surfaced during construction.
    Model(ftes_model::ModelError),
    /// A fault-tolerance error surfaced during construction.
    Ft(ftes_ft::FtError),
}

impl fmt::Display for CpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpgError::GraphTooLarge { limit } => {
                write!(f, "FT-CPG would exceed the {limit}-node budget")
            }
            CpgError::CopyArityMismatch { process, got, expected } => write!(
                f,
                "copy mapping of {process} has {got} entries but the policy has {expected} copies"
            ),
            CpgError::InfeasibleCopyMapping(p, n) => {
                write!(f, "copy of {p} is mapped on {n} where it has no WCET")
            }
            CpgError::Model(e) => write!(f, "model error: {e}"),
            CpgError::Ft(e) => write!(f, "fault-tolerance error: {e}"),
        }
    }
}

impl Error for CpgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpgError::Model(e) => Some(e),
            CpgError::Ft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ftes_model::ModelError> for CpgError {
    fn from(e: ftes_model::ModelError) -> Self {
        CpgError::Model(e)
    }
}

impl From<ftes_ft::FtError> for CpgError {
    fn from(e: ftes_ft::FtError) -> Self {
        CpgError::Ft(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chains() {
        let e = CpgError::from(ftes_ft::FtError::NoCopies);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("fault-tolerance"));
        let e = CpgError::GraphTooLarge { limit: 10 };
        assert!(e.source().is_none());
    }
}
