//! Guards: conjunctions of fault-condition literals (paper §5.1).
//!
//! A condition `F_{Pi^m}` is produced by a *conditional* FT-CPG node (an
//! execution copy that may still experience a fault); it is `true` when the
//! copy is hit by a fault. A guard is the conjunction of condition values
//! under which an FT-CPG node executes — the column headers of the schedule
//! tables in Fig. 6.

use crate::CpgNodeId;
use std::fmt;

/// One condition literal: the producing conditional node and the required
/// outcome (`true` = fault occurred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// The conditional FT-CPG node producing the condition.
    pub cond: CpgNodeId,
    /// Required outcome: `true` iff the copy must have experienced a fault.
    pub fault: bool,
}

impl Literal {
    /// The fault outcome `F` of a conditional node.
    pub fn fault(cond: CpgNodeId) -> Self {
        Literal { cond, fault: true }
    }

    /// The no-fault outcome `!F` of a conditional node.
    pub fn no_fault(cond: CpgNodeId) -> Self {
        Literal { cond, fault: false }
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Literal { cond: self.cond, fault: !self.fault }
    }
}

/// A conjunction of condition literals, kept sorted and duplicate-free.
///
/// The empty guard is `true` (unconditional execution).
///
/// # Examples
///
/// ```
/// use ftes_ftcpg::{CpgNodeId, Guard, Literal};
///
/// let c = CpgNodeId::new(0);
/// let fault = Guard::of([Literal::fault(c)]);
/// let ok = Guard::of([Literal::no_fault(c)]);
/// assert!(fault.excludes(&ok), "complementary outcomes are disjoint");
/// assert!(!fault.excludes(&Guard::always()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Guard {
    literals: Vec<Literal>,
}

impl Guard {
    /// The unconditional guard (`true`).
    pub fn always() -> Self {
        Guard::default()
    }

    /// Builds a guard from literals (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if the literals are contradictory (both outcomes of one
    /// condition) — such a guard would label unreachable schedule entries
    /// and indicates a builder bug.
    pub fn of(literals: impl IntoIterator<Item = Literal>) -> Self {
        let mut v: Vec<Literal> = literals.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for w in v.windows(2) {
            assert!(w[0].cond != w[1].cond, "contradictory guard literals for {:?}", w[0].cond);
        }
        Guard { literals: v }
    }

    /// The literals of the conjunction, sorted by condition id.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// `true` iff the guard is the unconditional `true`.
    pub fn is_always(&self) -> bool {
        self.literals.is_empty()
    }

    /// Number of *fault* literals — the number of faults that have certainly
    /// occurred in any scenario satisfying this guard. Used for fault-budget
    /// accounting during FT-CPG construction.
    pub fn fault_count(&self) -> u32 {
        self.literals.iter().filter(|l| l.fault).count() as u32
    }

    /// Conjunction with one more literal.
    ///
    /// Returns `None` if the result would be contradictory.
    pub fn and_literal(&self, lit: Literal) -> Option<Guard> {
        match self.literals.binary_search_by_key(&lit.cond, |l| l.cond) {
            Ok(i) => {
                if self.literals[i].fault == lit.fault {
                    Some(self.clone())
                } else {
                    None
                }
            }
            Err(i) => {
                let mut v = self.literals.clone();
                v.insert(i, lit);
                Some(Guard { literals: v })
            }
        }
    }

    /// Conjunction of two guards.
    ///
    /// Returns `None` if they are contradictory (contain complementary
    /// literals) — the combined context is unreachable.
    pub fn and(&self, other: &Guard) -> Option<Guard> {
        let mut out = Vec::with_capacity(self.literals.len() + other.literals.len());
        let (mut i, mut j) = (0, 0);
        while i < self.literals.len() && j < other.literals.len() {
            let (a, b) = (self.literals[i], other.literals[j]);
            match a.cond.cmp(&b.cond) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a.fault != b.fault {
                        return None;
                    }
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.literals[i..]);
        out.extend_from_slice(&other.literals[j..]);
        Some(Guard { literals: out })
    }

    /// `true` iff the two guards can never hold simultaneously (they contain
    /// complementary literals). Mutually exclusive guards may share a
    /// processor or bus interval — the alternative-paths-are-disjoint
    /// property of §5.1.
    pub fn excludes(&self, other: &Guard) -> bool {
        self.and(other).is_none()
    }

    /// `true` iff every scenario satisfying `self` also satisfies `other`
    /// (`self` is at least as specific: superset of literals).
    pub fn implies(&self, other: &Guard) -> bool {
        other.literals.iter().all(|l| {
            self.literals
                .binary_search_by_key(&l.cond, |m| m.cond)
                .map(|i| self.literals[i].fault == l.fault)
                .unwrap_or(false)
        })
    }

    /// Evaluates the guard under a total/partial assignment of condition
    /// outcomes: `Some(true)` if satisfied, `Some(false)` if falsified,
    /// `None` if some relevant condition is unassigned.
    pub fn evaluate(&self, outcome: impl Fn(CpgNodeId) -> Option<bool>) -> Option<bool> {
        let mut all_known = true;
        for l in &self.literals {
            match outcome(l.cond) {
                Some(v) if v != l.fault => return Some(false),
                Some(_) => {}
                None => all_known = false,
            }
        }
        if all_known {
            Some(true)
        } else {
            None
        }
    }

    /// Renders the guard with a naming function for conditions, e.g.
    /// `F(P1^1) ∧ !F(P1^2)`; the empty guard renders as `true`.
    pub fn display_with<F: Fn(CpgNodeId) -> String>(&self, name: F) -> String {
        if self.literals.is_empty() {
            return "true".to_string();
        }
        self.literals
            .iter()
            .map(|l| {
                if l.fault {
                    format!("F({})", name(l.cond))
                } else {
                    format!("!F({})", name(l.cond))
                }
            })
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|c| format!("v{}", c.index())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CpgNodeId {
        CpgNodeId::new(i)
    }

    #[test]
    fn empty_guard_is_true() {
        let g = Guard::always();
        assert!(g.is_always());
        assert_eq!(g.fault_count(), 0);
        assert_eq!(g.to_string(), "true");
        assert!(!g.excludes(&Guard::of([Literal::fault(c(0))])));
    }

    #[test]
    fn and_literal_merges_and_detects_contradiction() {
        let g = Guard::of([Literal::fault(c(1))]);
        let g2 = g.and_literal(Literal::no_fault(c(0))).unwrap();
        assert_eq!(g2.literals().len(), 2);
        assert!(g2.and_literal(Literal::no_fault(c(1))).is_none());
        // Re-adding an existing literal is a no-op.
        assert_eq!(g2.and_literal(Literal::fault(c(1))).unwrap(), g2);
    }

    #[test]
    fn and_is_commutative_and_detects_conflicts() {
        let a = Guard::of([Literal::fault(c(0)), Literal::no_fault(c(2))]);
        let b = Guard::of([Literal::fault(c(1))]);
        let ab = a.and(&b).unwrap();
        let ba = b.and(&a).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.literals().len(), 3);
        let conflict = Guard::of([Literal::fault(c(2))]);
        assert!(a.and(&conflict).is_none());
        assert!(a.excludes(&conflict));
    }

    #[test]
    fn implies_checks_subset() {
        let specific = Guard::of([Literal::fault(c(0)), Literal::no_fault(c(1))]);
        let general = Guard::of([Literal::fault(c(0))]);
        assert!(specific.implies(&general));
        assert!(!general.implies(&specific));
        assert!(specific.implies(&Guard::always()));
        assert!(!specific.implies(&Guard::of([Literal::no_fault(c(0))])));
    }

    #[test]
    fn fault_count_counts_positive_literals() {
        let g = Guard::of([Literal::fault(c(0)), Literal::no_fault(c(1)), Literal::fault(c(2))]);
        assert_eq!(g.fault_count(), 2);
    }

    #[test]
    fn evaluate_under_assignments() {
        let g = Guard::of([Literal::fault(c(0)), Literal::no_fault(c(1))]);
        let total = |id: CpgNodeId| Some(id == c(0));
        assert_eq!(g.evaluate(total), Some(true));
        let falsified = |_: CpgNodeId| Some(false);
        assert_eq!(g.evaluate(falsified), Some(false));
        let partial = |id: CpgNodeId| if id == c(0) { Some(true) } else { None };
        assert_eq!(g.evaluate(partial), None);
    }

    #[test]
    #[should_panic(expected = "contradictory guard literals")]
    fn of_rejects_contradictions() {
        let _ = Guard::of([Literal::fault(c(0)), Literal::no_fault(c(0))]);
    }

    #[test]
    fn display_with_names() {
        let g = Guard::of([Literal::fault(c(0)), Literal::no_fault(c(1))]);
        let s = g.display_with(|id| format!("P{}", id.index() + 1));
        assert_eq!(s, "F(P1) ∧ !F(P2)");
    }
}
