//! Fault scenarios: consistent assignments of outcomes to the FT-CPG's
//! conditions, bounded by the global fault budget `k` (paper §2, §5.1).
//!
//! A scenario is identified by the set of conditional nodes that experience
//! a fault. A conditional node is *active* in a scenario iff its guard is
//! satisfied by the outcomes of earlier conditions; only active nodes can
//! fault, and at most `k` faults occur in total.

use crate::{CpgError, CpgNodeId, FtCpg};
use std::collections::BTreeSet;

/// One fault scenario: the set of execution copies hit by a fault.
///
/// # Examples
///
/// ```
/// use ftes_ftcpg::FaultScenario;
///
/// let s = FaultScenario::fault_free();
/// assert_eq!(s.fault_count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FaultScenario {
    faults: BTreeSet<CpgNodeId>,
}

impl FaultScenario {
    /// The scenario with no faults.
    pub fn fault_free() -> Self {
        FaultScenario::default()
    }

    /// A scenario from an explicit fault set (consistency against a graph is
    /// checked by [`FaultScenario::is_consistent`]).
    pub fn new(faults: impl IntoIterator<Item = CpgNodeId>) -> Self {
        FaultScenario { faults: faults.into_iter().collect() }
    }

    /// The faulted copies.
    pub fn faults(&self) -> impl Iterator<Item = CpgNodeId> + '_ {
        self.faults.iter().copied()
    }

    /// Number of faults in the scenario.
    pub fn fault_count(&self) -> u32 {
        self.faults.len() as u32
    }

    /// Returns `true` if `node` faults in this scenario.
    pub fn is_faulted(&self, node: CpgNodeId) -> bool {
        self.faults.contains(&node)
    }

    /// Computes, for every FT-CPG node, whether it executes in this
    /// scenario (its guard is satisfied by the condition outcomes).
    ///
    /// Returned vector is indexed by node id.
    pub fn active_nodes(&self, cpg: &FtCpg) -> Vec<bool> {
        let mut cond_value: Vec<Option<bool>> = vec![None; cpg.node_count()];
        let mut active = vec![false; cpg.node_count()];
        for (id, node) in cpg.iter() {
            let sat = node.guard.evaluate(|c| cond_value[c.index()]).unwrap_or(false);
            active[id.index()] = sat;
            if node.conditional && sat {
                cond_value[id.index()] = Some(self.faults.contains(&id));
            }
        }
        active
    }

    /// Checks that the scenario is realizable on `cpg`: every faulted node
    /// is an active conditional node and the budget `k` is respected.
    pub fn is_consistent(&self, cpg: &FtCpg) -> bool {
        if self.fault_count() > cpg.fault_budget() {
            return false;
        }
        let active = self.active_nodes(cpg);
        self.faults
            .iter()
            .all(|f| f.index() < cpg.node_count() && active[f.index()] && cpg.node(*f).conditional)
    }
}

/// Enumerates every consistent fault scenario of `cpg` (up to `limit`).
///
/// Scenarios are produced in a deterministic order starting with the
/// fault-free scenario.
///
/// # Errors
///
/// Returns [`CpgError::GraphTooLarge`] (reusing the budget error) when more
/// than `limit` scenarios exist — callers should fall back to sampling.
pub fn enumerate_scenarios(cpg: &FtCpg, limit: usize) -> Result<Vec<FaultScenario>, CpgError> {
    let conditionals: Vec<CpgNodeId> = cpg.conditional_nodes().collect();
    let mut out = Vec::new();
    let mut cond_value: Vec<Option<bool>> = vec![None; cpg.node_count()];
    let mut faults: Vec<CpgNodeId> = Vec::new();
    dfs(cpg, &conditionals, 0, &mut cond_value, &mut faults, &mut out, limit)?;
    Ok(out)
}

fn dfs(
    cpg: &FtCpg,
    conds: &[CpgNodeId],
    i: usize,
    cond_value: &mut Vec<Option<bool>>,
    faults: &mut Vec<CpgNodeId>,
    out: &mut Vec<FaultScenario>,
    limit: usize,
) -> Result<(), CpgError> {
    if i == conds.len() {
        if out.len() >= limit {
            return Err(CpgError::GraphTooLarge { limit });
        }
        out.push(FaultScenario::new(faults.iter().copied()));
        return Ok(());
    }
    let id = conds[i];
    let active = cpg.node(id).guard.evaluate(|c| cond_value[c.index()]).unwrap_or(false);
    if !active {
        // Inactive condition: no outcome.
        dfs(cpg, conds, i + 1, cond_value, faults, out, limit)?;
        return Ok(());
    }
    // No-fault branch first => the fault-free scenario comes first.
    cond_value[id.index()] = Some(false);
    dfs(cpg, conds, i + 1, cond_value, faults, out, limit)?;
    if (faults.len() as u32) < cpg.fault_budget() {
        cond_value[id.index()] = Some(true);
        faults.push(id);
        dfs(cpg, conds, i + 1, cond_value, faults, out, limit)?;
        faults.pop();
    }
    cond_value[id.index()] = None;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_ft::PolicyAssignment;
    use ftes_model::{samples, FaultModel, Mapping, Transparency};

    fn single_process_cpg(k: u32) -> FtCpg {
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_process_scenario_count() {
        // One process, k faults on a recovery chain: scenarios are "fault on
        // the first j attempts", j = 0..=k.
        for k in 0..4u32 {
            let cpg = single_process_cpg(k);
            let scenarios = enumerate_scenarios(&cpg, 1000).unwrap();
            assert_eq!(scenarios.len(), (k + 1) as usize, "k={k}");
            assert_eq!(scenarios[0], FaultScenario::fault_free());
            for s in &scenarios {
                assert!(s.is_consistent(&cpg));
            }
        }
    }

    #[test]
    fn fig5_scenarios_are_consistent_and_bounded() {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let scenarios = enumerate_scenarios(&cpg, 100_000).unwrap();
        // All distinct, consistent, within budget.
        let set: std::collections::BTreeSet<_> = scenarios.iter().cloned().collect();
        assert_eq!(set.len(), scenarios.len());
        for s in &scenarios {
            assert!(s.fault_count() <= 2);
            assert!(s.is_consistent(&cpg));
        }
        // With 4 processes and k = 2 there are more than a handful.
        assert!(scenarios.len() > 10, "got {}", scenarios.len());
    }

    #[test]
    fn active_nodes_respect_outcomes() {
        let cpg = single_process_cpg(2);
        let copies: Vec<_> = cpg.copies_of_process(ftes_model::ProcessId::new(0)).collect();
        assert_eq!(copies.len(), 3);
        // Fault-free: only the first attempt runs.
        let active = FaultScenario::fault_free().active_nodes(&cpg);
        assert!(active[copies[0].index()]);
        assert!(!active[copies[1].index()]);
        // One fault on the first attempt: attempts 1 and 2 run.
        let active = FaultScenario::new([copies[0]]).active_nodes(&cpg);
        assert!(active[copies[0].index()] && active[copies[1].index()]);
        assert!(!active[copies[2].index()]);
    }

    #[test]
    fn inconsistent_scenarios_detected() {
        let cpg = single_process_cpg(1);
        let copies: Vec<_> = cpg.copies_of_process(ftes_model::ProcessId::new(0)).collect();
        // Fault on the second attempt without one on the first: inactive.
        assert!(!FaultScenario::new([copies[1]]).is_consistent(&cpg));
        // Budget violation.
        let over = FaultScenario::new(copies.iter().copied());
        assert!(!over.is_consistent(&cpg));
    }

    #[test]
    fn limit_is_enforced() {
        let cpg = single_process_cpg(3);
        assert!(matches!(enumerate_scenarios(&cpg, 2), Err(CpgError::GraphTooLarge { limit: 2 })));
    }
}
