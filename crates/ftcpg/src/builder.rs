//! Construction of the fault-tolerant conditional process graph from an
//! application, a copy mapping, a policy assignment, the fault model and the
//! transparency requirements (paper §5.1, Fig. 5).
//!
//! # Construction model
//!
//! Processes are visited in topological order. For every process we track
//! its *output contexts*: the scenario classes (guards) under which its
//! output becomes available, together with the FT-CPG node producing it.
//!
//! * A process's **arrival contexts** are the consistent conjunctions of its
//!   predecessors' message output contexts, pruned to the fault budget `k`.
//! * In each arrival context, each copy (original + replicas) unrolls into a
//!   **recovery chain** of execution attempts `Pi^m`. An attempt is
//!   *conditional* (produces condition `F_{Pi^m}`) while the remaining
//!   budget `k − faults(guard)` is positive; its fault edge leads to the
//!   next attempt while the copy still has recoveries (`attempt ≤ R`), and
//!   is a dead end otherwise (the copy dies; only replicas can reach this —
//!   validated single-copy policies exhaust the budget first).
//! * Attempt durations follow the Fig. 1 algebra: the first attempt runs the
//!   fault-free time `E(n) = C + n(χ+α)`; each recovery runs
//!   `µ + ⌈C/n⌉ + α`, with the final (regular) recovery dropping `α`.
//! * **Frozen processes** get a synchronization node joining all arrival
//!   contexts; their chain then starts from the unconditional guard with the
//!   full budget (matching `P3^1..P3^3` in Fig. 5b).
//! * **Frozen messages** get a synchronization node joining all producer
//!   outcomes.
//! * **Replicated processes** get a `ReplicaJoin` per arrival context;
//!   replica fault conditions do not escape to downstream guards (the
//!   scheduler bounds the join time adversarially), which keeps replication
//!   a fault-containment boundary, consistent with §3.2/§3.3.

use crate::{
    CopyMapping, CpgEdge, CpgError, CpgNode, CpgNodeId, CpgNodeKind, FtCpg, Guard, Literal,
    Location,
};
use ftes_ft::{CopyPlan, PolicyAssignment, RecoveryScheme};
use ftes_model::{Application, FaultModel, MessageId, ProcessId, Time, Transparency};

/// Tunables for FT-CPG construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Hard cap on the number of FT-CPG nodes; construction fails with
    /// [`CpgError::GraphTooLarge`] beyond it. The exact conditional
    /// scheduler is meant for small/medium instances — large instances use
    /// the estimator in `ftes-sched`.
    pub node_limit: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { node_limit: 100_000 }
    }
}

/// Builds the FT-CPG for a fully decided system configuration.
///
/// # Errors
///
/// Returns [`CpgError`] if the policy assignment cannot tolerate `k` faults,
/// the transparency declarations are out of range, or the graph exceeds
/// [`BuildConfig::node_limit`].
///
/// # Examples
///
/// ```
/// use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
/// use ftes_ft::PolicyAssignment;
/// use ftes_model::{samples, FaultModel, Mapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch, transparency) = samples::fig5();
/// let mapping = Mapping::new(&app, &arch, samples::fig5_mapping())?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let cpg = build_ftcpg(
///     &app,
///     &policies,
///     &copies,
///     FaultModel::new(2),
///     &transparency,
///     BuildConfig::default(),
/// )?;
/// assert!(cpg.node_count() > app.process_count());
/// cpg.check_invariants().map_err(std::io::Error::other)?;
/// # Ok(())
/// # }
/// ```
pub fn build_ftcpg(
    app: &Application,
    policies: &PolicyAssignment,
    copies: &CopyMapping,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: BuildConfig,
) -> Result<FtCpg, CpgError> {
    policies.validate(fault_model.k())?;
    transparency.validate(app)?;
    Builder {
        app,
        policies,
        copies,
        k: fault_model.k(),
        transparency,
        config,
        graph: FtCpg { fault_budget: fault_model.k(), ..FtCpg::default() },
        process_variant: vec![0; app.process_count()],
        message_variant: vec![0; app.message_count()],
    }
    .run()
}

/// One "output becomes available" event: scenario guard, producing node and
/// the literal to place on edges leaving that node (the success outcome of a
/// conditional producer).
#[derive(Debug, Clone)]
struct OutputCtx {
    guard: Guard,
    source: CpgNodeId,
    edge_cond: Option<Literal>,
}

/// An arrival context of a process: the guard under which all inputs are
/// available and the message nodes providing them.
#[derive(Debug, Clone)]
struct ArrivalCtx {
    guard: Guard,
    sources: Vec<CpgNodeId>,
}

struct ChainResult {
    attempt_nodes: Vec<CpgNodeId>,
    outcomes: Vec<OutputCtx>,
}

struct Builder<'a> {
    app: &'a Application,
    policies: &'a PolicyAssignment,
    copies: &'a CopyMapping,
    k: u32,
    transparency: &'a Transparency,
    config: BuildConfig,
    graph: FtCpg,
    process_variant: Vec<u32>,
    message_variant: Vec<u32>,
}

impl Builder<'_> {
    fn run(mut self) -> Result<FtCpg, CpgError> {
        let mut msg_outputs: Vec<Vec<OutputCtx>> = vec![Vec::new(); self.app.message_count()];
        for &pid in self.app.topological_order() {
            let arrivals = self.arrival_contexts(pid, &msg_outputs)?;
            let outputs = self.build_process(pid, arrivals)?;
            for &(succ, mid) in self.app.successors(pid) {
                msg_outputs[mid.index()] = self.build_message(pid, succ, mid, &outputs)?;
            }
        }
        debug_assert_eq!(self.graph.check_invariants(), Ok(()));
        Ok(self.graph)
    }

    fn arrival_contexts(
        &mut self,
        pid: ProcessId,
        msg_outputs: &[Vec<OutputCtx>],
    ) -> Result<Vec<ArrivalCtx>, CpgError> {
        let mut arrivals = vec![ArrivalCtx { guard: Guard::always(), sources: Vec::new() }];
        for &(_, mid) in self.app.predecessors(pid) {
            let mut next = Vec::new();
            for a in &arrivals {
                for o in &msg_outputs[mid.index()] {
                    if let Some(g) = a.guard.and(&o.guard) {
                        if g.fault_count() <= self.k {
                            let mut sources = a.sources.clone();
                            sources.push(o.source);
                            next.push(ArrivalCtx { guard: g, sources });
                        }
                    }
                }
            }
            arrivals = next;
        }
        Ok(arrivals)
    }

    fn build_process(
        &mut self,
        pid: ProcessId,
        mut arrivals: Vec<ArrivalCtx>,
    ) -> Result<Vec<OutputCtx>, CpgError> {
        // Frozen process: all arrival contexts feed one synchronization node
        // and the chain restarts from the unconditional guard (Fig. 5b, P3).
        if self.transparency.is_process_frozen(pid) {
            let name = format!("{}^S", self.app.process(pid).name());
            let sync = self.add_node(
                CpgNodeKind::ProcessSync { process: pid },
                name,
                Guard::always(),
                Time::ZERO,
                Location::None,
                false,
            )?;
            for a in &arrivals {
                for &src in &a.sources {
                    let cond = self.success_literal(src);
                    self.add_edge(src, sync, cond);
                }
            }
            arrivals = vec![ArrivalCtx { guard: Guard::always(), sources: vec![sync] }];
        }

        let policy = self.policies.policy(pid).clone();
        let mut outputs = Vec::new();
        let mut join_variant = 0u32;
        for arrival in arrivals {
            if policy.copies().len() == 1 {
                let chain = self.build_chain(pid, 0, policy.copies()[0], &arrival)?;
                outputs.extend(chain.outcomes);
            } else {
                let mut chains = Vec::new();
                let mut all_outcomes = Vec::new();
                for (j, &plan) in policy.copies().iter().enumerate() {
                    let chain = self.build_chain(pid, j as u32, plan, &arrival)?;
                    chains.push(chain.attempt_nodes);
                    all_outcomes.extend(chain.outcomes);
                }
                join_variant += 1;
                let name = format!("{}^J{}", self.app.process(pid).name(), join_variant);
                let join = self.add_node(
                    CpgNodeKind::ReplicaJoin { process: pid, variant: join_variant },
                    name,
                    arrival.guard.clone(),
                    Time::ZERO,
                    Location::None,
                    false,
                )?;
                for o in &all_outcomes {
                    self.add_edge(o.source, join, o.edge_cond);
                }
                self.graph.joins.push((join, chains));
                outputs.push(OutputCtx { guard: arrival.guard, source: join, edge_cond: None });
            }
        }
        Ok(outputs)
    }

    /// Unrolls the recovery chain of one copy in one arrival context.
    fn build_chain(
        &mut self,
        pid: ProcessId,
        copy: u32,
        plan: CopyPlan,
        arrival: &ArrivalCtx,
    ) -> Result<ChainResult, CpgError> {
        let proc = self.app.process(pid);
        let exec_node = self.copies.node_of(pid, copy as usize);
        let wcet =
            proc.wcet_on(exec_node).ok_or(CpgError::InfeasibleCopyMapping(pid, exec_node))?;
        let scheme = RecoveryScheme::for_process(proc, wcet)?;
        let n = plan.checkpoints;
        let seg = scheme.segment_length(n);

        let mut guard = arrival.guard.clone();
        let mut attempt_nodes = Vec::new();
        let mut outcomes = Vec::new();
        let mut prev: Option<CpgNodeId> = None;
        let mut attempt = 1u32;
        let replicated = self.policies.policy(pid).copies().len() > 1;
        loop {
            let budget = self.k - guard.fault_count();
            let at_risk = budget > 0;
            let can_recover = attempt <= plan.recoveries;
            let duration = if attempt == 1 {
                scheme.fault_free_time(n)
            } else if at_risk {
                scheme.mu() + seg + scheme.alpha()
            } else {
                // Final possible recovery: its error detection can never
                // fire (budget exhausted), per the Fig. 1c accounting.
                scheme.mu() + seg
            };
            self.process_variant[pid.index()] += 1;
            let variant = self.process_variant[pid.index()];
            let name = if replicated {
                format!("{}({})^{}", proc.name(), copy + 1, attempt)
            } else {
                format!("{}^{}", proc.name(), variant)
            };
            let node = self.add_node(
                CpgNodeKind::ProcessCopy { process: pid, copy, attempt, variant },
                name,
                guard.clone(),
                duration,
                Location::Node(exec_node),
                at_risk,
            )?;
            attempt_nodes.push(node);
            match prev {
                None => {
                    for &src in &arrival.sources {
                        let cond = self.success_literal(src);
                        self.add_edge(src, node, cond);
                    }
                }
                Some(p) => self.add_edge(p, node, Some(Literal::fault(p))),
            }
            if at_risk {
                let success = guard
                    .and_literal(Literal::no_fault(node))
                    .expect("fresh condition cannot contradict");
                outcomes.push(OutputCtx {
                    guard: success,
                    source: node,
                    edge_cond: Some(Literal::no_fault(node)),
                });
                if can_recover {
                    guard = guard
                        .and_literal(Literal::fault(node))
                        .expect("fresh condition cannot contradict");
                    prev = Some(node);
                    attempt += 1;
                    continue;
                }
                // Dead end: the copy dies on a further fault. Only replicas
                // reach this (validated single-copy policies have R >= k).
                debug_assert!(replicated, "single-copy chain must exhaust the budget");
                break;
            }
            outcomes.push(OutputCtx { guard: guard.clone(), source: node, edge_cond: None });
            break;
        }
        Ok(ChainResult { attempt_nodes, outcomes })
    }

    fn build_message(
        &mut self,
        pid: ProcessId,
        succ: ProcessId,
        mid: MessageId,
        outputs: &[OutputCtx],
    ) -> Result<Vec<OutputCtx>, CpgError> {
        let msg = self.app.message(mid);
        // A message stays node-internal only when both endpoints are
        // un-replicated and share a node; any replica involvement forces the
        // bus (conservative, §4).
        let single_ends = self.policies.policy(pid).copies().len() == 1
            && self.policies.policy(succ).copies().len() == 1;
        let internal = single_ends && self.copies.node_of(pid, 0) == self.copies.node_of(succ, 0);
        let (duration, location) = if internal {
            (Time::ZERO, Location::None)
        } else {
            (msg.transmission(), Location::Bus)
        };

        if self.transparency.is_message_frozen(mid) {
            let name = format!("{}^S", msg.name());
            let sync = self.add_node(
                CpgNodeKind::MessageSync { message: mid },
                name,
                Guard::always(),
                duration,
                location,
                false,
            )?;
            for o in outputs {
                self.add_edge(o.source, sync, o.edge_cond);
            }
            return Ok(vec![OutputCtx { guard: Guard::always(), source: sync, edge_cond: None }]);
        }

        let mut msg_ctxs = Vec::with_capacity(outputs.len());
        for o in outputs {
            self.message_variant[mid.index()] += 1;
            let variant = self.message_variant[mid.index()];
            let name = format!("{}^{}", msg.name(), variant);
            let node = self.add_node(
                CpgNodeKind::MessageCopy { message: mid, variant },
                name,
                o.guard.clone(),
                duration,
                location,
                false,
            )?;
            self.add_edge(o.source, node, o.edge_cond);
            msg_ctxs.push(OutputCtx { guard: o.guard.clone(), source: node, edge_cond: None });
        }
        Ok(msg_ctxs)
    }

    /// The success literal of a conditional source (for edges leaving it on
    /// the no-fault branch); `None` for regular sources.
    fn success_literal(&self, src: CpgNodeId) -> Option<Literal> {
        if self.graph.node(src).conditional {
            Some(Literal::no_fault(src))
        } else {
            None
        }
    }

    fn add_node(
        &mut self,
        kind: CpgNodeKind,
        name: String,
        guard: Guard,
        duration: Time,
        location: Location,
        conditional: bool,
    ) -> Result<CpgNodeId, CpgError> {
        if self.graph.nodes.len() >= self.config.node_limit {
            return Err(CpgError::GraphTooLarge { limit: self.config.node_limit });
        }
        let id = CpgNodeId::new(self.graph.nodes.len());
        self.graph.nodes.push(CpgNode { kind, guard, duration, location, conditional });
        self.graph.names.push(name);
        self.graph.out_edges.push(Vec::new());
        self.graph.in_edges.push(Vec::new());
        Ok(id)
    }

    fn add_edge(&mut self, from: CpgNodeId, to: CpgNodeId, condition: Option<Literal>) {
        let idx = self.graph.edges.len();
        self.graph.edges.push(CpgEdge { from, to, condition });
        self.graph.out_edges[from.index()].push(idx);
        self.graph.in_edges[to.index()].push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::Policy;
    use ftes_model::{samples, Architecture, Mapping, NodeId};

    fn fig5_cpg(k: u32) -> (Application, FtCpg) {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        (app, cpg)
    }

    #[test]
    fn fig5_copy_counts_match_paper() {
        let (app, cpg) = fig5_cpg(2);
        cpg.check_invariants().unwrap();
        let copies = |i: usize| cpg.copies_of_process(ProcessId::new(i)).count();
        // Fig. 5b: P1 has 3 copies; P2 (internal edge from P1) has 6;
        // P3 (frozen) has 3; P4 (fed by bus message m1 from P1) has 6.
        assert_eq!(copies(0), 3, "P1 copies");
        assert_eq!(copies(1), 6, "P2 copies");
        assert_eq!(copies(2), 3, "P3 copies (frozen resets contexts)");
        assert_eq!(copies(3), 6, "P4 copies");
        // m1 (P1 -> P4): one copy per P1 outcome.
        assert_eq!(cpg.copies_of_message(ftes_model::MessageId::new(1)).count(), 3);
        // m2, m3 frozen: one sync node each.
        assert_eq!(cpg.copies_of_message(ftes_model::MessageId::new(2)).count(), 1);
        assert_eq!(cpg.copies_of_message(ftes_model::MessageId::new(3)).count(), 1);
        // Two sync-message nodes + one sync-process node.
        assert_eq!(cpg.sync_nodes().count(), 3);
        let _ = app;
    }

    #[test]
    fn fig5_k1_is_smaller() {
        let (_, cpg1) = fig5_cpg(1);
        let (_, cpg2) = fig5_cpg(2);
        assert!(cpg1.node_count() < cpg2.node_count());
        cpg1.check_invariants().unwrap();
        // k = 1: P1 has 2 copies; P2 contexts: !F11 (budget 1 -> 2 copies),
        // F11 (budget 0 -> 1 copy) = 3 copies.
        assert_eq!(cpg1.copies_of_process(ProcessId::new(0)).count(), 2);
        assert_eq!(cpg1.copies_of_process(ProcessId::new(1)).count(), 3);
    }

    #[test]
    fn fault_free_graph_has_no_conditions() {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 0);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::fault_free(),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        assert_eq!(cpg.conditional_nodes().count(), 0);
        // One copy per process, one copy per message.
        assert_eq!(
            cpg.iter().filter(|(_, n)| matches!(n.kind, CpgNodeKind::ProcessCopy { .. })).count(),
            app.process_count()
        );
        cpg.check_invariants().unwrap();
    }

    #[test]
    fn durations_follow_fig1_algebra() {
        // Single process, k = 2, re-execution: attempts E(1), µ+C+α, µ+C.
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let durs: Vec<i64> = cpg
            .copies_of_process(ProcessId::new(0))
            .map(|id| cpg.node(id).duration.units())
            .collect();
        // E(0) = 60 + 10 = 70; recovery = 10 + 60 + 10 = 80; final = 70.
        assert_eq!(durs, vec![70, 80, 70]);
        // Worst-case sum equals W(1, 2) from the algebra.
        let scheme =
            RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5)).unwrap();
        assert_eq!(Time::new(durs.iter().sum()), scheme.worst_case_time(0, 2));
    }

    #[test]
    fn replication_produces_join_nodes() {
        let (app, arch) = samples::fig1_process(3);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
        policies.set(ProcessId::new(0), Policy::replication(2));
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        assert_eq!(cpg.joins().len(), 1);
        let (join, chains) = &cpg.joins()[0];
        assert_eq!(chains.len(), 3, "three replicas");
        for c in chains {
            assert_eq!(c.len(), 1, "plain replicas have single-attempt chains");
        }
        // The join guard is unconditional and replica conditions do not
        // escape downstream.
        assert!(cpg.node(*join).guard.is_always());
        // Replicas are conditional (they can be hit while budget remains).
        for c in chains {
            assert!(cpg.node(c[0]).conditional);
        }
        cpg.check_invariants().unwrap();
    }

    #[test]
    fn replicated_checkpointed_combined_policy() {
        let (app, arch) = samples::fig1_process(2);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
        // Fig. 4c: two copies, R = {0, 1}, second copy checkpointed twice.
        policies.set(
            ProcessId::new(0),
            Policy::from_copies(vec![
                ftes_ft::CopyPlan::plain(),
                ftes_ft::CopyPlan::checkpointed(1, 2),
            ])
            .unwrap(),
        );
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let (_, chains) = &cpg.joins()[0];
        assert_eq!(chains[0].len(), 1, "plain copy");
        assert_eq!(chains[1].len(), 2, "checkpointed copy recovers once");
        cpg.check_invariants().unwrap();
    }

    #[test]
    fn node_limit_is_enforced() {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let err = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig { node_limit: 3 },
        )
        .unwrap_err();
        assert_eq!(err, CpgError::GraphTooLarge { limit: 3 });
    }

    #[test]
    fn insufficient_policy_rejected() {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let err = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(3),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CpgError::Ft(_)));
    }

    #[test]
    fn guards_on_alternative_paths_are_disjoint() {
        let (_, cpg) = fig5_cpg(2);
        // For every conditional node, children on the fault branch exclude
        // children on the no-fault branch.
        for cond in cpg.conditional_nodes() {
            let fault_children: Vec<_> = cpg
                .outgoing(cond)
                .filter(|e| e.condition == Some(Literal::fault(cond)))
                .map(|e| e.to)
                .collect();
            let ok_children: Vec<_> = cpg
                .outgoing(cond)
                .filter(|e| e.condition == Some(Literal::no_fault(cond)))
                .map(|e| e.to)
                .collect();
            for &f in &fault_children {
                for &s in &ok_children {
                    let (gf, gs) = (&cpg.node(f).guard, &cpg.node(s).guard);
                    // Sync nodes absorb guards; skip unconditional children.
                    if !gf.is_always() && !gs.is_always() {
                        assert!(
                            gf.excludes(gs),
                            "fault/no-fault children of {} must be disjoint",
                            cpg.name(cond)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn internal_vs_bus_messages() {
        let (app, cpg) = fig5_cpg(2);
        let _ = app;
        // m0 (P1 -> P2, both on N1) is internal: zero duration, no location.
        for id in cpg.copies_of_message(ftes_model::MessageId::new(0)) {
            assert_eq!(cpg.node(id).duration, Time::ZERO);
            assert_eq!(cpg.node(id).location, Location::None);
        }
        // m1 (P1 on N1 -> P4 on N2) rides the bus.
        for id in cpg.copies_of_message(ftes_model::MessageId::new(1)) {
            assert_eq!(cpg.node(id).duration, Time::new(1));
            assert_eq!(cpg.node(id).location, Location::Bus);
        }
    }

    #[test]
    fn fixed_mapping_feasibility_checked() {
        // Build a custom mapping that sends P3 (restricted to N1) to N1 but
        // asserts the error path by corrupting the copy mapping arity via
        // the public API is impossible; instead check infeasible copy error
        // through build_chain by a handcrafted mapping on fig3.
        let (app, arch) = samples::fig3();
        let assign =
            vec![NodeId::new(0), NodeId::new(0), NodeId::new(0), NodeId::new(0), NodeId::new(0)];
        let mapping = Mapping::new(&app, &arch, assign).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(1),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        cpg.check_invariants().unwrap();
        let _ = Architecture::homogeneous(2).unwrap();
    }
}
