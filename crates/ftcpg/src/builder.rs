//! Construction of the fault-tolerant conditional process graph from an
//! application, a copy mapping, a policy assignment, the fault model and the
//! transparency requirements (paper §5.1, Fig. 5).
//!
//! # Construction model
//!
//! Processes are visited in topological order. For every process we track
//! its *output contexts*: the scenario classes (guards) under which its
//! output becomes available, together with the FT-CPG node producing it.
//!
//! * A process's **arrival contexts** are the consistent conjunctions of its
//!   predecessors' message output contexts, pruned to the fault budget `k`.
//! * In each arrival context, each copy (original + replicas) unrolls into a
//!   **recovery chain** of execution attempts `Pi^m`. An attempt is
//!   *conditional* (produces condition `F_{Pi^m}`) while the remaining
//!   budget `k − faults(guard)` is positive; its fault edge leads to the
//!   next attempt while the copy still has recoveries (`attempt ≤ R`), and
//!   is a dead end otherwise (the copy dies; only replicas can reach this —
//!   validated single-copy policies exhaust the budget first).
//! * Attempt durations follow the Fig. 1 algebra: the first attempt runs the
//!   fault-free time `E(n) = C + n(χ+α)`; each recovery runs
//!   `µ + ⌈C/n⌉ + α`, with the final (regular) recovery dropping `α`.
//! * **Frozen processes** get a synchronization node joining all arrival
//!   contexts; their chain then starts from the unconditional guard with the
//!   full budget (matching `P3^1..P3^3` in Fig. 5b).
//! * **Frozen messages** get a synchronization node joining all producer
//!   outcomes.
//! * **Replicated processes** get a `ReplicaJoin` per arrival context;
//!   replica fault conditions do not escape to downstream guards (the
//!   scheduler bounds the join time adversarially), which keeps replication
//!   a fault-containment boundary, consistent with §3.2/§3.3.

use crate::{
    CopyMapping, CpgEdge, CpgError, CpgNode, CpgNodeId, CpgNodeKind, FtCpg, Guard, Literal,
    Location,
};
use ftes_ft::{CopyPlan, PolicyAssignment, RecoveryScheme};
use ftes_model::{Application, FaultModel, MessageId, ProcessId, Time, Transparency};

/// Tunables for FT-CPG construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Hard cap on the number of FT-CPG nodes; construction fails with
    /// [`CpgError::GraphTooLarge`] beyond it. The exact conditional
    /// scheduler is meant for small/medium instances — large instances use
    /// the estimator in `ftes-sched`.
    pub node_limit: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { node_limit: 100_000 }
    }
}

/// Builds the FT-CPG for a fully decided system configuration.
///
/// # Errors
///
/// Returns [`CpgError`] if the policy assignment cannot tolerate `k` faults,
/// the transparency declarations are out of range, or the graph exceeds
/// [`BuildConfig::node_limit`].
///
/// # Examples
///
/// ```
/// use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
/// use ftes_ft::PolicyAssignment;
/// use ftes_model::{samples, FaultModel, Mapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch, transparency) = samples::fig5();
/// let mapping = Mapping::new(&app, &arch, samples::fig5_mapping())?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let cpg = build_ftcpg(
///     &app,
///     &policies,
///     &copies,
///     FaultModel::new(2),
///     &transparency,
///     BuildConfig::default(),
/// )?;
/// assert!(cpg.node_count() > app.process_count());
/// cpg.check_invariants().map_err(std::io::Error::other)?;
/// # Ok(())
/// # }
/// ```
pub fn build_ftcpg(
    app: &Application,
    policies: &PolicyAssignment,
    copies: &CopyMapping,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: BuildConfig,
) -> Result<FtCpg, CpgError> {
    policies.validate(fault_model.k())?;
    transparency.validate(app)?;
    Ok(fresh_builder(app, policies, copies, fault_model.k(), transparency, config).run(0)?.graph)
}

/// Builds the FT-CPG like [`build_ftcpg`] and additionally returns a
/// [`CpgAnchor`]: a reusable snapshot of the construction that lets later
/// configurations differing in only a few processes rebuild incrementally
/// via [`CpgAnchor::rebuild`].
///
/// # Errors
///
/// Exactly those of [`build_ftcpg`].
pub fn build_ftcpg_anchored(
    app: &Application,
    policies: &PolicyAssignment,
    copies: &CopyMapping,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: BuildConfig,
) -> Result<(FtCpg, CpgAnchor), CpgError> {
    policies.validate(fault_model.k())?;
    transparency.validate(app)?;
    let parts =
        fresh_builder(app, policies, copies, fault_model.k(), transparency, config).run(0)?;
    let anchor = CpgAnchor {
        graph: parts.graph.clone(),
        copies: copies.clone(),
        policies: policies.clone(),
        checkpoints: parts.checkpoints,
        msg_outputs: parts.msg_outputs,
        process_variant: parts.process_variant,
        message_variant: parts.message_variant,
    };
    Ok((parts.graph, anchor))
}

fn fresh_builder<'a>(
    app: &'a Application,
    policies: &'a PolicyAssignment,
    copies: &'a CopyMapping,
    k: u32,
    transparency: &'a Transparency,
    config: BuildConfig,
) -> Builder<'a> {
    Builder {
        app,
        policies,
        copies,
        k,
        transparency,
        config,
        graph: FtCpg { fault_budget: k, ..FtCpg::default() },
        process_variant: vec![0; app.process_count()],
        message_variant: vec![0; app.message_count()],
        msg_outputs: vec![Vec::new(); app.message_count()],
        checkpoints: Vec::with_capacity(app.process_count()),
    }
}

/// Reuse accounting of one [`CpgAnchor::rebuild`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildStats {
    /// Topological positions (processes) of the application.
    pub total_positions: usize,
    /// Positions restored from the anchor instead of being rebuilt.
    pub reused_positions: usize,
    /// FT-CPG nodes restored from the anchor's shared prefix.
    pub reused_nodes: usize,
}

/// Per-topological-position construction checkpoint: the graph extents
/// *before* that position's build step ran.
#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    nodes: usize,
    edges: usize,
    joins: usize,
}

/// A reusable anchor of one FT-CPG construction: the built graph plus the
/// builder state at every topological position, so a **delta**
/// configuration — one differing from the anchored `(copies, policies)` in
/// a few processes — can be rebuilt by restoring the shared prefix and
/// re-running construction only from the first position a change can
/// reach.
///
/// Dirtiness propagates *backwards* one hop: a message's construction
/// (during its producer's step) reads the **successor's** policy and
/// placement to decide internal-vs-bus routing, so the first rebuilt
/// position is the minimum over every changed process `q` of `pos(q)` and
/// the positions of `q`'s predecessors. Everything before that position is
/// bit-identical to the anchor by construction and is restored by
/// truncating clones (out-edge lists are cut at the checkpoint's edge
/// count; in-edges of prefix nodes are complete because edges always
/// target the node created in the same step).
///
/// The rebuild contract is **bit-for-bit equality with
/// [`build_ftcpg`]** — graphs *and* errors — for the same `(app, fault
/// model, transparency, config)` the anchor was built with;
/// `tests/certifier_equality.rs` property-tests the contract end to end.
#[derive(Debug, Clone)]
pub struct CpgAnchor {
    graph: FtCpg,
    copies: CopyMapping,
    policies: PolicyAssignment,
    checkpoints: Vec<Checkpoint>,
    msg_outputs: Vec<Vec<OutputCtx>>,
    process_variant: Vec<u32>,
    message_variant: Vec<u32>,
}

impl CpgAnchor {
    /// The anchored graph (the FT-CPG of the anchored configuration).
    pub fn graph(&self) -> &FtCpg {
        &self.graph
    }

    /// Rebuilds the FT-CPG for a delta configuration, reusing the prefix
    /// shared with the anchored one, and re-anchors on the result.
    ///
    /// `app`, `fault_model`, `transparency` and `config` must be the ones
    /// the anchor was built with — only `(copies, policies)` may differ
    /// (the certifier's per-instance discipline). On error the anchor is
    /// left unchanged and still valid.
    ///
    /// # Errors
    ///
    /// Exactly those of [`build_ftcpg`] on the same inputs.
    pub fn rebuild(
        &mut self,
        app: &Application,
        policies: &PolicyAssignment,
        copies: &CopyMapping,
        fault_model: FaultModel,
        transparency: &Transparency,
        config: BuildConfig,
    ) -> Result<(FtCpg, RebuildStats), CpgError> {
        policies.validate(fault_model.k())?;
        transparency.validate(app)?;
        let order = app.topological_order();
        let n = order.len();
        let mut pos = vec![0usize; app.process_count()];
        for (i, &pid) in order.iter().enumerate() {
            pos[pid.index()] = i;
        }
        // First topological position any change can reach: a dirty process
        // itself, or a predecessor of one (whose message-build step reads
        // the dirty process's policy/placement).
        let mut first = n;
        for (pid, _) in app.processes() {
            let clean = copies.copies_of(pid) == self.copies.copies_of(pid)
                && policies.policy(pid) == self.policies.policy(pid);
            if !clean {
                first = first.min(pos[pid.index()]);
                for &(p, _) in app.predecessors(pid) {
                    first = first.min(pos[p.index()]);
                }
            }
        }
        if first == n {
            // The configuration is the anchored one.
            let stats = RebuildStats {
                total_positions: n,
                reused_positions: n,
                reused_nodes: self.graph.node_count(),
            };
            return Ok((self.graph.clone(), stats));
        }
        let cp = self.checkpoints[first];
        let cut_edges = |lists: &[Vec<usize>]| -> Vec<Vec<usize>> {
            lists
                .iter()
                .map(|l| {
                    // Edge indices per node are appended in increasing
                    // order; the checkpoint's edge count is the cut.
                    let keep = l.partition_point(|&e| e < cp.edges);
                    l[..keep].to_vec()
                })
                .collect()
        };
        let graph = FtCpg {
            nodes: self.graph.nodes[..cp.nodes].to_vec(),
            edges: self.graph.edges[..cp.edges].to_vec(),
            out_edges: cut_edges(&self.graph.out_edges[..cp.nodes]),
            in_edges: cut_edges(&self.graph.in_edges[..cp.nodes]),
            names: self.graph.names[..cp.nodes].to_vec(),
            joins: self.graph.joins[..cp.joins].to_vec(),
            fault_budget: fault_model.k(),
        };
        // Variant counters and message outputs are touched only during
        // their owner's (the producer's, for messages) step: prefix values
        // are final, dirty-region values restart from scratch. Dirty-region
        // message outputs are assigned before any consumer reads them, so
        // leaving them empty is safe.
        let mut process_variant = vec![0u32; app.process_count()];
        let mut message_variant = vec![0u32; app.message_count()];
        let mut msg_outputs: Vec<Vec<OutputCtx>> = vec![Vec::new(); app.message_count()];
        for (pid, _) in app.processes() {
            if pos[pid.index()] < first {
                process_variant[pid.index()] = self.process_variant[pid.index()];
                for &(_, mid) in app.successors(pid) {
                    message_variant[mid.index()] = self.message_variant[mid.index()];
                    msg_outputs[mid.index()] = self.msg_outputs[mid.index()].clone();
                }
            }
        }
        let parts = Builder {
            app,
            policies,
            copies,
            k: fault_model.k(),
            transparency,
            config,
            graph,
            process_variant,
            message_variant,
            msg_outputs,
            checkpoints: self.checkpoints[..first].to_vec(),
        }
        .run(first)?;
        let stats =
            RebuildStats { total_positions: n, reused_positions: first, reused_nodes: cp.nodes };
        self.graph = parts.graph.clone();
        self.copies = copies.clone();
        self.policies = policies.clone();
        self.checkpoints = parts.checkpoints;
        self.msg_outputs = parts.msg_outputs;
        self.process_variant = parts.process_variant;
        self.message_variant = parts.message_variant;
        Ok((parts.graph, stats))
    }
}

/// One "output becomes available" event: scenario guard, producing node and
/// the literal to place on edges leaving that node (the success outcome of a
/// conditional producer).
#[derive(Debug, Clone)]
struct OutputCtx {
    guard: Guard,
    source: CpgNodeId,
    edge_cond: Option<Literal>,
}

/// An arrival context of a process: the guard under which all inputs are
/// available and the message nodes providing them.
#[derive(Debug, Clone)]
struct ArrivalCtx {
    guard: Guard,
    sources: Vec<CpgNodeId>,
}

struct ChainResult {
    attempt_nodes: Vec<CpgNodeId>,
    outcomes: Vec<OutputCtx>,
}

struct Builder<'a> {
    app: &'a Application,
    policies: &'a PolicyAssignment,
    copies: &'a CopyMapping,
    k: u32,
    transparency: &'a Transparency,
    config: BuildConfig,
    graph: FtCpg,
    process_variant: Vec<u32>,
    message_variant: Vec<u32>,
    msg_outputs: Vec<Vec<OutputCtx>>,
    checkpoints: Vec<Checkpoint>,
}

/// Everything a finished construction run produces: the graph plus the
/// per-position state a [`CpgAnchor`] snapshots.
struct BuiltParts {
    graph: FtCpg,
    checkpoints: Vec<Checkpoint>,
    msg_outputs: Vec<Vec<OutputCtx>>,
    process_variant: Vec<u32>,
    message_variant: Vec<u32>,
}

impl Builder<'_> {
    fn run(mut self, start: usize) -> Result<BuiltParts, CpgError> {
        let order = self.app.topological_order();
        for &pid in &order[start..] {
            self.checkpoints.push(Checkpoint {
                nodes: self.graph.nodes.len(),
                edges: self.graph.edges.len(),
                joins: self.graph.joins.len(),
            });
            let arrivals = self.arrival_contexts(pid)?;
            let outputs = self.build_process(pid, arrivals)?;
            for &(succ, mid) in self.app.successors(pid) {
                self.msg_outputs[mid.index()] = self.build_message(pid, succ, mid, &outputs)?;
            }
        }
        debug_assert_eq!(self.graph.check_invariants(), Ok(()));
        Ok(BuiltParts {
            graph: self.graph,
            checkpoints: self.checkpoints,
            msg_outputs: self.msg_outputs,
            process_variant: self.process_variant,
            message_variant: self.message_variant,
        })
    }

    fn arrival_contexts(&self, pid: ProcessId) -> Result<Vec<ArrivalCtx>, CpgError> {
        let mut arrivals = vec![ArrivalCtx { guard: Guard::always(), sources: Vec::new() }];
        for &(_, mid) in self.app.predecessors(pid) {
            let mut next = Vec::new();
            for a in &arrivals {
                for o in &self.msg_outputs[mid.index()] {
                    if let Some(g) = a.guard.and(&o.guard) {
                        if g.fault_count() <= self.k {
                            let mut sources = a.sources.clone();
                            sources.push(o.source);
                            next.push(ArrivalCtx { guard: g, sources });
                        }
                    }
                }
            }
            arrivals = next;
        }
        Ok(arrivals)
    }

    fn build_process(
        &mut self,
        pid: ProcessId,
        mut arrivals: Vec<ArrivalCtx>,
    ) -> Result<Vec<OutputCtx>, CpgError> {
        // Frozen process: all arrival contexts feed one synchronization node
        // and the chain restarts from the unconditional guard (Fig. 5b, P3).
        if self.transparency.is_process_frozen(pid) {
            let name = format!("{}^S", self.app.process(pid).name());
            let sync = self.add_node(
                CpgNodeKind::ProcessSync { process: pid },
                name,
                Guard::always(),
                Time::ZERO,
                Location::None,
                false,
            )?;
            for a in &arrivals {
                for &src in &a.sources {
                    let cond = self.success_literal(src);
                    self.add_edge(src, sync, cond);
                }
            }
            arrivals = vec![ArrivalCtx { guard: Guard::always(), sources: vec![sync] }];
        }

        let policy = self.policies.policy(pid).clone();
        let mut outputs = Vec::new();
        let mut join_variant = 0u32;
        for arrival in arrivals {
            if policy.copies().len() == 1 {
                let chain = self.build_chain(pid, 0, policy.copies()[0], &arrival)?;
                outputs.extend(chain.outcomes);
            } else {
                let mut chains = Vec::new();
                let mut all_outcomes = Vec::new();
                for (j, &plan) in policy.copies().iter().enumerate() {
                    let chain = self.build_chain(pid, j as u32, plan, &arrival)?;
                    chains.push(chain.attempt_nodes);
                    all_outcomes.extend(chain.outcomes);
                }
                join_variant += 1;
                let name = format!("{}^J{}", self.app.process(pid).name(), join_variant);
                let join = self.add_node(
                    CpgNodeKind::ReplicaJoin { process: pid, variant: join_variant },
                    name,
                    arrival.guard.clone(),
                    Time::ZERO,
                    Location::None,
                    false,
                )?;
                for o in &all_outcomes {
                    self.add_edge(o.source, join, o.edge_cond);
                }
                self.graph.joins.push((join, chains));
                outputs.push(OutputCtx { guard: arrival.guard, source: join, edge_cond: None });
            }
        }
        Ok(outputs)
    }

    /// Unrolls the recovery chain of one copy in one arrival context.
    fn build_chain(
        &mut self,
        pid: ProcessId,
        copy: u32,
        plan: CopyPlan,
        arrival: &ArrivalCtx,
    ) -> Result<ChainResult, CpgError> {
        let proc = self.app.process(pid);
        let exec_node = self.copies.node_of(pid, copy as usize);
        let wcet =
            proc.wcet_on(exec_node).ok_or(CpgError::InfeasibleCopyMapping(pid, exec_node))?;
        let scheme = RecoveryScheme::for_process(proc, wcet)?;
        let n = plan.checkpoints;
        let seg = scheme.segment_length(n);

        let mut guard = arrival.guard.clone();
        let mut attempt_nodes = Vec::new();
        let mut outcomes = Vec::new();
        let mut prev: Option<CpgNodeId> = None;
        let mut attempt = 1u32;
        let replicated = self.policies.policy(pid).copies().len() > 1;
        loop {
            let budget = self.k - guard.fault_count();
            let at_risk = budget > 0;
            let can_recover = attempt <= plan.recoveries;
            let duration = if attempt == 1 {
                scheme.fault_free_time(n)
            } else if at_risk {
                scheme.mu() + seg + scheme.alpha()
            } else {
                // Final possible recovery: its error detection can never
                // fire (budget exhausted), per the Fig. 1c accounting.
                scheme.mu() + seg
            };
            self.process_variant[pid.index()] += 1;
            let variant = self.process_variant[pid.index()];
            let name = if replicated {
                format!("{}({})^{}", proc.name(), copy + 1, attempt)
            } else {
                format!("{}^{}", proc.name(), variant)
            };
            let node = self.add_node(
                CpgNodeKind::ProcessCopy { process: pid, copy, attempt, variant },
                name,
                guard.clone(),
                duration,
                Location::Node(exec_node),
                at_risk,
            )?;
            attempt_nodes.push(node);
            match prev {
                None => {
                    for &src in &arrival.sources {
                        let cond = self.success_literal(src);
                        self.add_edge(src, node, cond);
                    }
                }
                Some(p) => self.add_edge(p, node, Some(Literal::fault(p))),
            }
            if at_risk {
                let success = guard
                    .and_literal(Literal::no_fault(node))
                    .expect("fresh condition cannot contradict");
                outcomes.push(OutputCtx {
                    guard: success,
                    source: node,
                    edge_cond: Some(Literal::no_fault(node)),
                });
                if can_recover {
                    guard = guard
                        .and_literal(Literal::fault(node))
                        .expect("fresh condition cannot contradict");
                    prev = Some(node);
                    attempt += 1;
                    continue;
                }
                // Dead end: the copy dies on a further fault. Only replicas
                // reach this (validated single-copy policies have R >= k).
                debug_assert!(replicated, "single-copy chain must exhaust the budget");
                break;
            }
            outcomes.push(OutputCtx { guard: guard.clone(), source: node, edge_cond: None });
            break;
        }
        Ok(ChainResult { attempt_nodes, outcomes })
    }

    fn build_message(
        &mut self,
        pid: ProcessId,
        succ: ProcessId,
        mid: MessageId,
        outputs: &[OutputCtx],
    ) -> Result<Vec<OutputCtx>, CpgError> {
        let msg = self.app.message(mid);
        // A message stays node-internal only when both endpoints are
        // un-replicated and share a node; any replica involvement forces the
        // bus (conservative, §4).
        let single_ends = self.policies.policy(pid).copies().len() == 1
            && self.policies.policy(succ).copies().len() == 1;
        let internal = single_ends && self.copies.node_of(pid, 0) == self.copies.node_of(succ, 0);
        let (duration, location) = if internal {
            (Time::ZERO, Location::None)
        } else {
            (msg.transmission(), Location::Bus)
        };

        if self.transparency.is_message_frozen(mid) {
            let name = format!("{}^S", msg.name());
            let sync = self.add_node(
                CpgNodeKind::MessageSync { message: mid },
                name,
                Guard::always(),
                duration,
                location,
                false,
            )?;
            for o in outputs {
                self.add_edge(o.source, sync, o.edge_cond);
            }
            return Ok(vec![OutputCtx { guard: Guard::always(), source: sync, edge_cond: None }]);
        }

        let mut msg_ctxs = Vec::with_capacity(outputs.len());
        for o in outputs {
            self.message_variant[mid.index()] += 1;
            let variant = self.message_variant[mid.index()];
            let name = format!("{}^{}", msg.name(), variant);
            let node = self.add_node(
                CpgNodeKind::MessageCopy { message: mid, variant },
                name,
                o.guard.clone(),
                duration,
                location,
                false,
            )?;
            self.add_edge(o.source, node, o.edge_cond);
            msg_ctxs.push(OutputCtx { guard: o.guard.clone(), source: node, edge_cond: None });
        }
        Ok(msg_ctxs)
    }

    /// The success literal of a conditional source (for edges leaving it on
    /// the no-fault branch); `None` for regular sources.
    fn success_literal(&self, src: CpgNodeId) -> Option<Literal> {
        if self.graph.node(src).conditional {
            Some(Literal::no_fault(src))
        } else {
            None
        }
    }

    fn add_node(
        &mut self,
        kind: CpgNodeKind,
        name: String,
        guard: Guard,
        duration: Time,
        location: Location,
        conditional: bool,
    ) -> Result<CpgNodeId, CpgError> {
        if self.graph.nodes.len() >= self.config.node_limit {
            return Err(CpgError::GraphTooLarge { limit: self.config.node_limit });
        }
        let id = CpgNodeId::new(self.graph.nodes.len());
        self.graph.nodes.push(CpgNode { kind, guard, duration, location, conditional });
        self.graph.names.push(name);
        self.graph.out_edges.push(Vec::new());
        self.graph.in_edges.push(Vec::new());
        Ok(id)
    }

    fn add_edge(&mut self, from: CpgNodeId, to: CpgNodeId, condition: Option<Literal>) {
        let idx = self.graph.edges.len();
        self.graph.edges.push(CpgEdge { from, to, condition });
        self.graph.out_edges[from.index()].push(idx);
        self.graph.in_edges[to.index()].push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::Policy;
    use ftes_model::{samples, Architecture, Mapping, NodeId};

    fn fig5_cpg(k: u32) -> (Application, FtCpg) {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        (app, cpg)
    }

    #[test]
    fn fig5_copy_counts_match_paper() {
        let (app, cpg) = fig5_cpg(2);
        cpg.check_invariants().unwrap();
        let copies = |i: usize| cpg.copies_of_process(ProcessId::new(i)).count();
        // Fig. 5b: P1 has 3 copies; P2 (internal edge from P1) has 6;
        // P3 (frozen) has 3; P4 (fed by bus message m1 from P1) has 6.
        assert_eq!(copies(0), 3, "P1 copies");
        assert_eq!(copies(1), 6, "P2 copies");
        assert_eq!(copies(2), 3, "P3 copies (frozen resets contexts)");
        assert_eq!(copies(3), 6, "P4 copies");
        // m1 (P1 -> P4): one copy per P1 outcome.
        assert_eq!(cpg.copies_of_message(ftes_model::MessageId::new(1)).count(), 3);
        // m2, m3 frozen: one sync node each.
        assert_eq!(cpg.copies_of_message(ftes_model::MessageId::new(2)).count(), 1);
        assert_eq!(cpg.copies_of_message(ftes_model::MessageId::new(3)).count(), 1);
        // Two sync-message nodes + one sync-process node.
        assert_eq!(cpg.sync_nodes().count(), 3);
        let _ = app;
    }

    #[test]
    fn fig5_k1_is_smaller() {
        let (_, cpg1) = fig5_cpg(1);
        let (_, cpg2) = fig5_cpg(2);
        assert!(cpg1.node_count() < cpg2.node_count());
        cpg1.check_invariants().unwrap();
        // k = 1: P1 has 2 copies; P2 contexts: !F11 (budget 1 -> 2 copies),
        // F11 (budget 0 -> 1 copy) = 3 copies.
        assert_eq!(cpg1.copies_of_process(ProcessId::new(0)).count(), 2);
        assert_eq!(cpg1.copies_of_process(ProcessId::new(1)).count(), 3);
    }

    #[test]
    fn fault_free_graph_has_no_conditions() {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 0);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::fault_free(),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        assert_eq!(cpg.conditional_nodes().count(), 0);
        // One copy per process, one copy per message.
        assert_eq!(
            cpg.iter().filter(|(_, n)| matches!(n.kind, CpgNodeKind::ProcessCopy { .. })).count(),
            app.process_count()
        );
        cpg.check_invariants().unwrap();
    }

    #[test]
    fn durations_follow_fig1_algebra() {
        // Single process, k = 2, re-execution: attempts E(1), µ+C+α, µ+C.
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let durs: Vec<i64> = cpg
            .copies_of_process(ProcessId::new(0))
            .map(|id| cpg.node(id).duration.units())
            .collect();
        // E(0) = 60 + 10 = 70; recovery = 10 + 60 + 10 = 80; final = 70.
        assert_eq!(durs, vec![70, 80, 70]);
        // Worst-case sum equals W(1, 2) from the algebra.
        let scheme =
            RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5)).unwrap();
        assert_eq!(Time::new(durs.iter().sum()), scheme.worst_case_time(0, 2));
    }

    #[test]
    fn replication_produces_join_nodes() {
        let (app, arch) = samples::fig1_process(3);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
        policies.set(ProcessId::new(0), Policy::replication(2));
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        assert_eq!(cpg.joins().len(), 1);
        let (join, chains) = &cpg.joins()[0];
        assert_eq!(chains.len(), 3, "three replicas");
        for c in chains {
            assert_eq!(c.len(), 1, "plain replicas have single-attempt chains");
        }
        // The join guard is unconditional and replica conditions do not
        // escape downstream.
        assert!(cpg.node(*join).guard.is_always());
        // Replicas are conditional (they can be hit while budget remains).
        for c in chains {
            assert!(cpg.node(c[0]).conditional);
        }
        cpg.check_invariants().unwrap();
    }

    #[test]
    fn replicated_checkpointed_combined_policy() {
        let (app, arch) = samples::fig1_process(2);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
        // Fig. 4c: two copies, R = {0, 1}, second copy checkpointed twice.
        policies.set(
            ProcessId::new(0),
            Policy::from_copies(vec![
                ftes_ft::CopyPlan::plain(),
                ftes_ft::CopyPlan::checkpointed(1, 2),
            ])
            .unwrap(),
        );
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let (_, chains) = &cpg.joins()[0];
        assert_eq!(chains[0].len(), 1, "plain copy");
        assert_eq!(chains[1].len(), 2, "checkpointed copy recovers once");
        cpg.check_invariants().unwrap();
    }

    #[test]
    fn node_limit_is_enforced() {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let err = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig { node_limit: 3 },
        )
        .unwrap_err();
        assert_eq!(err, CpgError::GraphTooLarge { limit: 3 });
    }

    #[test]
    fn insufficient_policy_rejected() {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let err = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(3),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CpgError::Ft(_)));
    }

    #[test]
    fn guards_on_alternative_paths_are_disjoint() {
        let (_, cpg) = fig5_cpg(2);
        // For every conditional node, children on the fault branch exclude
        // children on the no-fault branch.
        for cond in cpg.conditional_nodes() {
            let fault_children: Vec<_> = cpg
                .outgoing(cond)
                .filter(|e| e.condition == Some(Literal::fault(cond)))
                .map(|e| e.to)
                .collect();
            let ok_children: Vec<_> = cpg
                .outgoing(cond)
                .filter(|e| e.condition == Some(Literal::no_fault(cond)))
                .map(|e| e.to)
                .collect();
            for &f in &fault_children {
                for &s in &ok_children {
                    let (gf, gs) = (&cpg.node(f).guard, &cpg.node(s).guard);
                    // Sync nodes absorb guards; skip unconditional children.
                    if !gf.is_always() && !gs.is_always() {
                        assert!(
                            gf.excludes(gs),
                            "fault/no-fault children of {} must be disjoint",
                            cpg.name(cond)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn internal_vs_bus_messages() {
        let (app, cpg) = fig5_cpg(2);
        let _ = app;
        // m0 (P1 -> P2, both on N1) is internal: zero duration, no location.
        for id in cpg.copies_of_message(ftes_model::MessageId::new(0)) {
            assert_eq!(cpg.node(id).duration, Time::ZERO);
            assert_eq!(cpg.node(id).location, Location::None);
        }
        // m1 (P1 on N1 -> P4 on N2) rides the bus.
        for id in cpg.copies_of_message(ftes_model::MessageId::new(1)) {
            assert_eq!(cpg.node(id).duration, Time::new(1));
            assert_eq!(cpg.node(id).location, Location::Bus);
        }
    }

    #[test]
    fn anchored_rebuild_is_bit_identical_to_fresh_builds() {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let k = FaultModel::new(2);
        let (base, mut anchor) = build_ftcpg_anchored(
            &app,
            &policies,
            &copies,
            k,
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        assert_eq!(&base, anchor.graph());
        // Walk a chain of one-process policy deltas; every rebuild must
        // equal a from-scratch construction of the same configuration.
        for step in 0..app.process_count() * 2 {
            let target = ProcessId::new(step % app.process_count());
            let mut next = policies.clone();
            let policy =
                if step % 2 == 0 { Policy::checkpointing(2, 2) } else { Policy::replication(2) };
            next.set(target, policy);
            let next_copies = CopyMapping::from_base(&app, &arch, &mapping, &next).unwrap();
            let (rebuilt, stats) = anchor
                .rebuild(&app, &next, &next_copies, k, &transparency, BuildConfig::default())
                .unwrap();
            let fresh =
                build_ftcpg(&app, &next, &next_copies, k, &transparency, BuildConfig::default())
                    .unwrap();
            assert_eq!(rebuilt, fresh, "step {step} diverged from the monolithic build");
            assert_eq!(stats.total_positions, app.process_count());
            assert!(stats.reused_positions <= stats.total_positions);
            // Re-anchor back on the base configuration too (the search's
            // revert move) and re-check.
            let (back, _) = anchor
                .rebuild(&app, &policies, &copies, k, &transparency, BuildConfig::default())
                .unwrap();
            assert_eq!(back, base, "step {step} revert diverged");
        }
    }

    #[test]
    fn anchored_rebuild_reuses_the_shared_prefix() {
        // A chain app: dirtying the last process must reuse every earlier
        // position (minus the one-hop backward reach of its predecessor).
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let k = FaultModel::new(1);
        let t = Transparency::none();
        let (_, mut anchor) =
            build_ftcpg_anchored(&app, &policies, &copies, k, &t, BuildConfig::default()).unwrap();
        let last = *app.topological_order().last().unwrap();
        let mut next = policies.clone();
        next.set(last, Policy::checkpointing(1, 2));
        let next_copies = CopyMapping::from_base(&app, &arch, &mapping, &next).unwrap();
        let (_, stats) =
            anchor.rebuild(&app, &next, &next_copies, k, &t, BuildConfig::default()).unwrap();
        assert!(
            stats.reused_positions > 0 && stats.reused_nodes > 0,
            "a trailing delta must reuse a prefix: {stats:?}"
        );
        // An unchanged configuration reuses everything.
        let (_, stats) =
            anchor.rebuild(&app, &next, &next_copies, k, &t, BuildConfig::default()).unwrap();
        assert_eq!(stats.reused_positions, stats.total_positions);
    }

    #[test]
    fn fixed_mapping_feasibility_checked() {
        // Build a custom mapping that sends P3 (restricted to N1) to N1 but
        // asserts the error path by corrupting the copy mapping arity via
        // the public API is impossible; instead check infeasible copy error
        // through build_chain by a handcrafted mapping on fig3.
        let (app, arch) = samples::fig3();
        let assign =
            vec![NodeId::new(0), NodeId::new(0), NodeId::new(0), NodeId::new(0), NodeId::new(0)];
        let mapping = Mapping::new(&app, &arch, assign).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(1),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        cpg.check_invariants().unwrap();
        let _ = Architecture::homogeneous(2).unwrap();
    }
}
