//! FT-CPG analytics: scenario counting without enumeration and structural
//! statistics — the quantities behind the paper's §3.3 argument that the
//! number of execution scenarios "grows exponentially with the number of
//! processes and the number of tolerated transient faults", and that
//! transparency prunes it.

use crate::{CpgNodeId, CpgNodeKind, FtCpg};

/// Structural statistics of an FT-CPG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpgStats {
    /// Total nodes.
    pub nodes: usize,
    /// Total edges.
    pub edges: usize,
    /// Process copies (`VP ∪ VC` members that execute code).
    pub process_copies: usize,
    /// Message copies (including frozen message sync nodes).
    pub message_copies: usize,
    /// Conditional nodes (condition producers).
    pub conditionals: usize,
    /// Synchronization nodes (`VT`).
    pub sync_nodes: usize,
    /// Replica joins.
    pub joins: usize,
    /// Number of distinct fault scenarios (see [`count_scenarios`]).
    pub scenarios: u128,
}

/// Computes [`CpgStats`] for a graph.
pub fn cpg_stats(cpg: &FtCpg) -> CpgStats {
    let mut process_copies = 0;
    let mut message_copies = 0;
    let mut sync_nodes = 0;
    let mut joins = 0;
    for (_, n) in cpg.iter() {
        match n.kind {
            CpgNodeKind::ProcessCopy { .. } => process_copies += 1,
            CpgNodeKind::MessageCopy { .. } | CpgNodeKind::MessageSync { .. } => {
                message_copies += 1
            }
            CpgNodeKind::ProcessSync { .. } => sync_nodes += 1,
            CpgNodeKind::ReplicaJoin { .. } => joins += 1,
        }
        if matches!(n.kind, CpgNodeKind::MessageSync { .. }) {
            sync_nodes += 1;
        }
    }
    CpgStats {
        nodes: cpg.node_count(),
        edges: cpg.edge_count(),
        process_copies,
        message_copies,
        conditionals: cpg.conditional_nodes().count(),
        sync_nodes,
        joins,
        scenarios: count_scenarios(cpg),
    }
}

/// Counts the consistent fault scenarios of a graph **without enumerating
/// them**, by dynamic programming over the conditional nodes in topological
/// order.
///
/// State: per (condition index, remaining budget, *activation context*).
/// Because a condition's activation depends only on the outcomes of the
/// conditions in its guard, the DP walks conditions in topological order
/// carrying, for each reachable assignment of *ancestor-relevant* outcomes,
/// the number of ways — collapsed to the pair (satisfied?, faults-so-far)
/// per condition via a recursive evaluation with memoized partial
/// assignments.
///
/// For graphs whose guards form chains (the common case: recovery chains
/// and cross-products pruned by budget), the count is exact and cheap; it
/// falls back to explicit enumeration semantics via the same recursion the
/// enumerator uses but counting instead of materializing, which bounds
/// memory at O(depth).
pub fn count_scenarios(cpg: &FtCpg) -> u128 {
    let conditionals: Vec<CpgNodeId> = cpg.conditional_nodes().collect();
    let mut cond_value: Vec<Option<bool>> = vec![None; cpg.node_count()];
    count_rec(cpg, &conditionals, 0, &mut cond_value, 0)
}

fn count_rec(
    cpg: &FtCpg,
    conds: &[CpgNodeId],
    i: usize,
    cond_value: &mut Vec<Option<bool>>,
    faults: u32,
) -> u128 {
    let Some(&id) = conds.get(i) else {
        return 1;
    };
    let active = cpg.node(id).guard.evaluate(|c| cond_value[c.index()]).unwrap_or(false);
    if !active {
        return count_rec(cpg, conds, i + 1, cond_value, faults);
    }
    cond_value[id.index()] = Some(false);
    let mut total = count_rec(cpg, conds, i + 1, cond_value, faults);
    if faults < cpg.fault_budget() {
        cond_value[id.index()] = Some(true);
        total += count_rec(cpg, conds, i + 1, cond_value, faults + 1);
    }
    cond_value[id.index()] = None;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_ftcpg, enumerate_scenarios, BuildConfig, CopyMapping};
    use ftes_ft::PolicyAssignment;
    use ftes_model::{samples, FaultModel, Mapping, Transparency};

    fn fig5_cpg(k: u32, transparency: &Transparency) -> FtCpg {
        let (app, arch, _) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            transparency,
            BuildConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn count_matches_enumeration() {
        let (_, _, t) = samples::fig5();
        for k in 0..=2 {
            for transparency in [&Transparency::none(), &t] {
                let cpg = fig5_cpg(k, transparency);
                let counted = count_scenarios(&cpg);
                let enumerated = enumerate_scenarios(&cpg, 10_000_000).unwrap().len();
                assert_eq!(counted, enumerated as u128, "k={k}");
            }
        }
    }

    #[test]
    fn stats_shape_for_fig5() {
        let (_, _, t) = samples::fig5();
        let cpg = fig5_cpg(2, &t);
        let s = cpg_stats(&cpg);
        assert_eq!(s.process_copies, 3 + 6 + 3 + 6);
        assert_eq!(s.sync_nodes, 3, "P3^S, m2^S, m3^S");
        assert_eq!(s.joins, 0, "no replication in fig5");
        assert_eq!(s.nodes, cpg.node_count());
        assert!(s.scenarios > 10);
    }

    #[test]
    fn transparency_prunes_the_scenario_space() {
        let (_, _, paper) = samples::fig5();
        let free = count_scenarios(&fig5_cpg(2, &Transparency::none()));
        let frozen = count_scenarios(&fig5_cpg(2, &paper));
        // Freezing cuts the cross-product of contexts: fewer copies =>
        // fewer conditions => fewer scenarios (§3.3's debugability claim).
        assert!(frozen <= free, "frozen {frozen} vs free {free}");
    }

    #[test]
    fn scenario_count_grows_with_k() {
        let mut prev = 0u128;
        for k in 0..=3 {
            let c = count_scenarios(&fig5_cpg(k, &Transparency::none()));
            assert!(c > prev, "scenario space grows with k (k={k}: {c})");
            prev = c;
        }
    }
}
