//! # ftes-ftcpg
//!
//! The fault-tolerant conditional process graph (FT-CPG) of the DATE 2008
//! paper (§5.1, Fig. 5): a directed acyclic graph
//! `G(VP ∪ VC ∪ VT, ES ∪ EC)` capturing every alternative execution scenario
//! of an application under at most `k` transient faults.
//!
//! * [`Guard`]/[`Literal`] — conjunctions of fault-condition values, the
//!   column headers of the schedule tables (Fig. 6);
//! * [`FtCpg`]/[`CpgNode`] — process copies `Pi^m` (regular or conditional),
//!   message copies, synchronization nodes `Pi^S`/`mi^S` for frozen
//!   entities, and replica joins;
//! * [`CopyMapping`] — the extension of the mapping `M` to the replica set
//!   `VR`;
//! * [`build_ftcpg`] — construction from a decided system configuration;
//! * [`FaultScenario`]/[`enumerate_scenarios`] — the realizable fault
//!   scenarios of a graph, used by the simulator and the schedulers.
//!
//! ```
//! use ftes_ftcpg::{build_ftcpg, enumerate_scenarios, BuildConfig, CopyMapping};
//! use ftes_ft::PolicyAssignment;
//! use ftes_model::{samples, FaultModel, Mapping, Transparency};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (app, arch) = samples::fig1_process(1);
//! let mapping = Mapping::cheapest(&app, &arch)?;
//! let policies = PolicyAssignment::uniform_reexecution(&app, 2);
//! let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
//! let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(2),
//!                       &Transparency::none(), BuildConfig::default())?;
//! // A single process tolerating two faults unrolls into three copies.
//! assert_eq!(cpg.copies_of_process(ftes_model::ProcessId::new(0)).count(), 3);
//! assert_eq!(enumerate_scenarios(&cpg, 100)?.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod copy_mapping;
pub mod dot;
mod error;
mod guard;
mod node;
mod scenario;

pub use analysis::{count_scenarios, cpg_stats, CpgStats};
pub use builder::{build_ftcpg, build_ftcpg_anchored, BuildConfig, CpgAnchor, RebuildStats};
pub use copy_mapping::CopyMapping;
pub use error::CpgError;
pub use guard::{Guard, Literal};
pub use node::{CpgEdge, CpgNode, CpgNodeId, CpgNodeKind, FtCpg, Location};
pub use scenario::{enumerate_scenarios, FaultScenario};
