//! The two subsystem-level guarantees of `ftes-explore`:
//!
//! 1. **Determinism**: the same scenario suite + seed produces an
//!    *identical* Pareto archive and incumbent regardless of thread count
//!    or point parallelism.
//! 2. **Cache correctness**: memoized estimates agree exactly with freshly
//!    computed ones on every state the exploration visits.

use ftes_explore::{
    evaluate_state, explore, paper_grid, run_suite, suite_to_csv, suite_to_json, EstimateCache,
    PortfolioConfig, ScenarioPoint, StateKey, SuiteConfig, SuiteOutcome,
};
use ftes_gen::{generate_application, GeneratorConfig};
use ftes_model::Time;
use ftes_sched::SystemEvaluator;
use ftes_tdma::Platform;

fn suite(point_parallelism: usize, threads: usize, seed: u64) -> SuiteConfig {
    SuiteConfig {
        points: vec![
            ScenarioPoint { processes: 10, nodes: 2, k: 1, seed: 0 },
            ScenarioPoint { processes: 12, nodes: 3, k: 2, seed: 1 },
            ScenarioPoint { processes: 14, nodes: 3, k: 3, seed: 2 },
        ],
        portfolio: PortfolioConfig { threads, ..PortfolioConfig::quick(seed) },
        point_parallelism,
        slot: Time::new(8),
        verify: None,
        certify: true,
    }
}

#[test]
fn suite_is_deterministic_across_thread_counts() {
    let baseline = run_suite(&suite(1, 1, 17)).unwrap();
    for (point_parallelism, threads) in [(1, 4), (3, 1), (3, 8)] {
        let other = run_suite(&suite(point_parallelism, threads, 17)).unwrap();
        assert_eq!(
            baseline.signature(),
            other.signature(),
            "archives must not depend on parallelism (pp={point_parallelism}, t={threads})"
        );
        for (a, b) in baseline.points.iter().zip(&other.points) {
            assert_eq!(a.worst_case, b.worst_case);
            assert_eq!(a.fault_free, b.fault_free);
            assert_eq!(a.schedulable, b.schedulable);
            // The cache accounting is part of the deterministic report
            // surface (CSV columns), not just the trajectories: the
            // probe-side reservation guarantees one miss per unique key
            // regardless of how worker probe→resolve windows interleave.
            assert_eq!(a.cache.hits, b.cache.hits, "cache hits must not depend on parallelism");
            assert_eq!(a.cache.misses, b.cache.misses);
            assert_eq!(a.cache.entries, b.cache.entries);
        }
    }
}

/// Zeroes the documented thread-dependent diagnostics — wall clocks and
/// the evaluator-kernel work counters (constructions follow the thread
/// split, and a prober that races a pending cache reservation recomputes
/// the identical value itself rather than waiting, so raw kernel-work
/// counts legitimately vary with interleaving) — so the CSV/JSON
/// renderings below can be compared for *byte* identity, not just
/// signature equality. The cache hit/miss counters are NOT stripped:
/// the pending-reservation discipline pins those exactly.
fn strip_diagnostics(outcome: &mut SuiteOutcome) {
    outcome.wall = std::time::Duration::ZERO;
    for p in &mut outcome.points {
        p.wall = std::time::Duration::ZERO;
        p.evals = Default::default();
    }
}

#[test]
fn certify_guided_suite_renders_identical_bytes_across_thread_counts() {
    let guided = |point_parallelism: usize, threads: usize| {
        let mut config = suite(point_parallelism, threads, 17);
        config.points.truncate(2); // k <= 2 keeps the exact runs cheap
        config.portfolio.certify_guided = true;
        let mut outcome = run_suite(&config).unwrap();
        strip_diagnostics(&mut outcome);
        outcome
    };
    let baseline = guided(1, 1);
    assert!(
        baseline.total_certify_cache().misses > 0,
        "the guided sweep must actually certify incumbents"
    );
    for (point_parallelism, threads) in [(1, 4), (2, 8)] {
        let other = guided(point_parallelism, threads);
        // Byte identity of both report formats — this subsumes archive
        // signatures, estimate-cache counters *and* the certify-guided
        // admit-cache counters (rendered columns/fields): the pending
        // reservation pins one miss per unique key regardless of how the
        // worker certify windows interleave.
        assert_eq!(
            suite_to_csv(&baseline),
            suite_to_csv(&other),
            "guided CSV must not depend on parallelism (pp={point_parallelism}, t={threads})"
        );
        assert_eq!(
            suite_to_json(&baseline),
            suite_to_json(&other),
            "guided JSON must not depend on parallelism (pp={point_parallelism}, t={threads})"
        );
        for (a, b) in baseline.points.iter().zip(&other.points) {
            assert_eq!(a.certify_cache, b.certify_cache, "admit-cache counters must be pinned");
        }
    }
}

#[test]
fn different_seeds_explore_differently() {
    // Sanity check that the determinism above is not vacuous (i.e. the
    // engine is actually seed-sensitive somewhere in this workload set).
    let a = run_suite(&suite(1, 2, 17)).unwrap();
    let b = run_suite(&suite(1, 2, 18)).unwrap();
    let visited = |s: &ftes_explore::SuiteOutcome| s.total_cache().misses;
    // Same grid, different portfolio seed: the searched trajectories (and
    // so the estimator workload) should differ even if the optima agree.
    assert!(
        visited(&a) != visited(&b) || a.signature() != b.signature(),
        "two seeds produced bit-identical explorations — suspicious"
    );
}

#[test]
fn cached_estimates_match_fresh_computation() {
    let app = generate_application(&GeneratorConfig::new(12, 3), 5).unwrap();
    let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
    let k = 2;
    let result = explore(&app, &platform, k, &PortfolioConfig::quick(23)).unwrap();
    let mut evaluator = SystemEvaluator::new(&app, &platform, k);

    // Every archived state's estimate must equal a from-scratch evaluation.
    for entry in result.archive.entries() {
        let fresh = evaluate_state(&mut evaluator, &entry.mapping, &entry.policies)
            .expect("archived states are feasible");
        assert_eq!(entry.estimate, fresh, "cache must never distort an estimate");
    }

    // And the cache itself is transparent: compute-through equals bypass.
    let cache = EstimateCache::new();
    for entry in result.archive.entries() {
        let key = StateKey::encode(&entry.mapping, &entry.policies);
        let through = cache.get_or_compute(key.clone(), || {
            evaluate_state(&mut evaluator, &entry.mapping, &entry.policies)
        });
        let again = cache.get_or_compute(key, || panic!("second lookup must hit"));
        assert_eq!(through, again);
        assert_eq!(through, Some(entry.estimate));
    }
}

#[test]
fn paper_grid_end_to_end_smoke() {
    // One real §6-sized point (the smallest), kept cheap: proves the grid
    // plumbing works at paper scale, not just on toy graphs.
    let mut points = paper_grid(1);
    points.truncate(1); // 20 processes, 4 nodes, k = 3
    let config = SuiteConfig {
        points,
        portfolio: PortfolioConfig {
            rounds: 2,
            iterations_per_round: 6,
            threads: 4,
            ..PortfolioConfig::quick(1)
        },
        point_parallelism: 1,
        slot: Time::new(8),
        verify: None,
        certify: true,
    };
    let outcome = run_suite(&config).unwrap();
    assert_eq!(outcome.points.len(), 1);
    let p = &outcome.points[0];
    assert_eq!((p.point.processes, p.point.nodes, p.point.k), (20, 4, 3));
    assert!(p.worst_case > p.fault_free, "k = 3 must cost slack");
    assert!(p.cache.hits + p.cache.misses > 0);
}
