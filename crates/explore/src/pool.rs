//! Batched neighborhood evaluation over a pool of warm kernels.
//!
//! Parallelism lives at the *worker* level: the portfolio engine fans its
//! search workers across scoped threads, and the scenario-suite runner
//! fans independent grid points the same way, both through a deliberately
//! simple work-queue over `std::thread::scope` — no channels, no pool
//! object to keep alive, results returned in input order regardless of
//! which thread computed them (the property every determinism guarantee in
//! this crate leans on).
//!
//! Within a worker, a whole sampled neighborhood is scored by **one** warm
//! kernel in a single [`SystemEvaluator::evaluate_batch`] pass: the cache
//! is probed for every candidate first, only the misses reach the kernel,
//! and the batch shares the schedule prefix across the neighborhood. The
//! [`EvaluatorPool`] keeps one lazily built kernel per worker slot, so the
//! topology, recovery-scheme and resource-arena precomputation is paid
//! once per exploration run instead of once per candidate state.

use crate::cache::{EstimateCache, Probe, StateKey};
use ftes_ft::PolicyAssignment;
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, Mapping};
use ftes_sched::{Estimate, EvaluatorStats, SystemEvaluator};
use ftes_tdma::Platform;
// ftes-lint: allow(determinism) reason="keyed evaluator checkout only; entries are never iterated into results"
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(thread, 0..n)` across up to `threads` scoped threads, returning
/// results in index order. Work is claimed from a shared atomic counter, so
/// uneven item costs balance automatically; `thread` identifies the worker
/// slot (0-based, `< threads`) so callers can check thread-affine resources
/// (e.g. a pooled evaluator) out without contention.
pub(crate) fn indexed_parallel<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(|i| f(0, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(t, i)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("evaluator thread panicked")).collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, v) in bucket {
            slots[i] = Some(v);
        }
    }
    slots.into_iter().map(|s| s.expect("every index claimed exactly once")).collect()
}

/// One warm [`SystemEvaluator`] per evaluation thread, constructed lazily:
/// a slot's kernel is built on the slot's first evaluation, so a pool sized
/// for the configured thread budget never pays for slots a smaller run
/// leaves idle.
pub struct EvaluatorPool {
    app: Application,
    platform: Platform,
    k: u32,
    slots: Vec<Mutex<Option<SystemEvaluator>>>,
}

impl EvaluatorPool {
    /// A pool with `slots` evaluator slots for one `(app, platform, k)`
    /// problem instance.
    pub fn new(app: &Application, platform: &Platform, k: u32, slots: usize) -> Self {
        EvaluatorPool {
            app: app.clone(),
            platform: platform.clone(),
            k,
            slots: (0..slots.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Runs `f` with a (lazily constructed) warm evaluator, preferring slot
    /// `thread` and probing onward when it is busy — concurrent callers
    /// (e.g. the batch fan-outs of several portfolio workers) never
    /// serialize on one kernel as long as a slot is free. Evaluation is a
    /// pure function of the candidate state, so *which* kernel answers is
    /// unobservable (the determinism contract is untouched).
    pub fn with<R>(&self, thread: usize, f: impl FnOnce(&mut SystemEvaluator) -> R) -> R {
        let n = self.slots.len();
        let build = || SystemEvaluator::new(&self.app, &self.platform, self.k);
        for off in 0..n {
            if let Ok(mut slot) = self.slots[(thread + off) % n].try_lock() {
                return f(slot.get_or_insert_with(build));
            }
        }
        // Every slot busy: wait for the preferred one.
        let mut slot = self.slots[thread % n].lock().expect("evaluator slot poisoned");
        f(slot.get_or_insert_with(build))
    }

    /// Work counters aggregated across every constructed slot.
    pub fn stats(&self) -> EvaluatorStats {
        self.slots
            .iter()
            .filter_map(|s| s.lock().expect("evaluator slot poisoned").as_ref().map(|e| e.stats()))
            .fold(EvaluatorStats::default(), EvaluatorStats::merged)
    }
}

/// Evaluates one candidate state through a warm evaluator kernel: replica
/// placement plus the root-schedule estimator. `None` means the state is
/// infeasible (e.g. a policy the bus cannot carry) — the same "move
/// unavailable" convention the serial searches in `ftes-opt` use.
pub fn evaluate_state(
    evaluator: &mut SystemEvaluator,
    mapping: &Mapping,
    policies: &PolicyAssignment,
) -> Option<Estimate> {
    let copies = CopyMapping::from_base(
        evaluator.app(),
        evaluator.platform().architecture(),
        mapping,
        policies,
    )
    .ok()?;
    evaluator.evaluate(&copies, policies).ok()
}

/// Evaluates a batch of candidate states through one warm evaluator kernel,
/// memoizing through `cache`: every candidate is probed against the cache
/// first, only the misses run — in a single
/// [`SystemEvaluator::evaluate_batch`] pass that shares the schedule prefix
/// across the whole neighborhood — and the results are published back.
/// Results come back in input order; `None` marks infeasible states.
///
/// This is the batched neighborhood evaluator: a search worker samples its
/// whole neighborhood first, then amortizes one cache-warm kernel pass over
/// all candidates instead of paying the estimator serially per move.
pub fn evaluate_batch(
    pool: &EvaluatorPool,
    cache: &EstimateCache,
    candidates: &[(Mapping, PolicyAssignment)],
) -> Vec<Option<Estimate>> {
    evaluate_batch_keyed(pool, cache, None, candidates, 0)
        .into_iter()
        .map(|(_, estimate)| estimate)
        .collect()
}

/// [`evaluate_batch`] returning each candidate's canonical [`StateKey`]
/// alongside its estimate, so hot callers (the portfolio workers) never
/// encode a state twice.
///
/// `anchor`, when given, is evaluated first (through the same kernel) to
/// pin the batch's delta base at the worker's current state — maximizing
/// shared-prefix reuse and making the kernel's delta/full split
/// deterministic regardless of which pooled kernel answers. `thread` picks
/// the preferred pool slot (portfolio workers pass their worker-thread id,
/// so concurrent workers never serialize on one kernel).
pub(crate) fn evaluate_batch_keyed(
    pool: &EvaluatorPool,
    cache: &EstimateCache,
    anchor: Option<(&Mapping, &PolicyAssignment)>,
    candidates: &[(Mapping, PolicyAssignment)],
    thread: usize,
) -> Vec<(StateKey, Option<Estimate>)> {
    // Phase 1: probe the cache for every candidate, in input order,
    // reserving the misses. A key sampled twice in the same neighborhood
    // is scored once (the repeat probe hits this batch's own reservation
    // and forwards the first occurrence's result); a key another worker is
    // concurrently computing counts as the hit it would be sequentially,
    // and is scored locally rather than waited on.
    let mut out: Vec<(StateKey, Option<Estimate>)> = Vec::with_capacity(candidates.len());
    let mut miss_idx: Vec<usize> = Vec::new();
    let mut first_at: HashMap<StateKey, usize> = HashMap::new();
    let mut dup_of: Vec<(usize, usize)> = Vec::new();
    for (i, (mapping, policies)) in candidates.iter().enumerate() {
        let key = StateKey::encode(mapping, policies);
        if let Some(&src) = first_at.get(&key) {
            let _ = cache.probe_or_reserve(&key);
            dup_of.push((i, src));
            out.push((key, None));
            continue;
        }
        first_at.insert(key.clone(), i);
        match cache.probe_or_reserve(&key) {
            Probe::Ready(value) => out.push((key, value)),
            Probe::Pending | Probe::Reserved => {
                miss_idx.push(i);
                out.push((key, None));
            }
        }
    }
    if miss_idx.is_empty() {
        return out;
    }
    // Phase 2: derive copy placements for the misses. Infeasible placements
    // cache as `None` without ever reaching the kernel (the same "move
    // unavailable" convention as `evaluate_state`).
    let arch = pool.platform.architecture();
    let mut placed: Vec<(usize, CopyMapping)> = Vec::with_capacity(miss_idx.len());
    for &i in &miss_idx {
        let (mapping, policies) = &candidates[i];
        if let Ok(copies) = CopyMapping::from_base(&pool.app, arch, mapping, policies) {
            placed.push((i, copies));
        }
    }
    // Phase 3: one warm kernel scores every remaining miss in a single
    // batch pass.
    if !placed.is_empty() {
        let results = pool.with(thread, |evaluator| {
            if let Some((mapping, policies)) = anchor {
                if let Ok(copies) = CopyMapping::from_base(&pool.app, arch, mapping, policies) {
                    let _ = evaluator.evaluate(&copies, policies);
                }
            }
            let refs: Vec<(&CopyMapping, &PolicyAssignment)> =
                placed.iter().map(|&(i, ref copies)| (copies, &candidates[i].1)).collect();
            evaluator.evaluate_batch(&refs)
        });
        for (&(i, _), result) in placed.iter().zip(results) {
            out[i].1 = result.ok();
        }
    }
    // Phase 4: publish the scored results, completing this batch's
    // reservations (`resolve` never overwrites a value another worker got
    // there first with), then forward within-batch duplicates.
    for &i in &miss_idx {
        cache.resolve(out[i].0.clone(), out[i].1);
    }
    for &(dup, src) in &dup_of {
        out[dup].1 = out[src].1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::samples;
    use ftes_model::Time;

    #[test]
    fn indexed_parallel_preserves_order() {
        for threads in [1, 2, 7] {
            let out = indexed_parallel(100, threads, |_, i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(indexed_parallel(0, 4, |_, i| i).is_empty());
    }

    #[test]
    fn indexed_parallel_thread_ids_stay_in_range() {
        for threads in [1, 3, 8] {
            let out = indexed_parallel(64, threads, |t, _| t);
            assert!(out.iter().all(|&t| t < threads.max(1)));
        }
    }

    #[test]
    fn batch_matches_fresh_evaluation() {
        let (app, arch) = samples::fig3();
        let node_count = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, Time::new(8)).unwrap())
                .unwrap();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let k = 2;
        let candidates: Vec<(Mapping, PolicyAssignment)> = vec![
            (mapping.clone(), PolicyAssignment::uniform_reexecution(&app, k)),
            (mapping.clone(), PolicyAssignment::local_checkpointing(&app, k, 16).unwrap()),
            (mapping.clone(), PolicyAssignment::uniform_reexecution(&app, k)),
        ];
        let cache = EstimateCache::new();
        let pool = EvaluatorPool::new(&app, &platform, k, 4);
        let batched = evaluate_batch(&pool, &cache, &candidates);
        let mut fresh = ftes_sched::SystemEvaluator::new(&app, &platform, k);
        for (result, (m, p)) in batched.iter().zip(&candidates) {
            assert_eq!(*result, evaluate_state(&mut fresh, m, p));
            assert!(result.is_some());
        }
        // Duplicate state in the batch: two distinct states cached.
        assert_eq!(cache.stats().entries, 2);
        // Pool counters account for exactly the cache misses (every miss is
        // scored by the kernel, even the in-batch duplicate).
        assert_eq!(pool.stats().evaluations(), cache.stats().misses);
    }

    #[test]
    fn pool_constructs_slots_lazily_and_reuses_them() {
        let (app, arch) = samples::fig3();
        let node_count = arch.node_count();
        let platform = Platform::homogeneous(node_count, Time::new(8)).unwrap();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let pool = EvaluatorPool::new(&app, &platform, 1, 8);
        for _ in 0..5 {
            pool.with(0, |ev| evaluate_state(ev, &mapping, &policies)).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.constructions, 1, "only the touched slot is built");
        assert_eq!(stats.full_evals, 5);
        assert_eq!(stats.reused(), 4);
    }
}
