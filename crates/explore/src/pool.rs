//! Batched parallel evaluation on scoped threads.
//!
//! Two layers use the same primitive: the portfolio engine fans a worker's
//! whole sampled neighborhood across threads per iteration, and the
//! scenario-suite runner fans independent grid points the same way. The
//! primitive is a deliberately simple work-queue over `std::thread::scope`
//! — no channels, no pool object to keep alive, results returned in input
//! order regardless of which thread computed them (the property every
//! determinism guarantee in this crate leans on).

use crate::cache::{EstimateCache, StateKey};
use ftes_ft::PolicyAssignment;
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, Mapping};
use ftes_sched::{estimate_schedule_length, Estimate};
use ftes_tdma::Platform;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..n)` across up to `threads` scoped threads, returning results
/// in index order. Work is claimed from a shared atomic counter, so uneven
/// item costs balance automatically.
pub(crate) fn indexed_parallel<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("evaluator thread panicked")).collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, v) in bucket {
            slots[i] = Some(v);
        }
    }
    slots.into_iter().map(|s| s.expect("every index claimed exactly once")).collect()
}

/// Evaluates one candidate state from scratch: replica placement plus the
/// root-schedule estimator. `None` means the state is infeasible (e.g. a
/// policy the bus cannot carry) — the same "move unavailable" convention
/// the serial searches in `ftes-opt` use.
pub fn evaluate_state(
    app: &Application,
    platform: &Platform,
    k: u32,
    mapping: &Mapping,
    policies: &PolicyAssignment,
) -> Option<Estimate> {
    let copies = CopyMapping::from_base(app, platform.architecture(), mapping, policies).ok()?;
    estimate_schedule_length(app, platform, &copies, policies, k).ok()
}

/// Evaluates a batch of candidate states across `threads` scoped threads,
/// memoizing through `cache`. Results come back in input order; `None`
/// marks infeasible states.
///
/// This is the "batched parallel neighborhood evaluator": a search worker
/// samples its whole neighborhood first, then amortizes one fan-out over
/// all candidates instead of paying the estimator serially per move.
pub fn evaluate_batch(
    app: &Application,
    platform: &Platform,
    k: u32,
    cache: &EstimateCache,
    candidates: &[(Mapping, PolicyAssignment)],
    threads: usize,
) -> Vec<Option<Estimate>> {
    evaluate_batch_keyed(app, platform, k, cache, candidates, threads)
        .into_iter()
        .map(|(_, estimate)| estimate)
        .collect()
}

/// [`evaluate_batch`] returning each candidate's canonical [`StateKey`]
/// alongside its estimate, so hot callers (the portfolio workers) never
/// encode a state twice.
pub(crate) fn evaluate_batch_keyed(
    app: &Application,
    platform: &Platform,
    k: u32,
    cache: &EstimateCache,
    candidates: &[(Mapping, PolicyAssignment)],
    threads: usize,
) -> Vec<(StateKey, Option<Estimate>)> {
    indexed_parallel(candidates.len(), threads, |i| {
        let (mapping, policies) = &candidates[i];
        let key = StateKey::encode(mapping, policies);
        let estimate = cache
            .get_or_compute(key.clone(), || evaluate_state(app, platform, k, mapping, policies));
        (key, estimate)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::samples;
    use ftes_model::Time;

    #[test]
    fn indexed_parallel_preserves_order() {
        for threads in [1, 2, 7] {
            let out = indexed_parallel(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(indexed_parallel(0, 4, |i| i).is_empty());
    }

    #[test]
    fn batch_matches_fresh_evaluation() {
        let (app, arch) = samples::fig3();
        let node_count = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, Time::new(8)).unwrap())
                .unwrap();
        let mapping = Mapping::cheapest(&app, platform.architecture()).unwrap();
        let k = 2;
        let candidates: Vec<(Mapping, PolicyAssignment)> = vec![
            (mapping.clone(), PolicyAssignment::uniform_reexecution(&app, k)),
            (mapping.clone(), PolicyAssignment::local_checkpointing(&app, k, 16).unwrap()),
            (mapping.clone(), PolicyAssignment::uniform_reexecution(&app, k)),
        ];
        let cache = EstimateCache::new();
        let batched = evaluate_batch(&app, &platform, k, &cache, &candidates, 4);
        for (result, (m, p)) in batched.iter().zip(&candidates) {
            assert_eq!(*result, evaluate_state(&app, &platform, k, m, p));
            assert!(result.is_some());
        }
        // Duplicate state in the batch: at most two estimator runs.
        assert_eq!(cache.stats().entries, 2);
    }
}
