//! The parallel portfolio engine: diversified search workers over a shared
//! estimate cache, with incumbent broadcasting at deterministic round
//! barriers.
//!
//! ## Design
//!
//! A portfolio run is a sequence of **rounds**. Within a round every worker
//! advances independently — its trajectory depends only on its own seeded
//! RNG, its engine (tabu / simulated annealing / greedy descent, reusing
//! the move vocabulary `ftes-opt` exposes) and the round-start incumbent.
//! Workers run on scoped threads and score each sampled neighborhood in
//! one pass through the [batched evaluator](crate::evaluate_batch) — the
//! shared [`EstimateCache`] is probed first, only misses reach the warm
//! kernel. At the round barrier the per-worker archives merge
//! (order-independent, see [`ParetoArchive`]), the global incumbent is
//! recomputed with a canonical tie-break, and workers whose current state
//! is worse than the incumbent adopt it.
//!
//! ## Determinism
//!
//! Thread scheduling can reorder *when* states are evaluated but never
//! *which* states each worker visits: the cache returns identical values
//! regardless of who computed them, archives are order-independent sets,
//! and all cross-worker communication happens at barriers with canonical
//! tie-breaks. Hence: same seed ⇒ identical best state and identical
//! Pareto archive for **any** thread count — the property
//! `tests/determinism.rs` locks in.

use crate::archive::{ArchiveEntry, ParetoArchive};
use crate::cache::{CacheStats, CertifyCache, CertifyProbe, EstimateCache, StateKey};
use crate::pool::{evaluate_batch_keyed, evaluate_state, indexed_parallel, EvaluatorPool};
use ftes_ft::PolicyAssignment;
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, Architecture, FaultModel, Mapping, Time, Transparency};
use ftes_opt::{
    apply_move, constructive_mapping, sample_move, OptError, PolicyMoves, SearchConfig, Synthesized,
};
use ftes_sched::{BoundedCert, CertOutcome, Certifier, CertifyConfig, EvaluatorStats};
use ftes_tdma::Platform;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::Mutex;

/// Error produced by the exploration engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExploreError {
    /// The initial configuration could not be constructed or evaluated.
    Infeasible(OptError),
    /// The configuration is structurally invalid (empty portfolio, zero
    /// rounds, …).
    BadConfig(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Infeasible(e) => write!(f, "no feasible starting point: {e}"),
            ExploreError::BadConfig(msg) => write!(f, "bad exploration config: {msg}"),
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Infeasible(e) => Some(e),
            ExploreError::BadConfig(_) => None,
        }
    }
}

impl From<OptError> for ExploreError {
    fn from(e: OptError) -> Self {
        ExploreError::Infeasible(e)
    }
}

/// The metaheuristic a portfolio worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Tabu search (the paper's MXR engine) with per-worker tenure.
    Tabu,
    /// Simulated annealing with geometric cooling.
    Anneal,
    /// Greedy steepest descent (only improving moves).
    Greedy,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::Tabu => "tabu",
            EngineKind::Anneal => "anneal",
            EngineKind::Greedy => "greedy",
        };
        write!(f, "{s}")
    }
}

/// One diversified worker of the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSpec {
    /// Which engine the worker runs.
    pub engine: EngineKind,
    /// Mixed into the portfolio seed so workers decorrelate.
    pub seed_offset: u64,
    /// Candidate moves sampled (and batch-evaluated) per iteration.
    pub neighborhood: usize,
    /// Tabu tenure (ignored by non-tabu engines).
    pub tenure: usize,
}

/// The default diversified portfolio: two tabu workers with different
/// tenures/neighborhoods, one annealer, one greedy descender.
pub fn default_portfolio() -> Vec<WorkerSpec> {
    vec![
        WorkerSpec { engine: EngineKind::Tabu, seed_offset: 1, neighborhood: 24, tenure: 8 },
        WorkerSpec { engine: EngineKind::Tabu, seed_offset: 2, neighborhood: 12, tenure: 4 },
        WorkerSpec { engine: EngineKind::Anneal, seed_offset: 3, neighborhood: 16, tenure: 0 },
        WorkerSpec { engine: EngineKind::Greedy, seed_offset: 4, neighborhood: 32, tenure: 0 },
    ]
}

/// Tunables of a portfolio exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// The diversified workers (must be non-empty).
    pub workers: Vec<WorkerSpec>,
    /// Synchronization rounds (incumbent broadcast + archive merge).
    pub rounds: usize,
    /// Search iterations each worker runs per round.
    pub iterations_per_round: usize,
    /// Total threads the engine may occupy (bounds how many workers run
    /// concurrently; each worker scores its neighborhoods through one warm
    /// kernel, so there is no per-candidate fan-out below the workers).
    pub threads: usize,
    /// Cap on checkpoint counts in candidate policies.
    pub max_checkpoints: u32,
    /// Master seed; worker seeds derive from it and their `seed_offset`.
    pub seed: u64,
    /// Certify-guided incumbents: candidates that would become a worker's
    /// best under the estimate are incrementally exact-certified against
    /// the deadline first (bounded, memo-backed), and refuted states are
    /// demoted *during* the search instead of post hoc. Worker certifiers
    /// run unbudgeted and verdicts are shared through a pending-reserving
    /// cache, so trajectories and counters stay thread-count-deterministic.
    pub certify_guided: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            workers: default_portfolio(),
            rounds: 4,
            iterations_per_round: 30,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_checkpoints: 16,
            seed: 1,
            certify_guided: false,
        }
    }
}

impl PortfolioConfig {
    /// A down-scaled configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        PortfolioConfig {
            rounds: 2,
            iterations_per_round: 8,
            threads: 2,
            seed,
            ..PortfolioConfig::default()
        }
    }
}

/// Result of one portfolio exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The single-objective incumbent, rebuilt as a full [`Synthesized`]
    /// configuration (mapping, policies, replica placement, estimate).
    pub best: Synthesized,
    /// The Pareto front over (worst-case, recovery slack, table cost).
    pub archive: ParetoArchive,
    /// Estimate-cache counters for the whole run.
    pub cache: CacheStats,
    /// Evaluator-kernel counters (constructions, full/delta evaluations,
    /// reuse) aggregated over the per-thread pool.
    pub evals: EvaluatorStats,
    /// Certify-guided admit-cache counters (all zero when
    /// [`PortfolioConfig::certify_guided`] is off). Deterministic for any
    /// thread count, like the estimate-cache counters.
    pub certify: CacheStats,
}

/// A worker's private search state between rounds.
struct Worker {
    spec: WorkerSpec,
    rng: ChaCha8Rng,
    current: Candidate,
    best: Candidate,
    tabu_until: Vec<usize>,
    iteration: usize,
    temperature: f64,
}

/// A candidate state plus its evaluation (always feasible by construction).
#[derive(Clone)]
struct Candidate {
    mapping: Mapping,
    policies: PolicyAssignment,
    estimate: ftes_sched::Estimate,
    key: StateKey,
}

impl Candidate {
    fn new(mapping: Mapping, policies: PolicyAssignment, estimate: ftes_sched::Estimate) -> Self {
        let key = StateKey::encode(&mapping, &policies);
        Candidate { mapping, policies, estimate, key }
    }

    /// Search objective: worst case, fault-free tie-break, canonical key as
    /// the final deterministic tie-break.
    fn objective(&self) -> (Time, Time, &StateKey) {
        (self.estimate.worst_case_length, self.estimate.fault_free_length, &self.key)
    }
}

/// The certify-guided admission gate of one worker: an incremental
/// [`Certifier`] (anchored FT-CPG rebuilds + subtree memo, unbudgeted so
/// verdicts are pure facts of the state) behind the shared admit cache.
struct Guard<'a> {
    certifier: &'a mut Certifier,
    cache: &'a CertifyCache,
    app: &'a Application,
    arch: &'a Architecture,
    deadline: Time,
}

impl Guard<'_> {
    /// Whether `candidate` may become a worker's best. Demotes (returns
    /// `false`) only on explicit negative exact evidence: a bounded run
    /// that pruned past the deadline, or an exact schedule that misses it.
    fn admits(&mut self, candidate: &Candidate) -> bool {
        // The estimate already prices the candidate past the deadline:
        // certifying cannot improve the verdict the ranking gives it, so
        // admit untested (mirrors the repair-loop guard in `ftes-opt`).
        if candidate.estimate.worst_case_length > self.deadline {
            return true;
        }
        match self.cache.probe_or_reserve(&candidate.key) {
            CertifyProbe::Ready(admit) => admit,
            CertifyProbe::Pending | CertifyProbe::Reserved => {
                let admit = self.certify(candidate);
                self.cache.resolve(candidate.key.clone(), admit);
                admit
            }
        }
    }

    fn certify(&mut self, candidate: &Candidate) -> bool {
        let copies = match CopyMapping::from_base(
            self.app,
            self.arch,
            &candidate.mapping,
            &candidate.policies,
        ) {
            Ok(copies) => copies,
            // Candidates reached here evaluated feasible; a placement
            // failure means no exact evidence either way — admit.
            Err(_) => return true,
        };
        match self.certifier.certify_bounded(&copies, &candidate.policies, self.deadline) {
            Ok(BoundedCert::Verdict(CertOutcome::Exact { exact_len, deadline_met })) => {
                self.certifier.record_estimate(exact_len, candidate.estimate.worst_case_length);
                deadline_met
            }
            // Estimate-only regime (FT-CPG over the size budget): no exact
            // evidence — admit, exactly like the post-hoc walk would.
            Ok(BoundedCert::Verdict(CertOutcome::OverBudget)) => true,
            Ok(BoundedCert::Pruned { .. }) => false,
            // Hard construction/scheduling failures degrade to the
            // estimate-only regime rather than aborting the search.
            Err(_) => true,
        }
    }
}

/// Runs the parallel portfolio exploration.
///
/// # Errors
///
/// Returns [`ExploreError::BadConfig`] for an empty portfolio or a zero
/// round/iteration budget, and [`ExploreError::Infeasible`] when no feasible
/// starting configuration exists.
pub fn explore(
    app: &Application,
    platform: &Platform,
    k: u32,
    config: &PortfolioConfig,
) -> Result<Exploration, ExploreError> {
    if config.workers.is_empty() {
        return Err(ExploreError::BadConfig("portfolio has no workers".into()));
    }
    if config.rounds == 0 || config.iterations_per_round == 0 {
        return Err(ExploreError::BadConfig("rounds and iterations must be positive".into()));
    }

    // Deterministic feasible starting point (same as the serial strategies).
    let initial_mapping = constructive_mapping(app, platform.architecture())
        .map_err(|e| ExploreError::Infeasible(OptError::from(e)))?;
    let initial_policies = PolicyAssignment::uniform_reexecution(app, k);
    // One warm evaluator kernel per evaluation thread for the whole run.
    let pool = EvaluatorPool::new(app, platform, k, config.threads.max(1));
    let initial_estimate = pool
        .with(0, |ev| evaluate_state(ev, &initial_mapping, &initial_policies))
        .ok_or_else(|| {
            ExploreError::Infeasible(OptError::NoFeasibleConfiguration(
                "initial re-execution configuration is infeasible".into(),
            ))
        })?;
    let initial = Candidate::new(initial_mapping, initial_policies, initial_estimate);

    let cache = EstimateCache::new();
    // Seed the cache with the initial state so workers hit it immediately.
    cache.get_or_compute(initial.key.clone(), || Some(initial.estimate));

    let worker_count = config.workers.len();
    let worker_threads = config.threads.clamp(1, worker_count);

    let workers: Vec<Mutex<Worker>> = config
        .workers
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            // Decorrelate workers: golden-ratio mix of master seed, offset
            // and index.
            let seed = config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(spec.seed_offset)
                .wrapping_add((i as u64) << 32);
            Mutex::new(Worker {
                spec: *spec,
                rng: ChaCha8Rng::seed_from_u64(seed),
                current: initial.clone(),
                best: initial.clone(),
                tabu_until: vec![0; app.process_count()],
                iteration: 0,
                temperature: (initial.estimate.worst_case_length.as_f64() * 0.05).max(1.0),
            })
        })
        .collect();

    let mut archive = ParetoArchive::new();
    archive.insert(ArchiveEntry::new(
        initial.mapping.clone(),
        initial.policies.clone(),
        initial.estimate,
    ));

    // Certify-guided mode: one incremental certifier per worker (anchors
    // and subtree memos are worker-local and stay warm across rounds), one
    // shared admit cache. The work budget is unlimited on purpose — a
    // budget would make verdicts depend on which worker certified first,
    // breaking the thread-count determinism contract.
    let certify_cache = CertifyCache::new();
    let certifiers: Option<Vec<Mutex<Certifier>>> = config.certify_guided.then(|| {
        (0..worker_count)
            .map(|_| {
                Mutex::new(Certifier::new(
                    app,
                    platform,
                    FaultModel::new(k),
                    &Transparency::none(),
                    CertifyConfig { max_exact_runs: u64::MAX, ..CertifyConfig::default() },
                ))
            })
            .collect()
    });

    for _ in 0..config.rounds {
        // Workers advance in parallel; each returns its round archive.
        let round_archives: Vec<ParetoArchive> =
            indexed_parallel(worker_count, worker_threads, |thread, i| {
                let mut worker = workers[i].lock().expect("worker state poisoned");
                let mut certifier = certifiers
                    .as_ref()
                    .map(|slots| slots[i].lock().expect("worker certifier poisoned"));
                let guard = certifier.as_mut().map(|certifier| Guard {
                    certifier,
                    cache: &certify_cache,
                    app,
                    arch: platform.architecture(),
                    deadline: app.deadline(),
                });
                run_round(app, platform, k, config, &cache, &pool, thread, &mut worker, guard)
            });
        for local in round_archives {
            archive.merge(local);
        }
        // Barrier: recompute the incumbent with a canonical tie-break and
        // broadcast it to workers that fell behind.
        let incumbent = workers
            .iter()
            .map(|w| w.lock().expect("worker state poisoned").best.clone())
            .min_by(|a, b| a.objective().cmp(&b.objective()))
            .expect("portfolio is non-empty");
        for slot in &workers {
            let mut worker = slot.lock().expect("worker state poisoned");
            if incumbent.objective() < worker.best.objective() {
                worker.best = incumbent.clone();
            }
            if incumbent.objective() < worker.current.objective() {
                worker.current = incumbent.clone();
            }
        }
    }

    let best = workers
        .into_iter()
        .map(|w| w.into_inner().expect("worker state poisoned").best)
        .min_by(|a, b| a.objective().cmp(&b.objective()))
        .expect("portfolio is non-empty");
    // Rebuild the full synthesized configuration (replica placement) for
    // the winner; its feasibility was established when it was evaluated.
    let best = pool.with(0, |ev| Synthesized::evaluate_with(ev, best.mapping, best.policies))?;

    Ok(Exploration {
        best,
        archive,
        cache: cache.stats(),
        evals: pool.stats(),
        certify: certify_cache.stats(),
    })
}

/// Advances one worker by `iterations_per_round` batched iterations.
/// `thread` is the worker's scoped-thread slot, passed through as the
/// preferred evaluator-pool slot so concurrent workers keep their own warm
/// kernel.
#[allow(clippy::too_many_arguments)]
fn run_round(
    app: &Application,
    platform: &Platform,
    k: u32,
    config: &PortfolioConfig,
    cache: &EstimateCache,
    pool: &EvaluatorPool,
    thread: usize,
    worker: &mut Worker,
    mut guard: Option<Guard<'_>>,
) -> ParetoArchive {
    let search = SearchConfig {
        neighborhood: worker.spec.neighborhood,
        tenure: worker.spec.tenure,
        max_checkpoints: config.max_checkpoints,
        ..SearchConfig::default()
    };
    let arch = platform.architecture();
    let mut local_archive = ParetoArchive::new();

    for _ in 0..config.iterations_per_round {
        // 1. Sample the whole neighborhood without evaluating.
        let mut moves = Vec::with_capacity(worker.spec.neighborhood);
        for _ in 0..worker.spec.neighborhood {
            if let Some(mv) = sample_move(
                app,
                &worker.current.mapping,
                &worker.current.policies,
                k,
                PolicyMoves::Full,
                search,
                &mut worker.rng,
            ) {
                moves.push(mv);
            }
        }
        let mut move_idxs = Vec::with_capacity(moves.len());
        let mut batch: Vec<(Mapping, PolicyAssignment)> = Vec::with_capacity(moves.len());
        for (i, mv) in moves.iter().enumerate() {
            if let Some(state) =
                apply_move(app, arch, &worker.current.mapping, &worker.current.policies, mv)
            {
                move_idxs.push(i);
                batch.push(state);
            }
        }

        // 2. One cache-backed kernel batch pass for the whole neighborhood,
        // anchored at the worker's current state; keys come back alongside
        // so candidates need no re-encoding.
        let anchor = (&worker.current.mapping, &worker.current.policies);
        let keyed = evaluate_batch_keyed(pool, cache, Some(anchor), &batch, thread);

        // 3. Feasible candidates, in sample order.
        let mut candidates: Vec<(usize, Candidate)> = Vec::with_capacity(batch.len());
        for ((move_idx, (mapping, policies)), (key, estimate)) in
            move_idxs.into_iter().zip(batch).zip(keyed)
        {
            if let Some(estimate) = estimate {
                let candidate = Candidate { mapping, policies, estimate, key };
                local_archive.insert(ArchiveEntry::new(
                    candidate.mapping.clone(),
                    candidate.policies.clone(),
                    candidate.estimate,
                ));
                candidates.push((move_idx, candidate));
            }
        }

        // 4. Engine-specific acceptance.
        match worker.spec.engine {
            EngineKind::Tabu => accept_tabu(worker, &mut guard, &moves, candidates),
            EngineKind::Greedy => accept_greedy(worker, &mut guard, candidates),
            EngineKind::Anneal => accept_anneal(worker, &mut guard, candidates),
        }
        worker.iteration += 1;
    }
    local_archive
}

/// Promotes `candidate` to the worker's best if it wins the objective and —
/// in certify-guided mode — survives the exact admission gate. A demoted
/// candidate still becomes `current` in the accept functions (the search
/// walks through it), it just can never be reported as an incumbent.
fn touch_best(worker: &mut Worker, guard: &mut Option<Guard<'_>>, candidate: &Candidate) {
    if candidate.objective() < worker.best.objective() {
        if let Some(guard) = guard.as_mut() {
            if !guard.admits(candidate) {
                return;
            }
        }
        worker.best = candidate.clone();
    }
}

fn accept_tabu(
    worker: &mut Worker,
    guard: &mut Option<Guard<'_>>,
    moves: &[ftes_opt::CandidateMove],
    candidates: Vec<(usize, Candidate)>,
) {
    let iteration = worker.iteration;
    let mut chosen: Option<(usize, Candidate)> = None;
    for (move_idx, candidate) in candidates {
        let process = moves[move_idx].process();
        let aspiration = candidate.objective() < worker.best.objective();
        if worker.tabu_until[process.index()] > iteration && !aspiration {
            continue;
        }
        let better =
            chosen.as_ref().map(|(_, c)| candidate.objective() < c.objective()).unwrap_or(true);
        if better {
            chosen = Some((move_idx, candidate));
        }
    }
    if let Some((move_idx, next)) = chosen {
        worker.tabu_until[moves[move_idx].process().index()] = iteration + worker.spec.tenure;
        touch_best(worker, guard, &next);
        worker.current = next;
    }
}

fn accept_greedy(
    worker: &mut Worker,
    guard: &mut Option<Guard<'_>>,
    candidates: Vec<(usize, Candidate)>,
) {
    // Same rule as the serial `greedy_descent`: take the best sampled move,
    // and only if it strictly improves the current state.
    let mut best_move: Option<Candidate> = None;
    for (_, candidate) in candidates {
        let improves = match &best_move {
            Some(best) => candidate.objective() < best.objective(),
            None => candidate.objective() < worker.current.objective(),
        };
        if improves {
            best_move = Some(candidate);
        }
    }
    if let Some(next) = best_move {
        touch_best(worker, guard, &next);
        worker.current = next;
    }
}

fn accept_anneal(
    worker: &mut Worker,
    guard: &mut Option<Guard<'_>>,
    candidates: Vec<(usize, Candidate)>,
) {
    for (_, candidate) in candidates {
        let delta = (candidate.estimate.worst_case_length
            - worker.current.estimate.worst_case_length)
            .as_f64();
        let accept =
            delta <= 0.0 || worker.rng.gen_bool((-delta / worker.temperature).exp().min(1.0));
        if accept {
            touch_best(worker, guard, &candidate);
            worker.current = candidate;
        }
    }
    worker.temperature = (worker.temperature * 0.95).max(1e-3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_gen::{generate_application, GeneratorConfig};
    use ftes_model::samples;

    fn fig3_platform() -> (Application, Platform) {
        let (app, arch) = samples::fig3();
        let nodes = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(nodes, Time::new(8)).unwrap()).unwrap();
        (app, platform)
    }

    #[test]
    fn explore_beats_or_matches_the_initial_state() {
        let (app, platform) = fig3_platform();
        let initial_mapping = constructive_mapping(&app, platform.architecture()).unwrap();
        let initial = Synthesized::evaluate(
            &app,
            &platform,
            initial_mapping,
            PolicyAssignment::uniform_reexecution(&app, 2),
            2,
        )
        .unwrap();
        let result = explore(&app, &platform, 2, &PortfolioConfig::quick(5)).unwrap();
        assert!(result.best.estimate.worst_case_length <= initial.estimate.worst_case_length);
        result.best.policies.validate(2).unwrap();
        assert!(!result.archive.is_empty());
        assert!(result.cache.misses > 0);
    }

    #[test]
    fn archive_front_is_mutually_non_dominated() {
        let app = generate_application(&GeneratorConfig::new(10, 3), 3).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let result = explore(&app, &platform, 2, &PortfolioConfig::quick(9)).unwrap();
        let entries = result.archive.entries();
        for a in entries {
            for b in entries {
                assert!(!a.objectives.dominates(&b.objectives) || a.objectives == b.objectives);
            }
        }
        // The incumbent is on the front.
        let best = result.archive.best_by_worst_case().unwrap();
        assert_eq!(best.estimate.worst_case_length, result.best.estimate.worst_case_length);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let app = generate_application(&GeneratorConfig::new(12, 3), 7).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let run = |threads: usize| {
            let config = PortfolioConfig { threads, ..PortfolioConfig::quick(11) };
            explore(&app, &platform, 2, &config).unwrap()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial.archive.signature(), parallel.archive.signature());
        assert_eq!(serial.best.estimate, parallel.best.estimate);
        assert_eq!(serial.best.mapping, parallel.best.mapping);
    }

    #[test]
    fn certify_guided_results_do_not_depend_on_thread_count() {
        let app = generate_application(&GeneratorConfig::new(12, 3), 7).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let run = |threads: usize| {
            let config =
                PortfolioConfig { threads, certify_guided: true, ..PortfolioConfig::quick(11) };
            explore(&app, &platform, 1, &config).unwrap()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial.archive.signature(), parallel.archive.signature());
        assert_eq!(serial.best.estimate, parallel.best.estimate);
        assert_eq!(serial.best.mapping, parallel.best.mapping);
        // The admit-cache accounting is part of the deterministic surface:
        // the pending reservation pins one miss per unique admitted state.
        assert_eq!(serial.certify, parallel.certify);
        assert!(
            serial.certify.misses > 0,
            "the guided run must actually certify incumbents: {:?}",
            serial.certify
        );
    }

    #[test]
    fn certify_guided_incumbent_is_exactly_schedulable_or_estimate_refuted() {
        let app = generate_application(&GeneratorConfig::new(10, 3), 3).unwrap();
        let platform = Platform::homogeneous(3, Time::new(8)).unwrap();
        let config = PortfolioConfig { certify_guided: true, ..PortfolioConfig::quick(5) };
        let result = explore(&app, &platform, 1, &config).unwrap();
        // The guard admits two classes of best: exact-certified states, and
        // states the estimate itself already prices past the deadline
        // (certifying those cannot change their ranking). Either way the
        // reported incumbent can never be an estimate-optimistic fraud that
        // a bounded exact run had already refuted.
        if result.best.estimate.worst_case_length <= app.deadline() {
            let mut certifier = Certifier::new(
                &app,
                &platform,
                FaultModel::new(1),
                &Transparency::none(),
                CertifyConfig::default(),
            );
            let verdict = certifier.certify(&result.best.copies, &result.best.policies).unwrap();
            assert!(verdict.is_certified(), "guided incumbent must certify: {verdict:?}");
        }
    }

    #[test]
    fn certify_guided_off_reports_zero_certify_counters() {
        let (app, platform) = fig3_platform();
        let result = explore(&app, &platform, 1, &PortfolioConfig::quick(2)).unwrap();
        assert_eq!(result.certify, CacheStats::default());
    }

    #[test]
    fn cache_hits_accumulate_across_workers() {
        let (app, platform) = fig3_platform();
        let result = explore(&app, &platform, 1, &PortfolioConfig::quick(2)).unwrap();
        assert!(result.cache.hits > 0, "portfolio revisits states; the cache must absorb them");
    }

    #[test]
    fn bad_configs_are_rejected() {
        let (app, platform) = fig3_platform();
        let empty = PortfolioConfig { workers: vec![], ..PortfolioConfig::quick(1) };
        assert!(matches!(explore(&app, &platform, 1, &empty), Err(ExploreError::BadConfig(_))));
        let zero = PortfolioConfig { rounds: 0, ..PortfolioConfig::quick(1) };
        assert!(matches!(explore(&app, &platform, 1, &zero), Err(ExploreError::BadConfig(_))));
    }
}
