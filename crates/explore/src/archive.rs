//! Pareto archive over the §3.3 design trade-off.
//!
//! The paper's transparency discussion (§3.3) frames synthesis as a
//! three-way tension: worst-case schedule length, the slack reserved for
//! fault handling, and the size of the conditional schedule tables the
//! nodes must store. The archive keeps every non-dominated candidate the
//! portfolio visits, so one exploration yields the whole trade-off front
//! instead of a single incumbent.
//!
//! **Order independence.** The archive's final contents are a pure function
//! of the *set* of inserted entries: dominance does not depend on insertion
//! order, and ties on the full objective vector are broken by the smallest
//! canonical state encoding. This is what makes the engine's results
//! reproducible regardless of thread count.

use crate::cache::StateKey;
use ftes_ft::PolicyAssignment;
use ftes_model::{Mapping, Time};
use ftes_sched::Estimate;

/// The minimized objective vector of one candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Objectives {
    /// Estimated worst-case schedule length under `k` faults.
    pub worst_case: Time,
    /// Recovery slack `worst_case − fault_free`: time reserved purely for
    /// fault handling (the §6 fault-tolerance-overhead numerator).
    pub recovery_slack: Time,
    /// Schedule-table size proxy: potential executions across all copies
    /// (see [`table_cost`]), the §3.3 memory axis.
    pub table_cost: u64,
}

impl Objectives {
    /// Objectives of an evaluated candidate.
    pub fn of(estimate: &Estimate, policies: &PolicyAssignment) -> Self {
        Objectives {
            worst_case: estimate.worst_case_length,
            recovery_slack: estimate.recovery_slack(),
            table_cost: table_cost(policies),
        }
    }

    /// `true` when `self` is at least as good on every axis and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let le = self.worst_case <= other.worst_case
            && self.recovery_slack <= other.recovery_slack
            && self.table_cost <= other.table_cost;
        le && self != other
    }
}

/// Schedule-table size proxy of a policy assignment: the number of distinct
/// execution variants the conditional tables must provision — for each copy
/// of each process, its fault-free start plus one re-activation per
/// recovery, each multiplied by the copy's checkpoint segments.
///
/// This tracks the FT-CPG node count (and therefore table entries) without
/// building the graph, which would defeat the point of a fast in-loop
/// objective.
pub fn table_cost(policies: &PolicyAssignment) -> u64 {
    policies
        .iter()
        .map(|(_, policy)| {
            policy
                .copies()
                .iter()
                .map(|c| (1 + c.recoveries as u64) * c.checkpoints.max(1) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// One archived non-dominated candidate.
#[derive(Debug, Clone)]
pub struct ArchiveEntry {
    /// Objective vector (minimized).
    pub objectives: Objectives,
    /// Process mapping `M` of the candidate.
    pub mapping: Mapping,
    /// Policy assignment `F` of the candidate.
    pub policies: PolicyAssignment,
    /// The candidate's estimate.
    pub estimate: Estimate,
    /// Canonical state key (identity + deterministic tie-break).
    pub key: StateKey,
}

impl ArchiveEntry {
    /// Builds an entry from an evaluated candidate state.
    pub fn new(mapping: Mapping, policies: PolicyAssignment, estimate: Estimate) -> Self {
        let key = StateKey::encode(&mapping, &policies);
        let objectives = Objectives::of(&estimate, &policies);
        ArchiveEntry { objectives, mapping, policies, estimate, key }
    }
}

/// The set of non-dominated candidates seen so far, kept in canonical
/// `(objectives, key)` order.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    entries: Vec<ArchiveEntry>,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a candidate. Returns `true` if it was admitted (not dominated
    /// by, nor an objective-tie with a canonically smaller, existing
    /// entry). Admission evicts every entry the candidate dominates.
    pub fn insert(&mut self, entry: ArchiveEntry) -> bool {
        for existing in &self.entries {
            if existing.objectives.dominates(&entry.objectives) {
                return false;
            }
            if existing.objectives == entry.objectives && existing.key <= entry.key {
                return false;
            }
        }
        self.entries.retain(|e| {
            let evicted = entry.objectives.dominates(&e.objectives)
                || (e.objectives == entry.objectives && entry.key < e.key);
            !evicted
        });
        let at = self
            .entries
            .partition_point(|e| (e.objectives, &e.key) < (entry.objectives, &entry.key));
        self.entries.insert(at, entry);
        true
    }

    /// Merges another archive in (used at portfolio round barriers).
    pub fn merge(&mut self, other: ParetoArchive) {
        for entry in other.entries {
            self.insert(entry);
        }
    }

    /// The non-dominated entries in canonical order.
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// Number of archived candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry minimizing `(worst_case, recovery_slack, table_cost, key)`
    /// — the single-objective incumbent the paper's §6 metric would pick.
    pub fn best_by_worst_case(&self) -> Option<&ArchiveEntry> {
        // Canonical order sorts by the objective tuple first, so the head
        // entry is exactly the lexicographic minimum.
        self.entries.first()
    }

    /// A compact, deterministic fingerprint `(objectives, key hash)` per
    /// entry: what the determinism tests and reports compare.
    pub fn signature(&self) -> Vec<(Objectives, u64)> {
        self.entries.iter().map(|e| (e.objectives, e.key.hash64())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_model::{samples, Mapping, ProcessId};

    fn entry(worst: i64, slack: i64, seed_policy_k: u32) -> ArchiveEntry {
        // Distinct `seed_policy_k` gives distinct keys and table costs.
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, seed_policy_k);
        let estimate = Estimate {
            fault_free_length: Time::new(worst - slack),
            worst_case_length: Time::new(worst),
            critical_process: ProcessId::new(0),
        };
        ArchiveEntry::new(mapping, policies, estimate)
    }

    #[test]
    fn dominance_is_strict() {
        let a = entry(100, 20, 1).objectives;
        let b = entry(100, 20, 1).objectives;
        assert!(!a.dominates(&b), "equal vectors do not dominate");
        let worse = entry(120, 30, 1).objectives;
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
    }

    #[test]
    fn archive_keeps_only_non_dominated() {
        let mut archive = ParetoArchive::new();
        assert!(archive.insert(entry(100, 30, 2)));
        // Dominated: strictly worse everywhere (same k => same table cost).
        assert!(!archive.insert(entry(120, 40, 2)));
        // Trade-off: worse worst-case but smaller table (k=1).
        assert!(archive.insert(entry(110, 35, 1)));
        assert_eq!(archive.len(), 2);
        // A dominator evicts.
        assert!(archive.insert(entry(90, 20, 2)));
        assert!(archive.entries().iter().all(|e| e.objectives.worst_case != Time::new(100)));
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let pool = [
            entry(100, 30, 2),
            entry(90, 25, 3),
            entry(110, 20, 1),
            entry(95, 40, 2),
            entry(90, 25, 3),
        ];
        // All 2^… permutations are overkill; rotate + reverse covers the
        // interesting interleavings.
        let mut signatures = Vec::new();
        for rot in 0..pool.len() {
            let mut archive = ParetoArchive::new();
            for i in 0..pool.len() {
                archive.insert(pool[(i + rot) % pool.len()].clone());
            }
            signatures.push(archive.signature());
            let mut reversed = ParetoArchive::new();
            for e in pool.iter().rev() {
                reversed.insert(e.clone());
            }
            signatures.push(reversed.signature());
        }
        assert!(signatures.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn best_by_worst_case_is_lexicographic_min() {
        let mut archive = ParetoArchive::new();
        archive.insert(entry(110, 10, 1));
        archive.insert(entry(90, 50, 3));
        assert_eq!(archive.best_by_worst_case().unwrap().objectives.worst_case, Time::new(90));
    }

    #[test]
    fn table_cost_counts_potential_executions() {
        let (app, _) = samples::fig3();
        let reexec = PolicyAssignment::uniform_reexecution(&app, 2);
        // 5 processes × one copy × (1 + 2 recoveries) × max(0,1) segments.
        assert_eq!(table_cost(&reexec), 15);
        let repl = PolicyAssignment::uniform_replication(&app, 2);
        // 5 processes × three plain copies.
        assert_eq!(table_cost(&repl), 15);
        let ckpt = PolicyAssignment::local_checkpointing(&app, 2, 16).unwrap();
        assert!(table_cost(&ckpt) > 15, "checkpoint segments multiply entries");
    }
}
