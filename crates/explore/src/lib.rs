//! # ftes-explore
//!
//! Parallel, cache-accelerated design-space exploration for the FTES
//! synthesis flow — the scale layer over `ftes-opt`'s serial searches.
//!
//! The paper's §6 synthesis evaluates one candidate `(mapping, policy)`
//! state at a time; the 100-process / k = 7 experiment grid is therefore
//! bounded by single-core estimator throughput. This crate lifts that
//! limit with four cooperating pieces:
//!
//! * **Batched neighborhood evaluation** ([`evaluate_batch`]) — a search
//!   iteration samples its whole neighborhood first (via the move
//!   primitives `ftes-opt` exposes), probes the cache for every candidate,
//!   then scores all misses in one cache-warm pass of the SoA evaluator
//!   kernel (`SystemEvaluator::evaluate_batch`), sharing the schedule
//!   prefix across the neighborhood; workers parallelize above it on
//!   scoped threads.
//! * **Memoized estimate cache** ([`EstimateCache`]) — candidate states
//!   are keyed by a canonical, collision-free encoding ([`StateKey`]);
//!   any state revisited by any worker is answered without re-running the
//!   estimator, and infeasibility is cached too.
//! * **Pareto archive** ([`ParetoArchive`]) — every visited candidate is
//!   offered to an order-independent non-dominated archive over the §3.3
//!   trade-off (worst-case length, recovery slack, schedule-table size),
//!   so one run yields the whole front.
//! * **Portfolio of diversified searchers** ([`explore`]) — tabu /
//!   simulated-annealing / greedy workers with distinct seeds and
//!   tunables run concurrently, sharing the cache continuously and
//!   incumbents at deterministic round barriers.
//!
//! A [scenario-suite runner](run_suite) sweeps the §6 experiment grid
//! ([`paper_grid`]: 20–100 processes, 2–6 nodes, k = 3–7) with
//! deterministic per-point seeds and renders [CSV](suite_to_csv) /
//! [JSON](suite_to_json) reports.
//!
//! ## Determinism contract
//!
//! For a fixed configuration (seed included), [`explore`] and
//! [`run_suite`] return identical incumbents and identical Pareto
//! archives for **any** `threads` / `point_parallelism` values. Worker
//! trajectories never depend on thread interleaving: the cache only
//! memoizes pure functions, archives are order-independent sets, and all
//! cross-worker communication happens at round barriers with canonical
//! (`StateKey`) tie-breaks.
//!
//! ## Example
//!
//! ```
//! use ftes_explore::{explore, PortfolioConfig};
//! use ftes_gen::{generate_application, GeneratorConfig};
//! use ftes_model::Time;
//! use ftes_tdma::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = generate_application(&GeneratorConfig::new(12, 3), 1)?;
//! let platform = Platform::homogeneous(3, Time::new(8))?;
//! let config = PortfolioConfig::quick(42);
//! let result = explore(&app, &platform, 2, &config)?;
//! assert!(result.best.estimate.worst_case_length >= result.best.estimate.fault_free_length);
//! assert!(!result.archive.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archive;
mod cache;
mod pool;
mod portfolio;
mod report;
mod suite;

pub use archive::{table_cost, ArchiveEntry, Objectives, ParetoArchive};
pub use cache::{fnv1a64, CacheStats, CertifyCache, CertifyProbe, EstimateCache, Probe, StateKey};
pub use pool::{evaluate_batch, evaluate_state, EvaluatorPool};
pub use portfolio::{
    default_portfolio, explore, EngineKind, Exploration, ExploreError, PortfolioConfig, WorkerSpec,
};
pub use report::{suite_to_csv, suite_to_json};
pub use suite::{
    paper_grid, run_suite, run_suite_streaming, CertifyVerdict, PointOutcome, ScenarioPoint,
    SuiteConfig, SuiteOutcome, VerifyConfig, VerifyOutcome,
};
