//! Memoized estimate cache: a sharded, lock-light map from canonical
//! candidate-state encodings to root-schedule estimates.
//!
//! The portfolio workers of this crate repeatedly revisit states — tabu
//! cycles, annealing re-acceptance, and *cross-worker* convergence on the
//! same basins — and the root-schedule evaluation (now the
//! `ftes_sched::SystemEvaluator` kernel) is the dominant cost of every
//! visit. The cache keys a candidate `(mapping, policies)` state by a
//! canonical byte encoding (exact, collision-free) with a precomputed FNV
//! hash for shard selection, so repeated states never re-run the estimator,
//! no matter which worker or thread saw them first.
//!
//! A cache instance is scoped to one problem instance (one
//! `(application, platform, k)` triple): keys encode only the candidate
//! state, not the context.

use ftes_ft::PolicyAssignment;
use ftes_model::Mapping;
use ftes_sched::Estimate;
// ftes-lint: allow(determinism) reason="hash-keyed estimate lookup only; entries are never iterated into results"
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonical, collision-free key of one candidate `(mapping, policies)`
/// state.
///
/// The byte encoding is exact (two states compare equal iff they are the
/// same design point), totally ordered (used as the deterministic
/// tie-breaker throughout this crate) and carries a precomputed 64-bit FNV
/// hash for cheap shard selection and hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateKey {
    bytes: Vec<u8>,
    hash: u64,
}

impl StateKey {
    /// Encodes a candidate state canonically.
    pub fn encode(mapping: &Mapping, policies: &PolicyAssignment) -> Self {
        let mut bytes = Vec::with_capacity(64);
        for (_, node) in mapping.iter() {
            push_u32(&mut bytes, node.index() as u32);
        }
        // The mapping section has fixed length (one word per process), so
        // the encoding stays self-delimiting without separators.
        for (_, policy) in policies.iter() {
            push_u32(&mut bytes, policy.copies().len() as u32);
            for copy in policy.copies() {
                push_u32(&mut bytes, copy.recoveries);
                push_u32(&mut bytes, copy.checkpoints);
            }
        }
        let hash = fnv1a64(&bytes);
        StateKey { bytes, hash }
    }

    /// The precomputed 64-bit FNV-1a hash of the canonical encoding.
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

impl Hash for StateKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for StateKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StateKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bytes.cmp(&other.bytes)
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// FNV-1a over a byte slice: stable across platforms and runs (unlike the
/// std `DefaultHasher`), dependency-free, good enough dispersion for shard
/// selection.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hit/miss/size snapshot of an [`EstimateCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the estimator.
    pub misses: u64,
    /// Distinct states currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Sums two snapshots (suite-level aggregation).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
        }
    }
}

/// One cached slot. `Ready(None)` caches *infeasibility*, so known-dead
/// states are never re-tried; `Pending` reserves a key whose first prober
/// is still computing it, which pins the miss accounting: exactly one miss
/// per unique key, no matter how probes interleave across workers.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Pending,
    Ready(Option<Estimate>),
}

/// What a [`probe_or_reserve`](EstimateCache::probe_or_reserve) found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The key is cached (`None` = cached infeasibility). Counted as a hit.
    Ready(Option<Estimate>),
    /// Another prober reserved the key and is still computing it. Counted
    /// as a hit (sequentially the reserver would have finished first); the
    /// caller computes the value itself rather than waiting — both arrive
    /// at the same value, and the first
    /// [`resolve`](EstimateCache::resolve) wins.
    Pending,
    /// The key was absent; this call reserved it. Counted as the key's one
    /// miss — the caller must compute and [`resolve`](EstimateCache::resolve).
    Reserved,
}

/// One cache shard.
type Shard = Mutex<HashMap<StateKey, Slot>>;

/// Sharded memo table from [`StateKey`] to the state's estimate.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EstimateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimateCache {
    /// A cache with the default shard count (64: enough that a dozen worker
    /// threads rarely contend on a shard lock).
    pub fn new() -> Self {
        Self::with_shards(64)
    }

    /// A cache with an explicit shard count (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        EstimateCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &StateKey) -> &Shard {
        &self.shards[(key.hash64() % self.shards.len() as u64) as usize]
    }

    /// Returns the cached evaluation of `key`, or runs `compute` and caches
    /// its result. The shard lock is **not** held while computing; the
    /// pending-slot reservation makes the hit/miss accounting
    /// interleaving-independent (a racing prober counts a hit and computes
    /// the — identical — value itself rather than waiting).
    pub fn get_or_compute(
        &self,
        key: StateKey,
        compute: impl FnOnce() -> Option<Estimate>,
    ) -> Option<Estimate> {
        match self.probe_or_reserve(&key) {
            Probe::Ready(value) => return value,
            Probe::Pending | Probe::Reserved => {}
        }
        let value = compute();
        self.resolve(key, value);
        value
    }

    /// Looks `key` up without computing anything, reserving it on a miss.
    /// The batch path probes all candidates first, batch-evaluates only
    /// the [`Probe::Reserved`]/[`Probe::Pending`] ones, and
    /// [`resolve`](EstimateCache::resolve)s the results. The reservation
    /// is what keeps the hit/miss counters deterministic for any thread
    /// count: each unique key misses exactly once — on the probe that
    /// reserved it — and every later probe is a hit, however the workers'
    /// probe→resolve windows interleave.
    pub fn probe_or_reserve(&self, key: &StateKey) -> Probe {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get(key) {
            Some(Slot::Ready(value)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ftes_obs::counter(ftes_obs::names::ESTIMATE_CACHE_HIT, 1);
                Probe::Ready(*value)
            }
            Some(Slot::Pending) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ftes_obs::counter(ftes_obs::names::ESTIMATE_CACHE_HIT, 1);
                Probe::Pending
            }
            None => {
                shard.insert(key.clone(), Slot::Pending);
                self.misses.fetch_add(1, Ordering::Relaxed);
                ftes_obs::counter(ftes_obs::names::ESTIMATE_CACHE_MISS, 1);
                Probe::Reserved
            }
        }
    }

    /// Publishes a computed evaluation, completing a reservation. The
    /// first resolve of a key wins; later ones (racing probers that saw
    /// [`Probe::Pending`] and computed the same value) are no-ops.
    pub fn resolve(&self, key: StateKey, value: Option<Estimate>) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        let slot = shard.entry(key).or_insert(Slot::Pending);
        if matches!(slot, Slot::Pending) {
            *slot = Slot::Ready(value);
        }
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").len())
                .sum(),
        }
    }
}

/// One cached certify-admit slot (see [`CertifyCache`]).
#[derive(Debug, Clone, Copy)]
enum AdmitSlot {
    Pending,
    Ready(bool),
}

/// What a [`probe_or_reserve`](CertifyCache::probe_or_reserve) found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyProbe {
    /// The key's admit verdict is cached. Counted as a hit.
    Ready(bool),
    /// Another prober reserved the key and is still certifying it. Counted
    /// as a hit; the caller certifies the state itself — verdicts are pure
    /// facts of the state, so both arrive at the same answer and the first
    /// [`resolve`](CertifyCache::resolve) wins.
    Pending,
    /// The key was absent; this call reserved it. Counted as the key's one
    /// miss — the caller must certify and
    /// [`resolve`](CertifyCache::resolve).
    Reserved,
}

/// Sharded memo table from [`StateKey`] to a certify-guided admit verdict
/// (`true` = the state may become a worker's best, `false` = demoted).
///
/// Same pending-reservation discipline as [`EstimateCache`], for the same
/// reason: each unique key misses exactly once no matter how worker
/// probe→resolve windows interleave, so the hit/miss counters — part of
/// the deterministic report surface — never depend on thread count.
/// Verdicts must be pure facts of the keyed state (certifiers run
/// unbudgeted in guided mode precisely so a racing prober re-derives the
/// identical answer).
#[derive(Debug)]
pub struct CertifyCache {
    shards: Box<[Mutex<HashMap<StateKey, AdmitSlot>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CertifyCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CertifyCache {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        let shards = 64;
        CertifyCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &StateKey) -> &Mutex<HashMap<StateKey, AdmitSlot>> {
        &self.shards[(key.hash64() % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up without certifying anything, reserving it on a miss.
    pub fn probe_or_reserve(&self, key: &StateKey) -> CertifyProbe {
        let mut shard = self.shard(key).lock().expect("certify cache shard poisoned");
        match shard.get(key) {
            Some(AdmitSlot::Ready(admit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CertifyProbe::Ready(*admit)
            }
            Some(AdmitSlot::Pending) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CertifyProbe::Pending
            }
            None => {
                shard.insert(key.clone(), AdmitSlot::Pending);
                self.misses.fetch_add(1, Ordering::Relaxed);
                CertifyProbe::Reserved
            }
        }
    }

    /// Publishes an admit verdict, completing a reservation. The first
    /// resolve of a key wins; later ones (racing probers that derived the
    /// same verdict) are no-ops.
    pub fn resolve(&self, key: StateKey, admit: bool) {
        let mut shard = self.shard(&key).lock().expect("certify cache shard poisoned");
        let slot = shard.entry(key).or_insert(AdmitSlot::Pending);
        if matches!(slot, AdmitSlot::Pending) {
            *slot = AdmitSlot::Ready(admit);
        }
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("certify cache shard poisoned").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::{samples, Time};

    fn fig3_state() -> (Mapping, PolicyAssignment) {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        (mapping, policies)
    }

    #[test]
    fn keys_are_canonical_and_distinct() {
        let (app, arch) = samples::fig3();
        let (mapping, policies) = fig3_state();
        let a = StateKey::encode(&mapping, &policies);
        let b = StateKey::encode(&mapping, &policies);
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());

        let moved = mapping
            .with_move(&app, &arch, ftes_model::ProcessId::new(0), ftes_model::NodeId::new(1))
            .unwrap();
        let c = StateKey::encode(&moved, &policies);
        assert_ne!(a, c, "different mappings encode differently");

        let mut repol = policies.clone();
        repol.set(ftes_model::ProcessId::new(1), ftes_ft::Policy::replication(2));
        let d = StateKey::encode(&mapping, &repol);
        assert_ne!(a, d, "different policies encode differently");
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let (mapping, policies) = fig3_state();
        let key = StateKey::encode(&mapping, &policies);
        let cache = EstimateCache::with_shards(4);
        let est = Estimate {
            fault_free_length: Time::new(10),
            worst_case_length: Time::new(20),
            critical_process: ftes_model::ProcessId::new(0),
        };
        let mut computed = 0;
        for _ in 0..5 {
            let got = cache.get_or_compute(key.clone(), || {
                computed += 1;
                Some(est)
            });
            assert_eq!(got, Some(est));
        }
        assert_eq!(computed, 1, "estimator runs once");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (4, 1, 1));
        assert!(stats.hit_rate() > 0.79);
    }

    #[test]
    fn infeasibility_is_cached_too() {
        let (mapping, policies) = fig3_state();
        let key = StateKey::encode(&mapping, &policies);
        let cache = EstimateCache::new();
        assert_eq!(cache.get_or_compute(key.clone(), || None), None);
        // Second lookup must not recompute.
        assert_eq!(cache.get_or_compute(key, || panic!("cached")), None);
    }

    #[test]
    fn certify_cache_reserves_once_and_counts_deterministically() {
        let (mapping, policies) = fig3_state();
        let key = StateKey::encode(&mapping, &policies);
        let cache = CertifyCache::new();
        // First probe is the key's one miss; it reserves.
        assert_eq!(cache.probe_or_reserve(&key), CertifyProbe::Reserved);
        // A racing prober sees the pending reservation as a hit and
        // certifies on its own.
        assert_eq!(cache.probe_or_reserve(&key), CertifyProbe::Pending);
        cache.resolve(key.clone(), false);
        // The racer's later (identical) verdict is a no-op: first wins.
        cache.resolve(key.clone(), false);
        assert_eq!(cache.probe_or_reserve(&key), CertifyProbe::Ready(false));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: the hash must never drift across platforms/runs
        // (shard selection and report signatures rely on it).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
