//! Flat-file reports of a suite sweep: CSV for spreadsheets/plots, JSON
//! for downstream tooling (including the `ftes-serve` HTTP service, which
//! returns [`suite_to_json`] bodies verbatim). JSON goes through the shared
//! escaping-aware writer in [`ftes_model::json`], so labels and names need
//! no character-set convention; both formats are byte-deterministic for
//! equal outcomes (wall-clock fields excepted).

use crate::suite::{CertifyVerdict, SuiteOutcome, VerifyOutcome};
use ftes_model::json::JsonWriter;
use std::fmt::Write;

/// Renders `verified` for CSV: `true` / `false` when scenarios were
/// replayed, `skipped` when verification was requested but the point ran
/// estimate-only (nothing to replay), `-` when it was not requested. The
/// two non-verdicts used to collapse into one `-`, which hid unverified
/// incumbents in reports that asked for verification.
fn verified_csv(v: VerifyOutcome) -> &'static str {
    match v {
        VerifyOutcome::Sound => "true",
        VerifyOutcome::Unsound => "false",
        VerifyOutcome::Skipped => "skipped",
        VerifyOutcome::NotRequested => "-",
    }
}

/// Renders `certified` for CSV with the same vocabulary as `verified`.
fn certified_csv(v: CertifyVerdict) -> &'static str {
    match v {
        CertifyVerdict::Certified(_) => "true",
        CertifyVerdict::Refuted(_) => "false",
        CertifyVerdict::Skipped => "skipped",
        CertifyVerdict::NotRequested => "-",
    }
}

/// Renders a suite outcome as CSV (header + one row per grid point).
pub fn suite_to_csv(outcome: &SuiteOutcome) -> String {
    let mut out = String::from(
        // ftes-lint: allow(byte-identity) reason="wall_ms is the documented wall-clock diagnostics column, excluded from byte comparisons"
        "processes,nodes,k,seed,fault_free,worst_case,deadline,schedulable,\
         slack_pct,pareto_size,cache_hits,cache_misses,cache_hit_rate,verified,\
         certified,exact_len,demoted,wall_ms,\
         evaluations,evaluator_reuse,evals_per_sec,certify_hits,certify_misses\n",
    );
    for p in &outcome.points {
        let exact_len =
            p.certified.exact_len().map_or_else(|| "-".to_string(), |t| t.units().to_string());
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.2},{},{},{},{:.4},{},{},{},{},{},{},{},{:.0},{},{}",
            p.point.processes,
            p.point.nodes,
            p.point.k,
            p.point.seed,
            p.fault_free.units(),
            p.worst_case.units(),
            p.deadline.units(),
            p.schedulable,
            p.slack_pct,
            p.archive.len(),
            p.cache.hits,
            p.cache.misses,
            p.cache.hit_rate(),
            verified_csv(p.verified),
            certified_csv(p.certified),
            exact_len,
            p.demoted,
            p.wall.as_millis(),
            p.evals.evaluations(),
            p.evals.reused(),
            p.evals_per_sec(),
            p.certify_cache.hits,
            p.certify_cache.misses,
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders a suite outcome as a compact JSON document with a `points`
/// array, each point carrying its Pareto front and verification verdict,
/// plus sweep-level totals.
pub fn suite_to_json(outcome: &SuiteOutcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("points");
    w.begin_array();
    for p in &outcome.points {
        w.begin_object();
        w.key("label");
        w.string(&p.point.label());
        w.key("processes");
        w.number_usize(p.point.processes);
        w.key("nodes");
        w.number_usize(p.point.nodes);
        w.key("k");
        w.number_u64(p.point.k as u64);
        w.key("seed");
        w.number_u64(p.point.seed);
        w.key("fault_free");
        w.number_i64(p.fault_free.units());
        w.key("worst_case");
        w.number_i64(p.worst_case.units());
        w.key("deadline");
        w.number_i64(p.deadline.units());
        w.key("schedulable");
        w.bool(p.schedulable);
        w.key("slack_pct");
        w.number_f64(p.slack_pct, 2);
        w.key("verified");
        match p.verified {
            VerifyOutcome::Sound => w.bool(true),
            VerifyOutcome::Unsound => w.bool(false),
            VerifyOutcome::Skipped => w.string("skipped"),
            VerifyOutcome::NotRequested => w.null(),
        }
        w.key("certified");
        match p.certified {
            CertifyVerdict::Certified(_) => w.bool(true),
            CertifyVerdict::Refuted(_) => w.bool(false),
            CertifyVerdict::Skipped => w.string("skipped"),
            CertifyVerdict::NotRequested => w.null(),
        }
        w.key("exact_len");
        match p.certified.exact_len() {
            Some(len) => w.number_i64(len.units()),
            None => w.null(),
        }
        w.key("demoted");
        w.number_u64(p.demoted as u64);
        w.key("cache");
        w.begin_object();
        w.key("hits");
        w.number_u64(p.cache.hits);
        w.key("misses");
        w.number_u64(p.cache.misses);
        w.key("entries");
        w.number_usize(p.cache.entries);
        w.end_object();
        w.key("certify_cache");
        w.begin_object();
        w.key("hits");
        w.number_u64(p.certify_cache.hits);
        w.key("misses");
        w.number_u64(p.certify_cache.misses);
        w.key("entries");
        w.number_usize(p.certify_cache.entries);
        w.end_object();
        w.key("evals");
        w.begin_object();
        w.key("constructions");
        w.number_u64(p.evals.constructions);
        w.key("full");
        w.number_u64(p.evals.full_evals);
        w.key("delta");
        w.number_u64(p.evals.delta_evals);
        w.key("reused");
        w.number_u64(p.evals.reused());
        w.end_object();
        // ftes-lint: allow(byte-identity) reason="wall_ms is the documented wall-clock diagnostics column, excluded from byte comparisons"
        w.key("wall_ms");
        w.number_u64(p.wall.as_millis() as u64);
        w.key("pareto");
        w.begin_array();
        for (i, e) in p.archive.entries().iter().enumerate() {
            w.begin_object();
            w.key("worst_case");
            w.number_i64(e.objectives.worst_case.units());
            w.key("recovery_slack");
            w.number_i64(e.objectives.recovery_slack.units());
            w.key("table_cost");
            w.number_u64(e.objectives.table_cost);
            // The front admits only certified points or tags them: `true`
            // certified, `false` refuted by the exact schedule, `null`
            // not examined by the bounded walk.
            w.key("certified");
            match p.front_certified.get(i).copied().flatten() {
                Some(v) => w.bool(v),
                None => w.null(),
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    let totals = outcome.total_cache();
    w.key("total_cache");
    w.begin_object();
    w.key("hits");
    w.number_u64(totals.hits);
    w.key("misses");
    w.number_u64(totals.misses);
    w.key("hit_rate");
    w.number_f64(totals.hit_rate(), 4);
    w.end_object();
    let certify_totals = outcome.total_certify_cache();
    w.key("total_certify_cache");
    w.begin_object();
    w.key("hits");
    w.number_u64(certify_totals.hits);
    w.key("misses");
    w.number_u64(certify_totals.misses);
    w.end_object();
    // `evals_per_sec` stays out of the JSON deliberately: it derives from
    // wall clocks, and the `ftes-serve` byte-identity contract wants equal
    // outcomes to render equal bodies (wall_ms is already the one tolerated
    // exception, at millisecond coarseness). Consumers derive the rate from
    // `evaluations` and `wall_ms`; the CSV and CLI summary print it.
    let evals = outcome.total_evals();
    w.key("total_evals");
    w.begin_object();
    w.key("constructions");
    w.number_u64(evals.constructions);
    w.key("evaluations");
    w.number_u64(evals.evaluations());
    w.key("reused");
    w.number_u64(evals.reused());
    w.end_object();
    // ftes-lint: allow(byte-identity) reason="wall_ms is the documented wall-clock diagnostics column, excluded from byte comparisons"
    w.key("wall_ms");
    w.number_u64(outcome.wall.as_millis() as u64);
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_suite, ScenarioPoint, SuiteConfig, VerifyConfig};
    use crate::PortfolioConfig;
    use ftes_model::Time;

    fn outcome_with(verify: bool, certify: bool) -> SuiteOutcome {
        run_suite(&SuiteConfig {
            points: vec![ScenarioPoint { processes: 8, nodes: 2, k: 1, seed: 0 }],
            portfolio: PortfolioConfig::quick(1),
            point_parallelism: 1,
            slot: Time::new(8),
            verify: verify.then(|| VerifyConfig { samples: 8, ..VerifyConfig::default() }),
            certify,
        })
        .unwrap()
    }

    fn outcome(verify: bool) -> SuiteOutcome {
        outcome_with(verify, true)
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let csv = suite_to_csv(&outcome_with(false, false));
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("processes,nodes,k,seed"));
        assert!(lines[0].contains(",verified,certified,exact_len,demoted,"));
        assert!(lines[1].starts_with("8,2,1,0,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
        // Verification and certification off: both columns render as `-`.
        assert_eq!(lines[1].split(',').nth(13), Some("-"));
        assert_eq!(lines[1].split(',').nth(14), Some("-"));
        assert_eq!(lines[1].split(',').nth(15), Some("-"));
    }

    #[test]
    fn csv_verified_and_certified_columns_carry_the_verdicts() {
        let csv = suite_to_csv(&outcome(true));
        let row = csv.trim_end().lines().nth(1).unwrap();
        let verified = row.split(',').nth(13).unwrap();
        assert!(verified == "true" || verified == "false", "{row}");
        let certified = row.split(',').nth(14).unwrap();
        assert!(certified == "true" || certified == "false", "{row}");
        // A certified/refuted point carries its exact length.
        let exact_len = row.split(',').nth(15).unwrap();
        assert!(exact_len.parse::<i64>().is_ok(), "{row}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = suite_to_json(&outcome_with(false, false));
        // Cheap structural checks (no JSON parser in the workspace).
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"label\"").count(), 1);
        assert!(json.contains("\"pareto\":["));
        assert!(json.contains("\"verified\":null"));
        assert!(json.contains("\"certified\":null"));
        assert!(json.contains("\"exact_len\":null"));
        assert!(json.contains("\"demoted\":0"));
        assert!(json.contains("\"total_cache\""));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_verified_and_certified_fields_carry_the_verdicts() {
        let json = suite_to_json(&outcome(true));
        assert!(
            json.contains("\"verified\":true") || json.contains("\"verified\":false"),
            "{json}"
        );
        assert!(
            json.contains("\"certified\":true") || json.contains("\"certified\":false"),
            "{json}"
        );
        assert!(json.contains("\"exact_len\":"), "{json}");
        // Pareto entries are individually tagged.
        assert!(
            json.contains(",\"certified\":true}")
                || json.contains(",\"certified\":false}")
                || json.contains(",\"certified\":null}"),
            "{json}"
        );
    }

    #[test]
    fn skipped_is_distinct_from_not_requested() {
        // An oversized point with verification requested must render
        // `skipped` (there was nothing to replay), never `-` (not asked).
        // 60 processes at k=5 comfortably exceeds the FT-CPG node budget.
        let outcome = run_suite(&SuiteConfig {
            points: vec![ScenarioPoint { processes: 60, nodes: 4, k: 5, seed: 0 }],
            portfolio: PortfolioConfig::quick(1),
            point_parallelism: 1,
            slot: Time::new(8),
            verify: Some(VerifyConfig { samples: 4, ..VerifyConfig::default() }),
            certify: true,
        })
        .unwrap();
        let p = &outcome.points[0];
        assert_eq!(p.verified, crate::VerifyOutcome::Skipped, "{:?}", p.verified);
        assert_eq!(p.certified, CertifyVerdict::Skipped);
        let csv = suite_to_csv(&outcome);
        let row = csv.trim_end().lines().nth(1).unwrap();
        assert_eq!(row.split(',').nth(13), Some("skipped"), "{row}");
        assert_eq!(row.split(',').nth(14), Some("skipped"), "{row}");
        let json = suite_to_json(&outcome);
        assert!(json.contains("\"verified\":\"skipped\""), "{json}");
        assert!(json.contains("\"certified\":\"skipped\""), "{json}");
    }
}
