//! Flat-file reports of a suite sweep: CSV for spreadsheets/plots, JSON
//! for downstream tooling. Hand-rolled (the workspace is dependency-free
//! by necessity); every emitted value is numeric, boolean or a
//! `[a-z0-9_]` label, so no escaping is required.

use crate::suite::SuiteOutcome;
use std::fmt::Write;

/// Renders a suite outcome as CSV (header + one row per grid point).
pub fn suite_to_csv(outcome: &SuiteOutcome) -> String {
    let mut out = String::from(
        "processes,nodes,k,seed,fault_free,worst_case,deadline,schedulable,\
         slack_pct,pareto_size,cache_hits,cache_misses,cache_hit_rate,wall_ms\n",
    );
    for p in &outcome.points {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.2},{},{},{},{:.4},{}",
            p.point.processes,
            p.point.nodes,
            p.point.k,
            p.point.seed,
            p.fault_free.units(),
            p.worst_case.units(),
            p.deadline.units(),
            p.schedulable,
            p.slack_pct,
            p.archive.len(),
            p.cache.hits,
            p.cache.misses,
            p.cache.hit_rate(),
            p.wall.as_millis(),
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders a suite outcome as a JSON document with a `points` array, each
/// point carrying its Pareto front, and sweep-level totals.
pub fn suite_to_json(outcome: &SuiteOutcome) -> String {
    let mut out = String::from("{\n  \"points\": [");
    for (i, p) in outcome.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "\n    {{\"label\": \"{}\", \"processes\": {}, \"nodes\": {}, \"k\": {}, \
             \"seed\": {}, \"fault_free\": {}, \"worst_case\": {}, \"deadline\": {}, \
             \"schedulable\": {}, \"slack_pct\": {:.2}, \"cache\": {{\"hits\": {}, \
             \"misses\": {}, \"entries\": {}}}, \"wall_ms\": {}, \"pareto\": [",
            p.point.label(),
            p.point.processes,
            p.point.nodes,
            p.point.k,
            p.point.seed,
            p.fault_free.units(),
            p.worst_case.units(),
            p.deadline.units(),
            p.schedulable,
            p.slack_pct,
            p.cache.hits,
            p.cache.misses,
            p.cache.entries,
            p.wall.as_millis(),
        )
        .expect("writing to String cannot fail");
        for (j, e) in p.archive.entries().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"worst_case\": {}, \"recovery_slack\": {}, \"table_cost\": {}}}",
                e.objectives.worst_case.units(),
                e.objectives.recovery_slack.units(),
                e.objectives.table_cost,
            )
            .expect("writing to String cannot fail");
        }
        out.push_str("]}");
    }
    let totals = outcome.total_cache();
    write!(
        out,
        "\n  ],\n  \"total_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n  \
         \"wall_ms\": {}\n}}\n",
        totals.hits,
        totals.misses,
        totals.hit_rate(),
        outcome.wall.as_millis(),
    )
    .expect("writing to String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_suite, ScenarioPoint, SuiteConfig};
    use crate::PortfolioConfig;
    use ftes_model::Time;

    fn outcome() -> SuiteOutcome {
        run_suite(&SuiteConfig {
            points: vec![ScenarioPoint { processes: 8, nodes: 2, k: 1, seed: 0 }],
            portfolio: PortfolioConfig::quick(1),
            point_parallelism: 1,
            slot: Time::new(8),
        })
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let csv = suite_to_csv(&outcome());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("processes,nodes,k,seed"));
        assert!(lines[1].starts_with("8,2,1,0,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = suite_to_json(&outcome());
        // Cheap structural checks (no JSON parser in the workspace).
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"label\"").count(), 1);
        assert!(json.contains("\"pareto\": ["));
        assert!(json.contains("\"total_cache\""));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
