//! Scenario-suite runner: the paper's §6 experiment grid, swept in
//! parallel with deterministic per-point seeds.
//!
//! Each grid point is an independent synthesis problem — generate a random
//! application of the requested size (seeded, so exactly reproducible),
//! build a platform, run the portfolio exploration, and record the
//! incumbent, the Pareto front and the cache counters. Points fan out
//! across scoped threads; because every point derives its own seed from
//! `(suite seed, point)` the results are identical no matter how the
//! points are interleaved.

use crate::cache::{fnv1a64, CacheStats};
use crate::pool::indexed_parallel;
use crate::portfolio::{explore, ExploreError, PortfolioConfig};
use crate::ParetoArchive;
use ftes_ftcpg::{build_ftcpg, BuildConfig, CpgError};
use ftes_gen::{generate_application, GeneratorConfig};
use ftes_model::{Application, FaultModel, Time, Transparency};
use ftes_opt::Synthesized;
use ftes_sched::{schedule_ftcpg, EvaluatorStats, SchedConfig};
use ftes_sim::verify_sampled;
use ftes_tdma::Platform;
use std::time::{Duration, Instant};

/// One point of the experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioPoint {
    /// Number of application processes (the paper sweeps 20–100).
    pub processes: usize,
    /// Number of computation nodes (2–6).
    pub nodes: usize,
    /// Fault budget `k` (3–7).
    pub k: u32,
    /// Workload seed (averaging dimension of the §6 experiments).
    pub seed: u64,
}

impl ScenarioPoint {
    /// Compact label, e.g. `p40_n4_k4_s2` (processes, nodes, k, seed).
    pub fn label(&self) -> String {
        format!("p{}_n{}_k{}_s{}", self.processes, self.nodes, self.k, self.seed)
    }

    fn seed_material(&self) -> [u8; 28] {
        let mut bytes = [0u8; 28];
        bytes[..8].copy_from_slice(&(self.processes as u64).to_le_bytes());
        bytes[8..16].copy_from_slice(&(self.nodes as u64).to_le_bytes());
        bytes[16..20].copy_from_slice(&self.k.to_le_bytes());
        bytes[20..28].copy_from_slice(&self.seed.to_le_bytes());
        bytes
    }
}

/// The §6 sweep (20–100 processes, 2–6 nodes, k = 3–7), `seeds_per_point`
/// workloads per size — the grid behind Fig. 7's averages.
pub fn paper_grid(seeds_per_point: u64) -> Vec<ScenarioPoint> {
    let base = [(20, 4, 3), (40, 4, 4), (60, 5, 5), (80, 6, 6), (100, 6, 7)];
    let mut points = Vec::with_capacity(base.len() * seeds_per_point.max(1) as usize);
    for (processes, nodes, k) in base {
        for seed in 0..seeds_per_point.max(1) {
            points.push(ScenarioPoint { processes, nodes, k, seed });
        }
    }
    points
}

/// Fault-injection verification of suite incumbents (see
/// [`SuiteConfig::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Pseudo-random fault scenarios replayed per point (the fault-free
    /// scenario is always included on top).
    pub samples: usize,
    /// Scenario-sampling seed (independent of the search seed, so turning
    /// verification on never perturbs exploration results).
    pub seed: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig { samples: 64, seed: 0x5eed }
    }
}

/// Configuration of a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteConfig {
    /// The grid points to sweep.
    pub points: Vec<ScenarioPoint>,
    /// Portfolio tunables applied at every point (each point re-derives its
    /// own seed from `portfolio.seed` and the point, so sharing the config
    /// never correlates points).
    pub portfolio: PortfolioConfig,
    /// How many points run concurrently (each already parallel inside).
    pub point_parallelism: usize,
    /// TDMA slot length of the generated platforms.
    pub slot: Time,
    /// When set, each point's incumbent is fault-injected with
    /// [`ftes_sim::verify_sampled`]: the FT-CPG is built and conditionally
    /// scheduled, then sampled scenarios are replayed. The outcome lands in
    /// [`PointOutcome::verified`] (`None` when the FT-CPG exceeds the size
    /// budget — the estimate-only regime has no schedule to verify).
    pub verify: Option<VerifyConfig>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            points: paper_grid(1),
            portfolio: PortfolioConfig::default(),
            point_parallelism: 1,
            slot: Time::new(8),
            verify: None,
        }
    }
}

/// Outcome of one grid point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The grid point.
    pub point: ScenarioPoint,
    /// Fault-free root-schedule length of the incumbent.
    pub fault_free: Time,
    /// Estimated worst-case length of the incumbent.
    pub worst_case: Time,
    /// The generated application's deadline.
    pub deadline: Time,
    /// Whether the incumbent's estimated worst case meets the deadline.
    pub schedulable: bool,
    /// Recovery slack as a percentage of the fault-free length.
    pub slack_pct: f64,
    /// The Pareto front of the point.
    pub archive: ParetoArchive,
    /// Estimate-cache counters of the point.
    pub cache: CacheStats,
    /// Evaluator-kernel counters of the point (constructions, evaluations,
    /// reuse across the per-thread pool).
    pub evals: EvaluatorStats,
    /// Fault-injection verdict of the incumbent: `Some(sound)` when
    /// [`SuiteConfig::verify`] was set and the FT-CPG fit the size budget,
    /// `None` otherwise.
    pub verified: Option<bool>,
    /// Wall-clock time of the point (excluded from determinism checks).
    pub wall: Duration,
}

impl PointOutcome {
    /// Evaluator-kernel throughput of the point: candidate evaluations per
    /// wall-clock second (0 when the point finished too fast to time).
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.evals.evaluations() as f64 / secs
    }
}

/// Outcome of a whole suite sweep.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Per-point outcomes, in grid order.
    pub points: Vec<PointOutcome>,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

impl SuiteOutcome {
    /// Aggregated cache counters across all points.
    pub fn total_cache(&self) -> CacheStats {
        self.points.iter().fold(CacheStats::default(), |acc, p| acc.merged(p.cache))
    }

    /// Aggregated evaluator-kernel counters across all points.
    pub fn total_evals(&self) -> EvaluatorStats {
        self.points.iter().fold(EvaluatorStats::default(), |acc, p| acc.merged(p.evals))
    }

    /// Sweep-level evaluator throughput (evaluations per second).
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_evals().evaluations() as f64 / secs
    }

    /// Deterministic fingerprint of the whole sweep: per point, its label
    /// plus the archive signature (wall-clock excluded by construction).
    pub fn signature(&self) -> Vec<(String, Vec<(crate::Objectives, u64)>)> {
        self.points.iter().map(|p| (p.point.label(), p.archive.signature())).collect()
    }
}

/// Runs the scenario suite.
///
/// # Errors
///
/// Propagates the first [`ExploreError`] (grid order) if any point fails;
/// workload generation failures surface as
/// [`ExploreError::BadConfig`].
pub fn run_suite(config: &SuiteConfig) -> Result<SuiteOutcome, ExploreError> {
    let started = Instant::now();
    // Split the thread budget across concurrent points instead of letting
    // every point fan out at full width (point_parallelism × threads would
    // oversubscribe the machine).
    let concurrent = config.point_parallelism.clamp(1, config.points.len().max(1));
    let threads_per_point = (config.portfolio.threads / concurrent).max(1);
    let results: Vec<Result<PointOutcome, ExploreError>> =
        indexed_parallel(config.points.len(), config.point_parallelism, |_, i| {
            run_point(config, config.points[i], threads_per_point)
        });
    let mut points = Vec::with_capacity(results.len());
    for result in results {
        points.push(result?);
    }
    Ok(SuiteOutcome { points, wall: started.elapsed() })
}

fn run_point(
    config: &SuiteConfig,
    point: ScenarioPoint,
    threads: usize,
) -> Result<PointOutcome, ExploreError> {
    let started = Instant::now();
    let gen_config = GeneratorConfig::new(point.processes, point.nodes);
    let app = generate_application(&gen_config, point.seed)
        .map_err(|e| ExploreError::BadConfig(format!("workload {}: {e}", point.label())))?;
    let platform = Platform::homogeneous(point.nodes, config.slot)
        .map_err(|e| ExploreError::BadConfig(format!("platform {}: {e}", point.label())))?;

    // Per-point portfolio seed: deterministic in (suite seed, point).
    // The thread split never affects results (see the determinism contract).
    let portfolio = PortfolioConfig {
        seed: config.portfolio.seed ^ fnv1a64(&point.seed_material()),
        threads,
        ..config.portfolio.clone()
    };
    let exploration = explore(&app, &platform, point.k, &portfolio)?;
    let verified = match &config.verify {
        None => None,
        Some(vc) => verify_incumbent(&app, &platform, point, &exploration.best, vc)?,
    };

    let estimate = exploration.best.estimate;
    let fault_free = estimate.fault_free_length;
    let worst_case = estimate.worst_case_length;
    let slack_pct = if fault_free > Time::ZERO {
        100.0 * estimate.recovery_slack().as_f64() / fault_free.as_f64()
    } else {
        0.0
    };
    Ok(PointOutcome {
        point,
        fault_free,
        worst_case,
        deadline: app.deadline(),
        schedulable: worst_case <= app.deadline(),
        slack_pct,
        archive: exploration.archive,
        cache: exploration.cache,
        evals: exploration.evals,
        verified,
        wall: started.elapsed(),
    })
}

/// Builds the incumbent's FT-CPG, schedules it and replays sampled fault
/// scenarios. `Ok(None)` means the FT-CPG exceeded the size budget (the
/// estimate-only regime — nothing to verify); hard construction or
/// scheduling failures surface as errors because a synthesized incumbent
/// is supposed to be realizable.
fn verify_incumbent(
    app: &Application,
    platform: &Platform,
    point: ScenarioPoint,
    best: &Synthesized,
    vc: &VerifyConfig,
) -> Result<Option<bool>, ExploreError> {
    let transparency = Transparency::none();
    let label = point.label();
    let cpg = match build_ftcpg(
        app,
        &best.policies,
        &best.copies,
        FaultModel::new(point.k),
        &transparency,
        BuildConfig::default(),
    ) {
        Ok(cpg) => cpg,
        Err(CpgError::GraphTooLarge { .. }) => return Ok(None),
        Err(e) => return Err(ExploreError::BadConfig(format!("verify {label}: {e}"))),
    };
    let schedule = schedule_ftcpg(app, &cpg, platform, SchedConfig::default())
        .map_err(|e| ExploreError::BadConfig(format!("verify {label}: {e}")))?;
    let verdict = verify_sampled(app, &cpg, &schedule, &transparency, vc.samples, vc.seed)
        .map_err(|e| ExploreError::BadConfig(format!("verify {label}: {e}")))?;
    Ok(Some(verdict.is_sound()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite(point_parallelism: usize, threads: usize) -> SuiteConfig {
        SuiteConfig {
            points: vec![
                ScenarioPoint { processes: 8, nodes: 2, k: 1, seed: 0 },
                ScenarioPoint { processes: 10, nodes: 3, k: 2, seed: 1 },
            ],
            portfolio: PortfolioConfig { threads, ..PortfolioConfig::quick(3) },
            point_parallelism,
            slot: Time::new(8),
            verify: None,
        }
    }

    #[test]
    fn suite_runs_all_points_in_order() {
        let outcome = run_suite(&tiny_suite(1, 1)).unwrap();
        assert_eq!(outcome.points.len(), 2);
        assert_eq!(outcome.points[0].point.processes, 8);
        assert_eq!(outcome.points[1].point.processes, 10);
        for p in &outcome.points {
            assert!(p.worst_case >= p.fault_free);
            assert!(!p.archive.is_empty());
        }
        assert!(outcome.total_cache().misses > 0);
        let evals = outcome.total_evals();
        assert!(evals.evaluations() > 0, "points must report kernel work");
        assert!(evals.reused() > 0, "per-thread kernels must be reused within a point");
    }

    #[test]
    fn paper_grid_matches_the_section6_ranges() {
        let grid = paper_grid(2);
        assert_eq!(grid.len(), 10);
        for p in &grid {
            assert!((20..=100).contains(&p.processes));
            assert!((2..=6).contains(&p.nodes));
            assert!((3..=7).contains(&p.k));
        }
    }

    #[test]
    fn point_parallelism_is_observationally_pure() {
        let serial = run_suite(&tiny_suite(1, 1)).unwrap();
        let parallel = run_suite(&tiny_suite(2, 4)).unwrap();
        assert_eq!(serial.signature(), parallel.signature());
    }

    #[test]
    fn verification_reports_sound_incumbents_without_perturbing_results() {
        let off = run_suite(&tiny_suite(1, 1)).unwrap();
        let on = run_suite(&SuiteConfig {
            verify: Some(VerifyConfig { samples: 16, ..VerifyConfig::default() }),
            ..tiny_suite(1, 1)
        })
        .unwrap();
        // Same incumbents/archives: verification is a read-only replay.
        assert_eq!(off.signature(), on.signature());
        for p in &off.points {
            assert_eq!(p.verified, None);
        }
        for p in &on.points {
            // Tiny instances fit the FT-CPG budget, so a verdict must be
            // produced. `false` is a legitimate outcome: the fast
            // estimator the exploration optimizes against is optimistic
            // relative to the exact conditional schedule, and surfacing
            // that gap is what the column is for.
            assert!(p.verified.is_some(), "{}", p.point.label());
        }
        // The verdict itself is deterministic.
        let again = run_suite(&SuiteConfig {
            verify: Some(VerifyConfig { samples: 16, ..VerifyConfig::default() }),
            ..tiny_suite(2, 4)
        })
        .unwrap();
        let verdicts = |o: &SuiteOutcome| o.points.iter().map(|p| p.verified).collect::<Vec<_>>();
        assert_eq!(verdicts(&on), verdicts(&again));
    }
}
