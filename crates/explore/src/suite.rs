//! Scenario-suite runner: the paper's §6 experiment grid, swept in
//! parallel with deterministic per-point seeds.
//!
//! Each grid point is an independent synthesis problem — generate a random
//! application of the requested size (seeded, so exactly reproducible),
//! build a platform, run the portfolio exploration, and record the
//! incumbent, the Pareto front and the cache counters. Points fan out
//! across scoped threads; because every point derives its own seed from
//! `(suite seed, point)` the results are identical no matter how the
//! points are interleaved.

use crate::cache::{fnv1a64, CacheStats, StateKey};
use crate::portfolio::{explore, ExploreError, PortfolioConfig};
use crate::ParetoArchive;
use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping, CpgError, FtCpg};
use ftes_gen::{generate_application, GeneratorConfig};
use ftes_model::{Application, FaultModel, Time, Transparency};
use ftes_opt::Synthesized;
use ftes_sched::{
    schedule_ftcpg, CertOutcome, Certifier, CertifyConfig, ConditionalSchedule, EvaluatorStats,
    SchedConfig,
};
use ftes_sim::verify_sampled;
use ftes_tdma::Platform;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One point of the experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioPoint {
    /// Number of application processes (the paper sweeps 20–100).
    pub processes: usize,
    /// Number of computation nodes (2–6).
    pub nodes: usize,
    /// Fault budget `k` (3–7).
    pub k: u32,
    /// Workload seed (averaging dimension of the §6 experiments).
    pub seed: u64,
}

impl ScenarioPoint {
    /// Compact label, e.g. `p40_n4_k4_s2` (processes, nodes, k, seed).
    pub fn label(&self) -> String {
        format!("p{}_n{}_k{}_s{}", self.processes, self.nodes, self.k, self.seed)
    }

    fn seed_material(&self) -> [u8; 28] {
        let mut bytes = [0u8; 28];
        bytes[..8].copy_from_slice(&(self.processes as u64).to_le_bytes());
        bytes[8..16].copy_from_slice(&(self.nodes as u64).to_le_bytes());
        bytes[16..20].copy_from_slice(&self.k.to_le_bytes());
        bytes[20..28].copy_from_slice(&self.seed.to_le_bytes());
        bytes
    }
}

/// The §6 sweep (20–100 processes, 2–6 nodes, k = 3–7), `seeds_per_point`
/// workloads per size — the grid behind Fig. 7's averages.
pub fn paper_grid(seeds_per_point: u64) -> Vec<ScenarioPoint> {
    let base = [(20, 4, 3), (40, 4, 4), (60, 5, 5), (80, 6, 6), (100, 6, 7)];
    let mut points = Vec::with_capacity(base.len() * seeds_per_point.max(1) as usize);
    for (processes, nodes, k) in base {
        for seed in 0..seeds_per_point.max(1) {
            points.push(ScenarioPoint { processes, nodes, k, seed });
        }
    }
    points
}

/// Fault-injection verification of suite incumbents (see
/// [`SuiteConfig::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Pseudo-random fault scenarios replayed per point (the fault-free
    /// scenario is always included on top).
    pub samples: usize,
    /// Scenario-sampling seed (independent of the search seed, so turning
    /// verification on never perturbs exploration results).
    pub seed: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig { samples: 64, seed: 0x5eed }
    }
}

/// Configuration of a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteConfig {
    /// The grid points to sweep.
    pub points: Vec<ScenarioPoint>,
    /// Portfolio tunables applied at every point (each point re-derives its
    /// own seed from `portfolio.seed` and the point, so sharing the config
    /// never correlates points).
    pub portfolio: PortfolioConfig,
    /// How many points run concurrently (each already parallel inside).
    pub point_parallelism: usize,
    /// TDMA slot length of the generated platforms.
    pub slot: Time,
    /// When set, each point's reported incumbent is fault-injected with
    /// [`ftes_sim::verify_sampled`]: sampled scenarios are replayed against
    /// the exact conditional schedule. The outcome lands in
    /// [`PointOutcome::verified`]; incumbents that verify unsound are
    /// demoted (see [`SuiteConfig::certify`]), never reported as winners.
    pub verify: Option<VerifyConfig>,
    /// Exact certification of reported incumbents (on by default): each
    /// point's winner must be exact-certified schedulable, or the point
    /// walks down its Pareto front (bounded) until a candidate certifies.
    /// Points whose FT-CPG exceeds the size budget are tagged
    /// [`CertifyVerdict::Skipped`] — the estimate-only regime.
    pub certify: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            points: paper_grid(1),
            portfolio: PortfolioConfig::default(),
            point_parallelism: 1,
            slot: Time::new(8),
            verify: None,
            certify: true,
        }
    }
}

/// Exact-certification verdict of a reported suite incumbent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyVerdict {
    /// Certification was disabled ([`SuiteConfig::certify`] = false).
    NotRequested,
    /// The FT-CPG exceeded the size budget (or the certification work
    /// budget ran out) — no exact verdict exists.
    Skipped,
    /// The exact conditional schedule meets every deadline.
    Certified(Time),
    /// The exact conditional schedule misses a deadline; the carried value
    /// is the exact length the estimate under-priced.
    Refuted(Time),
}

impl CertifyVerdict {
    /// The exact schedule length, when one was computed.
    pub fn exact_len(&self) -> Option<Time> {
        match self {
            CertifyVerdict::Certified(len) | CertifyVerdict::Refuted(len) => Some(*len),
            _ => None,
        }
    }

    /// `true` when the incumbent is exact-certified schedulable.
    pub fn is_certified(&self) -> bool {
        matches!(self, CertifyVerdict::Certified(_))
    }
}

/// Fault-injection verdict of a reported suite incumbent. Distinguishes
/// "not requested" from "requested but there was nothing to replay"
/// (estimate-only regime), which a plain `Option<bool>` conflated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Verification was not requested ([`SuiteConfig::verify`] unset).
    NotRequested,
    /// Requested, but there was nothing informative to replay: the FT-CPG
    /// exceeded the size budget (no exact schedule exists), or the
    /// reported winner was already exactly refuted (its deadline miss is
    /// known without sampling).
    Skipped,
    /// Replayed scenarios surfaced no violation.
    Sound,
    /// Replayed scenarios surfaced violations.
    Unsound,
}

impl VerifyOutcome {
    /// The boolean verdict, when scenarios were actually replayed.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            VerifyOutcome::Sound => Some(true),
            VerifyOutcome::Unsound => Some(false),
            _ => None,
        }
    }
}

/// Outcome of one grid point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The grid point.
    pub point: ScenarioPoint,
    /// Fault-free root-schedule length of the incumbent.
    pub fault_free: Time,
    /// Estimated worst-case length of the incumbent.
    pub worst_case: Time,
    /// The generated application's deadline.
    pub deadline: Time,
    /// Whether the incumbent's estimated worst case meets the deadline.
    pub schedulable: bool,
    /// Recovery slack as a percentage of the fault-free length.
    pub slack_pct: f64,
    /// The Pareto front of the point.
    pub archive: ParetoArchive,
    /// Estimate-cache counters of the point.
    pub cache: CacheStats,
    /// Certify-guided admit-cache counters of the point (all zero unless
    /// [`PortfolioConfig::certify_guided`] is on).
    pub certify_cache: CacheStats,
    /// Evaluator-kernel counters of the point (constructions, evaluations,
    /// reuse across the per-thread pool).
    pub evals: EvaluatorStats,
    /// Exact-certification verdict of the reported incumbent.
    pub certified: CertifyVerdict,
    /// Fault-injection verdict of the reported incumbent.
    pub verified: VerifyOutcome,
    /// Pareto-front candidates skipped before the reported incumbent:
    /// `n > 0` means the first `n` candidates were refuted or unsound and
    /// the point was demoted to the `n`-th front entry. 0 means either the
    /// estimator's own winner was accepted, *or* every examined candidate
    /// failed and the point ships its original winner explicitly tagged —
    /// the `certified`/`verified` columns distinguish the two.
    pub demoted: u32,
    /// Per-entry certification verdicts aligned with
    /// [`PointOutcome::archive`]`.entries()`: `Some(true)` certified,
    /// `Some(false)` refuted, `None` not examined (or no exact schedule).
    pub front_certified: Vec<Option<bool>>,
    /// Wall-clock time of the point (excluded from determinism checks).
    pub wall: Duration,
}

impl PointOutcome {
    /// Evaluator-kernel throughput of the point: candidate evaluations per
    /// wall-clock second (0 when the point finished too fast to time).
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.evals.evaluations() as f64 / secs
    }
}

/// Outcome of a whole suite sweep.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Per-point outcomes, in grid order.
    pub points: Vec<PointOutcome>,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

impl SuiteOutcome {
    /// Aggregated cache counters across all points.
    pub fn total_cache(&self) -> CacheStats {
        self.points.iter().fold(CacheStats::default(), |acc, p| acc.merged(p.cache))
    }

    /// Aggregated certify-guided admit-cache counters across all points.
    pub fn total_certify_cache(&self) -> CacheStats {
        self.points.iter().fold(CacheStats::default(), |acc, p| acc.merged(p.certify_cache))
    }

    /// Aggregated evaluator-kernel counters across all points.
    pub fn total_evals(&self) -> EvaluatorStats {
        self.points.iter().fold(EvaluatorStats::default(), |acc, p| acc.merged(p.evals))
    }

    /// Sweep-level evaluator throughput (evaluations per second).
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_evals().evaluations() as f64 / secs
    }

    /// Deterministic fingerprint of the whole sweep: per point, its label
    /// plus the archive signature (wall-clock excluded by construction).
    pub fn signature(&self) -> Vec<(String, Vec<(crate::Objectives, u64)>)> {
        self.points.iter().map(|p| (p.point.label(), p.archive.signature())).collect()
    }
}

/// Runs the scenario suite.
///
/// # Errors
///
/// Propagates the first [`ExploreError`] (grid order) if any point fails;
/// workload generation failures surface as
/// [`ExploreError::BadConfig`].
pub fn run_suite(config: &SuiteConfig) -> Result<SuiteOutcome, ExploreError> {
    Ok(run_suite_streaming(config, None, |_, _| {})?.expect("no cancel flag was provided"))
}

/// Streaming, cancellable form of [`run_suite`]: `on_point(index, point)`
/// fires **in grid order** — point `i` is delivered only after points
/// `0..i` — as soon as that prefix is complete, the same in-order
/// callback contract the corpus runner uses. Passing a cancel flag stops
/// the sweep at the next point boundary (points already in flight finish
/// but are not delivered past the cancelled prefix).
///
/// Returns `Ok(None)` when the cancel flag was observed set, otherwise
/// `Ok(Some(outcome))` with every point, identical to [`run_suite`].
///
/// # Errors
///
/// Propagates the first [`ExploreError`] (grid order) if any point fails;
/// points that error are never delivered to `on_point`.
pub fn run_suite_streaming<F>(
    config: &SuiteConfig,
    cancel: Option<&AtomicBool>,
    on_point: F,
) -> Result<Option<SuiteOutcome>, ExploreError>
where
    F: FnMut(usize, &PointOutcome) + Send,
{
    // ftes-lint: allow(determinism) reason="wall-clock feeds the wall_ms diagnostics column, excluded from byte comparisons"
    let started = Instant::now();
    // Split the thread budget across concurrent points instead of letting
    // every point fan out at full width (point_parallelism × threads would
    // oversubscribe the machine).
    let concurrent = config.point_parallelism.clamp(1, config.points.len().max(1));
    let threads_per_point = (config.portfolio.threads / concurrent).max(1);

    struct Flusher<F> {
        slots: Vec<Option<Result<PointOutcome, ExploreError>>>,
        next: usize,
        on_point: F,
    }
    let flusher = Mutex::new(Flusher {
        slots: (0..config.points.len()).map(|_| None).collect(),
        next: 0,
        on_point,
    });
    let next_point = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..concurrent {
            let flusher = &flusher;
            let next_point = &next_point;
            scope.spawn(move || loop {
                if cancel.is_some_and(|c| c.load(Ordering::Acquire)) {
                    break;
                }
                let i = next_point.fetch_add(1, Ordering::Relaxed);
                if i >= config.points.len() {
                    break;
                }
                let result = run_point(config, config.points[i], threads_per_point);
                let mut f = flusher.lock().expect("suite flusher poisoned");
                f.slots[i] = Some(result);
                // Deliver the completed error-free prefix in order; an
                // errored point stops the stream (the caller sees the
                // error from the return value instead).
                while f.next < f.slots.len() && matches!(f.slots[f.next], Some(Ok(_))) {
                    let at = f.next;
                    let slot = f.slots[at].take().expect("checked above");
                    if let Ok(point) = &slot {
                        (f.on_point)(at, point);
                    }
                    f.slots[at] = Some(slot);
                    f.next += 1;
                }
            });
        }
    });

    if cancel.is_some_and(|c| c.load(Ordering::Acquire)) {
        return Ok(None);
    }
    let slots = flusher.into_inner().expect("suite flusher poisoned").slots;
    let mut points = Vec::with_capacity(slots.len());
    for slot in slots {
        points.push(slot.expect("every point ran to completion")?);
    }
    Ok(Some(SuiteOutcome { points, wall: started.elapsed() }))
}

/// Bound on the certify-and-demote walk down a point's Pareto front: the
/// estimator's incumbent plus at most this many demotions are examined
/// before the point gives up and ships the first candidate, tagged.
const MAX_DEMOTIONS: usize = 4;

fn run_point(
    config: &SuiteConfig,
    point: ScenarioPoint,
    threads: usize,
) -> Result<PointOutcome, ExploreError> {
    // ftes-lint: allow(determinism) reason="wall-clock feeds the wall_ms diagnostics column, excluded from byte comparisons"
    let started = Instant::now();
    let gen_config = GeneratorConfig::new(point.processes, point.nodes);
    let app = generate_application(&gen_config, point.seed)
        .map_err(|e| ExploreError::BadConfig(format!("workload {}: {e}", point.label())))?;
    let platform = Platform::homogeneous(point.nodes, config.slot)
        .map_err(|e| ExploreError::BadConfig(format!("platform {}: {e}", point.label())))?;

    // Per-point portfolio seed: deterministic in (suite seed, point).
    // The thread split never affects results (see the determinism contract).
    let portfolio = PortfolioConfig {
        seed: config.portfolio.seed ^ fnv1a64(&point.seed_material()),
        threads,
        ..config.portfolio.clone()
    };
    let exploration = explore(&app, &platform, point.k, &portfolio)?;
    let walk = certify_and_demote(config, &app, &platform, point, &exploration)?;
    let reported = &walk.reported;

    let estimate = reported.estimate;
    let fault_free = estimate.fault_free_length;
    let worst_case = estimate.worst_case_length;
    let slack_pct = if fault_free > Time::ZERO {
        100.0 * estimate.recovery_slack().as_f64() / fault_free.as_f64()
    } else {
        0.0
    };
    // Certified points are schedulable by the exact contract; refuted
    // points are not, no matter what the estimate claims. Only the
    // estimate-only regime still judges on the estimator.
    let schedulable = match walk.certified {
        CertifyVerdict::Certified(_) => true,
        CertifyVerdict::Refuted(_) => false,
        _ => worst_case <= app.deadline(),
    };
    Ok(PointOutcome {
        point,
        fault_free,
        worst_case,
        deadline: app.deadline(),
        schedulable,
        slack_pct,
        archive: exploration.archive,
        cache: exploration.cache,
        certify_cache: exploration.certify,
        evals: exploration.evals,
        certified: walk.certified,
        verified: walk.verified,
        demoted: walk.demoted,
        front_certified: walk.front_certified,
        wall: started.elapsed(),
    })
}

/// Result of the certify-and-demote walk of one grid point.
struct WalkOutcome {
    reported: Synthesized,
    certified: CertifyVerdict,
    verified: VerifyOutcome,
    demoted: u32,
    front_certified: Vec<Option<bool>>,
}

/// Walks the point's candidates — the exploration incumbent first, then the
/// Pareto front in canonical order — and reports the first one with no
/// negative exact evidence: not refuted by certification, not unsound under
/// fault injection. Candidates with explicit negative evidence are demoted;
/// when every examined candidate fails, the walk ships the *first* one,
/// explicitly tagged, so a bad winner can never masquerade as sound.
fn certify_and_demote(
    config: &SuiteConfig,
    app: &Application,
    platform: &Platform,
    point: ScenarioPoint,
    exploration: &crate::Exploration,
) -> Result<WalkOutcome, ExploreError> {
    let label = point.label();
    let transparency = Transparency::none();
    let bad = |e: &dyn std::fmt::Display| ExploreError::BadConfig(format!("certify {label}: {e}"));
    let mut certifier = config.certify.then(|| {
        Certifier::new(
            app,
            platform,
            FaultModel::new(point.k),
            &transparency,
            CertifyConfig::default(),
        )
    });

    // Candidate order: the incumbent, then front entries not identical to
    // it (bounded). Fallback candidates are materialized lazily — copies
    // are only derived once the previous candidate was actually rejected,
    // so the common certify-first-try path pays nothing for the walk.
    let incumbent_key = StateKey::encode(&exploration.best.mapping, &exploration.best.policies);
    let fallbacks: Vec<&crate::ArchiveEntry> = exploration
        .archive
        .entries()
        .iter()
        .filter(|e| e.key != incumbent_key)
        .take(MAX_DEMOTIONS)
        .collect();

    let mut first: Option<(Synthesized, CertifyVerdict, VerifyOutcome)> = None;
    let mut accepted: Option<(usize, Synthesized, CertifyVerdict, VerifyOutcome)> = None;
    let mut verdict_by_key: Vec<(StateKey, bool)> = Vec::new();
    for walked in 0..=fallbacks.len() {
        let (key, candidate) = if walked == 0 {
            (incumbent_key.clone(), exploration.best.clone())
        } else {
            let entry = fallbacks[walked - 1];
            let copies = CopyMapping::from_base(
                app,
                platform.architecture(),
                &entry.mapping,
                &entry.policies,
            )
            .map_err(|e| bad(&e))?;
            (
                entry.key.clone(),
                Synthesized {
                    mapping: entry.mapping.clone(),
                    policies: entry.policies.clone(),
                    copies,
                    estimate: entry.estimate,
                },
            )
        };
        // 1. Exact certification (when enabled), keeping the artifacts so
        //    fault injection replays the very schedule that was certified.
        let (certified, artifacts) = match &mut certifier {
            None => (CertifyVerdict::NotRequested, None),
            Some(c) => {
                match c.certify(&candidate.copies, &candidate.policies).map_err(|e| bad(&e))? {
                    CertOutcome::Exact { exact_len, deadline_met } => {
                        let verdict = if deadline_met {
                            CertifyVerdict::Certified(exact_len)
                        } else {
                            CertifyVerdict::Refuted(exact_len)
                        };
                        verdict_by_key.push((key.clone(), deadline_met));
                        (verdict, c.take_artifacts(&candidate.copies, &candidate.policies))
                    }
                    CertOutcome::OverBudget => (CertifyVerdict::Skipped, None),
                }
            }
        };
        // 2. Fault injection (when requested) on the exact schedule. An
        //    exactly-refuted candidate skips the replay: its deadline miss
        //    is already known exactly, the candidate is rejected either
        //    way, and replaying a refuted schedule would only rediscover
        //    the same miss at sampling cost.
        let verified = match &config.verify {
            None => VerifyOutcome::NotRequested,
            Some(_) if matches!(certified, CertifyVerdict::Refuted(_)) => VerifyOutcome::Skipped,
            Some(vc) => {
                let artifacts = match artifacts {
                    Some(a) => Some(a),
                    // Certification off (or its artifacts already spent):
                    // build the schedule directly for the replay.
                    None if !matches!(certified, CertifyVerdict::Skipped) => {
                        build_exact(app, platform, point, &candidate, &transparency)?
                    }
                    None => None,
                };
                match artifacts {
                    None => VerifyOutcome::Skipped,
                    Some((cpg, schedule)) => {
                        let verdict = verify_sampled(
                            app,
                            &cpg,
                            &schedule,
                            &transparency,
                            vc.samples,
                            vc.seed,
                        )
                        .map_err(|e| bad(&e))?;
                        if verdict.is_sound() {
                            VerifyOutcome::Sound
                        } else {
                            VerifyOutcome::Unsound
                        }
                    }
                }
            }
        };
        if first.is_none() {
            first = Some((candidate.clone(), certified, verified));
        }
        // Acceptance: demote only on explicit negative exact evidence. The
        // estimate-only regime (Skipped) has no evidence either way and
        // must accept — there is nothing better to walk toward.
        let rejected =
            matches!(certified, CertifyVerdict::Refuted(_)) || verified == VerifyOutcome::Unsound;
        if !rejected {
            accepted = Some((walked, candidate, certified, verified));
            break;
        }
    }

    let (demoted, reported, certified, verified) = match accepted {
        Some((walked, candidate, certified, verified)) => {
            (walked as u32, candidate, certified, verified)
        }
        None => {
            let (candidate, certified, verified) =
                first.expect("the walk examined at least the incumbent");
            (0, candidate, certified, verified)
        }
    };
    let front_certified = exploration
        .archive
        .entries()
        .iter()
        .map(|e| verdict_by_key.iter().find(|(k, _)| *k == e.key).map(|&(_, ok)| ok))
        .collect();
    Ok(WalkOutcome { reported, certified, verified, demoted, front_certified })
}

/// Builds one candidate's FT-CPG and exact schedule for fault injection
/// when certification did not already provide them. `Ok(None)` = the graph
/// exceeded the size budget (estimate-only regime — nothing to replay).
fn build_exact(
    app: &Application,
    platform: &Platform,
    point: ScenarioPoint,
    candidate: &Synthesized,
    transparency: &Transparency,
) -> Result<Option<(FtCpg, ConditionalSchedule)>, ExploreError> {
    let label = point.label();
    let cpg = match build_ftcpg(
        app,
        &candidate.policies,
        &candidate.copies,
        FaultModel::new(point.k),
        transparency,
        BuildConfig::default(),
    ) {
        Ok(cpg) => cpg,
        Err(CpgError::GraphTooLarge { .. }) => return Ok(None),
        Err(e) => return Err(ExploreError::BadConfig(format!("verify {label}: {e}"))),
    };
    let schedule = schedule_ftcpg(app, &cpg, platform, SchedConfig::default())
        .map_err(|e| ExploreError::BadConfig(format!("verify {label}: {e}")))?;
    Ok(Some((cpg, schedule)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite(point_parallelism: usize, threads: usize) -> SuiteConfig {
        SuiteConfig {
            points: vec![
                ScenarioPoint { processes: 8, nodes: 2, k: 1, seed: 0 },
                ScenarioPoint { processes: 10, nodes: 3, k: 2, seed: 1 },
            ],
            portfolio: PortfolioConfig { threads, ..PortfolioConfig::quick(3) },
            point_parallelism,
            slot: Time::new(8),
            verify: None,
            certify: true,
        }
    }

    #[test]
    fn suite_runs_all_points_in_order() {
        let outcome = run_suite(&tiny_suite(1, 1)).unwrap();
        assert_eq!(outcome.points.len(), 2);
        assert_eq!(outcome.points[0].point.processes, 8);
        assert_eq!(outcome.points[1].point.processes, 10);
        for p in &outcome.points {
            assert!(p.worst_case >= p.fault_free);
            assert!(!p.archive.is_empty());
            // Tiny instances fit the FT-CPG budget: every reported winner
            // is exact-certified (possibly after demotion) or refuted —
            // never silently unexamined.
            assert!(
                matches!(p.certified, CertifyVerdict::Certified(_) | CertifyVerdict::Refuted(_)),
                "{}: {:?}",
                p.point.label(),
                p.certified
            );
            if let CertifyVerdict::Certified(exact) = p.certified {
                assert!(p.schedulable, "certified implies schedulable");
                assert!(exact <= p.deadline, "certified exact length meets the deadline");
            }
            // Front tags align with the archive; entries the walk examined
            // carry verdicts (the incumbent itself may sit outside the
            // archive when an objective tie broke to a different key).
            assert_eq!(p.front_certified.len(), p.archive.len());
        }
        assert!(outcome.total_cache().misses > 0);
        let evals = outcome.total_evals();
        assert!(evals.evaluations() > 0, "points must report kernel work");
        assert!(evals.reused() > 0, "per-thread kernels must be reused within a point");
    }

    #[test]
    fn certify_guided_points_report_admit_counters() {
        let mut config = tiny_suite(1, 1);
        config.portfolio.certify_guided = true;
        let outcome = run_suite(&config).unwrap();
        assert!(
            outcome.total_certify_cache().misses > 0,
            "guided points must certify incumbents during the search"
        );
        // Guided incumbents were already gated on exact evidence, so the
        // post-hoc walk never needs to demote past a refuted winner.
        for p in &outcome.points {
            assert!(
                matches!(p.certified, CertifyVerdict::Certified(_)) || p.worst_case > p.deadline,
                "{}: {:?}",
                p.point.label(),
                p.certified
            );
        }
        // The baseline suite reports zero admit-cache traffic.
        let baseline = run_suite(&tiny_suite(1, 1)).unwrap();
        assert_eq!(baseline.total_certify_cache(), CacheStats::default());
    }

    #[test]
    fn certification_off_reports_not_requested() {
        let outcome = run_suite(&SuiteConfig { certify: false, ..tiny_suite(1, 1) }).unwrap();
        for p in &outcome.points {
            assert_eq!(p.certified, CertifyVerdict::NotRequested);
            assert_eq!(p.demoted, 0);
            assert!(p.front_certified.iter().all(Option::is_none));
        }
    }

    #[test]
    fn unsound_or_refuted_winners_are_demoted_not_reported() {
        // Regression: an incumbent whose exact schedule refutes the
        // estimate (or whose fault-injection replay is unsound) must not be
        // reported as the point's winner while a certifiable front entry
        // exists. Sweep a band of seeds so the test keeps pinning the
        // behavior even as search tuning shifts which seeds exhibit the
        // gap; every demoted point must land on a certified-sound winner
        // or ship explicitly tagged.
        let mut demotions = 0;
        for seed in 0..12 {
            let outcome = run_suite(&SuiteConfig {
                points: vec![ScenarioPoint { processes: 10, nodes: 2, k: 2, seed }],
                verify: Some(VerifyConfig { samples: 16, ..VerifyConfig::default() }),
                ..tiny_suite(1, 1)
            })
            .unwrap();
            let p = &outcome.points[0];
            demotions += p.demoted;
            if p.demoted > 0 {
                // A demoted point landed on a front entry with no
                // negative evidence — the headline behavior.
                assert!(p.certified.is_certified(), "{seed}: {:?}", p.certified);
                assert_eq!(p.verified, VerifyOutcome::Sound, "{seed}");
            }
            match (p.certified, p.verified) {
                // Accepted: no negative exact evidence may remain.
                (CertifyVerdict::Certified(_), VerifyOutcome::Sound) => {}
                // All examined candidates failed: the point ships the
                // estimator's winner explicitly tagged, never silently
                // (an exactly-refuted winner's replay is skipped — its
                // deadline miss needs no sampling).
                (CertifyVerdict::Refuted(_), _) | (_, VerifyOutcome::Unsound) => {
                    assert_eq!(p.demoted, 0, "a failed walk reports the tagged incumbent");
                    assert!(!p.schedulable || p.verified == VerifyOutcome::Unsound);
                }
                other => panic!("unexpected verdict pair {other:?}"),
            }
        }
        // The band must actually exercise demotion (seed 10 demotes by 2
        // today); if search tuning ever makes every seed certify or fail
        // first try, widen the band rather than weakening this.
        assert!(demotions >= 1, "the seed band no longer exercises demotion");
    }

    #[test]
    fn streaming_delivers_points_in_order_and_matches_run_suite() {
        let config = tiny_suite(2, 4);
        let mut streamed = Vec::new();
        let outcome = run_suite_streaming(&config, None, |i, p| {
            streamed.push((i, p.point.label(), p.archive.signature()));
        })
        .unwrap()
        .expect("no cancel flag was provided");
        assert_eq!(streamed.len(), outcome.points.len());
        for (at, (i, label, signature)) in streamed.iter().enumerate() {
            assert_eq!(at, *i, "callbacks fire in grid order");
            assert_eq!(*label, outcome.points[at].point.label());
            assert_eq!(*signature, outcome.points[at].archive.signature());
        }
        // Streaming is observationally the plain runner.
        assert_eq!(outcome.signature(), run_suite(&config).unwrap().signature());
    }

    #[test]
    fn a_pre_set_cancel_flag_stops_the_sweep_before_any_point() {
        let cancel = std::sync::atomic::AtomicBool::new(true);
        let mut delivered = 0usize;
        let outcome =
            run_suite_streaming(&tiny_suite(1, 1), Some(&cancel), |_, _| delivered += 1).unwrap();
        assert!(outcome.is_none(), "a cancelled sweep returns no outcome");
        assert_eq!(delivered, 0);
    }

    #[test]
    fn paper_grid_matches_the_section6_ranges() {
        let grid = paper_grid(2);
        assert_eq!(grid.len(), 10);
        for p in &grid {
            assert!((20..=100).contains(&p.processes));
            assert!((2..=6).contains(&p.nodes));
            assert!((3..=7).contains(&p.k));
        }
    }

    #[test]
    fn point_parallelism_is_observationally_pure() {
        let serial = run_suite(&tiny_suite(1, 1)).unwrap();
        let parallel = run_suite(&tiny_suite(2, 4)).unwrap();
        assert_eq!(serial.signature(), parallel.signature());
    }

    #[test]
    fn verification_reports_sound_incumbents_without_perturbing_archives() {
        let off = run_suite(&tiny_suite(1, 1)).unwrap();
        let on = run_suite(&SuiteConfig {
            verify: Some(VerifyConfig { samples: 16, ..VerifyConfig::default() }),
            ..tiny_suite(1, 1)
        })
        .unwrap();
        // Same archives: verification only demotes *reported* winners; it
        // never perturbs the explored front.
        assert_eq!(off.signature(), on.signature());
        for p in &off.points {
            assert_eq!(p.verified, VerifyOutcome::NotRequested);
        }
        for p in &on.points {
            // Tiny instances fit the FT-CPG budget, so either scenarios
            // were actually replayed, or the reported winner shipped
            // exactly refuted — whose replay is skipped by design (its
            // deadline miss is already known exactly). Never a silent
            // non-verdict.
            let refuted = matches!(p.certified, CertifyVerdict::Refuted(_));
            assert!(
                p.verified.as_bool().is_some() || (refuted && p.verified == VerifyOutcome::Skipped),
                "{}: {:?} / {:?}",
                p.point.label(),
                p.certified,
                p.verified
            );
        }
        // The verdict itself is deterministic across parallelism.
        let again = run_suite(&SuiteConfig {
            verify: Some(VerifyConfig { samples: 16, ..VerifyConfig::default() }),
            ..tiny_suite(2, 4)
        })
        .unwrap();
        let verdicts = |o: &SuiteOutcome| o.points.iter().map(|p| p.verified).collect::<Vec<_>>();
        assert_eq!(verdicts(&on), verdicts(&again));
    }
}
