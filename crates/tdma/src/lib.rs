//! # ftes-tdma
//!
//! A TDMA broadcast bus in the style of the Time-Triggered Protocol (TTP),
//! the communication substrate assumed by the paper's §2: nodes share a
//! broadcast channel and communication is statically scheduled into the
//! sender's slots of a cyclic TDMA round.
//!
//! The bus model is purely temporal — it answers "when is the earliest
//! window in which node `Ni` can put `d` time units of traffic on the bus,
//! not earlier than `t`?". Occupancy bookkeeping under conditional guards is
//! performed by the scheduler (`ftes-sched`), which owns the schedule
//! tables.
//!
//! ```
//! use ftes_model::{NodeId, Time};
//! use ftes_tdma::TdmaBus;
//!
//! # fn main() -> Result<(), ftes_tdma::TdmaError> {
//! // Two nodes, 10-unit slots => 20-unit rounds: N0 owns [0,10), N1 [10,20).
//! let bus = TdmaBus::uniform(2, Time::new(10))?;
//! let w = bus.next_window(NodeId::new(1), Time::new(3), Time::new(4))?;
//! assert_eq!(w.start, Time::new(10));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ftes_model::{Architecture, ModelError, NodeId, Time};
use std::error::Error;
use std::fmt;

/// One slot of the TDMA round, owned by a single sender node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    /// The node allowed to transmit during this slot.
    pub node: NodeId,
    /// Slot length in time units.
    pub length: Time,
}

/// A half-open bus reservation `[start, start + duration)` returned by
/// [`TdmaBus::next_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Transmission start instant.
    pub start: Time,
    /// Transmission end instant (exclusive).
    pub end: Time,
}

impl TimeWindow {
    /// Duration of the window.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// Errors produced by bus construction and window queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TdmaError {
    /// The slot table is empty.
    EmptySlotTable,
    /// A slot has non-positive length.
    NonPositiveSlot,
    /// `node` owns no slot in the round, so it can never transmit.
    NoSlotForNode(NodeId),
    /// The requested transmission is longer than every slot of the sender,
    /// so it can never be scheduled (messages are not fragmented, matching
    /// the single-frame worst-case transmission time of §4).
    MessageTooLong {
        /// Sender that cannot fit the message.
        node: NodeId,
        /// Requested transmission duration.
        duration: Time,
        /// Longest slot owned by the sender.
        longest_slot: Time,
    },
    /// The requested transmission duration is not strictly positive.
    NonPositiveDuration,
}

impl fmt::Display for TdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdmaError::EmptySlotTable => write!(f, "TDMA round has no slots"),
            TdmaError::NonPositiveSlot => write!(f, "TDMA slot length must be positive"),
            TdmaError::NoSlotForNode(n) => write!(f, "{n} owns no TDMA slot"),
            TdmaError::MessageTooLong { node, duration, longest_slot } => write!(
                f,
                "message of duration {duration} from {node} exceeds its longest slot {longest_slot}"
            ),
            TdmaError::NonPositiveDuration => {
                write!(f, "transmission duration must be positive")
            }
        }
    }
}

impl Error for TdmaError {}

/// A static TDMA round: an ordered sequence of sender slots that repeats
/// forever, starting at time zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdmaBus {
    slots: Vec<Slot>,
    offsets: Vec<Time>,
    round: Time,
}

impl TdmaBus {
    /// Builds a bus from an explicit slot sequence.
    ///
    /// # Errors
    ///
    /// Returns [`TdmaError::EmptySlotTable`] or
    /// [`TdmaError::NonPositiveSlot`] for malformed tables.
    pub fn new(slots: Vec<Slot>) -> Result<Self, TdmaError> {
        if slots.is_empty() {
            return Err(TdmaError::EmptySlotTable);
        }
        if slots.iter().any(|s| s.length <= Time::ZERO) {
            return Err(TdmaError::NonPositiveSlot);
        }
        let mut offsets = Vec::with_capacity(slots.len());
        let mut cursor = Time::ZERO;
        for s in &slots {
            offsets.push(cursor);
            cursor += s.length;
        }
        Ok(TdmaBus { slots, offsets, round: cursor })
    }

    /// One equal-length slot per node, in node order — the common TTP
    /// configuration used throughout the paper's experiments.
    ///
    /// # Errors
    ///
    /// Returns [`TdmaError::EmptySlotTable`] when `node_count == 0` or
    /// [`TdmaError::NonPositiveSlot`] for a non-positive slot length.
    pub fn uniform(node_count: usize, slot_length: Time) -> Result<Self, TdmaError> {
        TdmaBus::new(
            (0..node_count).map(|i| Slot { node: NodeId::new(i), length: slot_length }).collect(),
        )
    }

    /// Length of the TDMA round.
    pub fn round_length(&self) -> Time {
        self.round
    }

    /// The slot sequence of one round.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Longest slot owned by `node`, or `None` if it owns none.
    pub fn longest_slot(&self, node: NodeId) -> Option<Time> {
        self.slots.iter().filter(|s| s.node == node).map(|s| s.length).max()
    }

    /// Earliest window in which `node` can transmit `duration` units, not
    /// earlier than `ready`. Transmissions never span slot boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`TdmaError::NoSlotForNode`] if the node owns no slot,
    /// [`TdmaError::MessageTooLong`] if no slot can ever fit the message and
    /// [`TdmaError::NonPositiveDuration`] for `duration <= 0`.
    pub fn next_window(
        &self,
        node: NodeId,
        ready: Time,
        duration: Time,
    ) -> Result<TimeWindow, TdmaError> {
        if duration <= Time::ZERO {
            return Err(TdmaError::NonPositiveDuration);
        }
        let longest = self.longest_slot(node).ok_or(TdmaError::NoSlotForNode(node))?;
        if duration > longest {
            return Err(TdmaError::MessageTooLong { node, duration, longest_slot: longest });
        }
        let ready = ready.max(Time::ZERO);
        // Round index containing `ready`, then scan forward. The scan always
        // terminates: a fitting slot exists in every round.
        let mut round_start =
            Time::new(ready.units().div_euclid(self.round.units()) * self.round.units());
        loop {
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.node != node || slot.length < duration {
                    continue;
                }
                let occ_start = round_start + self.offsets[i];
                let occ_end = occ_start + slot.length;
                let start = ready.max(occ_start);
                if start + duration <= occ_end {
                    return Ok(TimeWindow { start, end: start + duration });
                }
            }
            round_start += self.round;
        }
    }

    /// Worst-case latency from "message ready" to "transmission complete"
    /// for a message of `duration` sent by `node`, over all ready instants.
    ///
    /// This is the bound a designer uses when budgeting end-to-end latency;
    /// it equals the worst window over one full round of ready instants.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TdmaBus::next_window`].
    pub fn worst_case_latency(&self, node: NodeId, duration: Time) -> Result<Time, TdmaError> {
        // The worst ready instant is just after the latest start that would
        // still fit a usable window; probe each such boundary plus one unit.
        let mut worst = Time::ZERO;
        let probes = std::iter::once(Time::ZERO).chain(
            self.offsets
                .iter()
                .zip(&self.slots)
                .map(|(off, s)| *off + s.length - duration + Time::new(1)),
        );
        for ready in probes {
            let ready = ready.max(Time::ZERO);
            let w = self.next_window(node, ready, duration)?;
            worst = worst.max(w.end - ready);
        }
        Ok(worst)
    }
}

/// A complete execution platform: computation nodes plus the shared bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Platform {
    arch: Architecture,
    bus: TdmaBus,
}

impl Platform {
    /// Combines architecture and bus, checking that every node owns at least
    /// one slot (a TTP node without a slot could never broadcast condition
    /// values, breaking the distributed scheduler of §5.2).
    ///
    /// # Errors
    ///
    /// Returns [`TdmaError::NoSlotForNode`] for slot-less nodes.
    pub fn new(arch: Architecture, bus: TdmaBus) -> Result<Self, TdmaError> {
        for node in arch.node_ids() {
            if bus.longest_slot(node).is_none() {
                return Err(TdmaError::NoSlotForNode(node));
            }
        }
        Ok(Platform { arch, bus })
    }

    /// Convenience constructor: `node_count` homogeneous nodes with uniform
    /// slots.
    ///
    /// # Errors
    ///
    /// Propagates architecture and bus construction errors (as
    /// [`TdmaError`]; an empty architecture surfaces as an empty slot table).
    pub fn homogeneous(node_count: usize, slot_length: Time) -> Result<Self, TdmaError> {
        let arch = Architecture::homogeneous(node_count).map_err(|e| match e {
            ModelError::EmptyArchitecture => TdmaError::EmptySlotTable,
            _ => unreachable!("homogeneous architecture only fails when empty"),
        })?;
        Platform::new(arch, TdmaBus::uniform(node_count, slot_length)?)
    }

    /// The computation nodes.
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// The shared TDMA bus.
    pub fn bus(&self) -> &TdmaBus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_bus() -> TdmaBus {
        TdmaBus::uniform(2, Time::new(10)).unwrap()
    }

    #[test]
    fn uniform_round_layout() {
        let bus = two_node_bus();
        assert_eq!(bus.round_length(), Time::new(20));
        assert_eq!(bus.slots().len(), 2);
        assert_eq!(bus.longest_slot(NodeId::new(1)), Some(Time::new(10)));
        assert_eq!(bus.longest_slot(NodeId::new(2)), None);
    }

    #[test]
    fn window_in_own_slot() {
        let bus = two_node_bus();
        // N0 ready at 0 can start immediately.
        let w = bus.next_window(NodeId::new(0), Time::ZERO, Time::new(4)).unwrap();
        assert_eq!((w.start, w.end), (Time::ZERO, Time::new(4)));
        // N0 ready at 8 cannot fit 4 units before its slot ends at 10 -> next round.
        let w = bus.next_window(NodeId::new(0), Time::new(8), Time::new(4)).unwrap();
        assert_eq!(w.start, Time::new(20));
        // N1 ready at 3 waits for its slot at 10.
        let w = bus.next_window(NodeId::new(1), Time::new(3), Time::new(4)).unwrap();
        assert_eq!(w.start, Time::new(10));
    }

    #[test]
    fn window_mid_slot_start() {
        let bus = two_node_bus();
        let w = bus.next_window(NodeId::new(1), Time::new(15), Time::new(5)).unwrap();
        assert_eq!((w.start, w.end), (Time::new(15), Time::new(20)));
        assert_eq!(w.duration(), Time::new(5));
    }

    #[test]
    fn negative_ready_treated_as_zero() {
        let bus = two_node_bus();
        let w = bus.next_window(NodeId::new(0), Time::new(-5), Time::new(2)).unwrap();
        assert_eq!(w.start, Time::ZERO);
    }

    #[test]
    fn error_cases() {
        let bus = two_node_bus();
        assert_eq!(
            bus.next_window(NodeId::new(5), Time::ZERO, Time::new(1)).unwrap_err(),
            TdmaError::NoSlotForNode(NodeId::new(5))
        );
        assert!(matches!(
            bus.next_window(NodeId::new(0), Time::ZERO, Time::new(11)).unwrap_err(),
            TdmaError::MessageTooLong { .. }
        ));
        assert_eq!(
            bus.next_window(NodeId::new(0), Time::ZERO, Time::ZERO).unwrap_err(),
            TdmaError::NonPositiveDuration
        );
        assert_eq!(TdmaBus::new(vec![]).unwrap_err(), TdmaError::EmptySlotTable);
        assert_eq!(
            TdmaBus::new(vec![Slot { node: NodeId::new(0), length: Time::ZERO }]).unwrap_err(),
            TdmaError::NonPositiveSlot
        );
    }

    #[test]
    fn heterogeneous_slot_table() {
        // N0: 5 units, N1: 15 units, round 20.
        let bus = TdmaBus::new(vec![
            Slot { node: NodeId::new(0), length: Time::new(5) },
            Slot { node: NodeId::new(1), length: Time::new(15) },
        ])
        .unwrap();
        // A 10-unit message from N0 can never be sent.
        assert!(matches!(
            bus.next_window(NodeId::new(0), Time::ZERO, Time::new(10)).unwrap_err(),
            TdmaError::MessageTooLong { longest_slot, .. } if longest_slot == Time::new(5)
        ));
        // From N1 it fits at offset 5.
        let w = bus.next_window(NodeId::new(1), Time::ZERO, Time::new(10)).unwrap();
        assert_eq!(w.start, Time::new(5));
    }

    #[test]
    fn node_with_two_slots_per_round() {
        let bus = TdmaBus::new(vec![
            Slot { node: NodeId::new(0), length: Time::new(4) },
            Slot { node: NodeId::new(1), length: Time::new(4) },
            Slot { node: NodeId::new(0), length: Time::new(4) },
        ])
        .unwrap();
        let w = bus.next_window(NodeId::new(0), Time::new(5), Time::new(3)).unwrap();
        assert_eq!(w.start, Time::new(8), "second slot of the round is used");
    }

    #[test]
    fn worst_case_latency_bounds_next_window() {
        let bus = two_node_bus();
        let wcl = bus.worst_case_latency(NodeId::new(1), Time::new(4)).unwrap();
        // Check the bound against a dense sweep of ready instants.
        for r in 0..40 {
            let ready = Time::new(r);
            let w = bus.next_window(NodeId::new(1), ready, Time::new(4)).unwrap();
            assert!(w.end - ready <= wcl, "latency at ready={ready} exceeds bound {wcl}");
        }
    }

    #[test]
    fn platform_requires_slot_per_node() {
        let arch = Architecture::homogeneous(3).unwrap();
        let bus = two_node_bus();
        assert_eq!(Platform::new(arch, bus).unwrap_err(), TdmaError::NoSlotForNode(NodeId::new(2)));
        let p = Platform::homogeneous(2, Time::new(8)).unwrap();
        assert_eq!(p.architecture().node_count(), 2);
        assert_eq!(p.bus().round_length(), Time::new(16));
    }
}
