//! Shared experiment plumbing for the figure harnesses and criterion
//! benches: the workload families, platforms and metrics of the paper's §6
//! evaluation.
//!
//! The binaries in `src/bin/` regenerate the paper's figures:
//!
//! * `fig7_policy_assignment` — Fig. 7 (MR / SFX / MX deviations from MXR);
//! * `fig8_checkpoint_opt` — Fig. 8 (global vs local checkpointing);
//! * `fig_ablation_transparency` — §3.3's transparency/performance
//!   trade-off (schedule length vs table size);
//! * `fig_ablation_estimator` — estimator-vs-exact calibration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ftes::gen::{generate_application, GeneratorConfig};
use ftes::model::{Application, Time};
use ftes::opt::{synthesize, SearchConfig, Strategy, Synthesized};
use ftes::tdma::Platform;

/// The experiment grid of the paper's §6: "applications consisting of 20 to
/// 100 processes implemented on architectures consisting of 2 to 6 nodes
/// … number of tolerated faults between 3 and 7".
///
/// For each process count we pick a node count and fault budget from the
/// paper's ranges (scaled with the application size) and average over
/// `seeds` random applications.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentPoint {
    /// Number of application processes.
    pub processes: usize,
    /// Number of computation nodes (2–6).
    pub nodes: usize,
    /// Fault budget `k` (3–7).
    pub k: u32,
}

/// The Fig. 7 sweep: 20–100 processes with paper-range nodes/k. Node
/// counts grow with the application so that precedence-constrained graphs
/// leave spare capacity on some processors (the paper's replication-friendly
/// regime).
pub fn fig7_points() -> Vec<ExperimentPoint> {
    vec![
        ExperimentPoint { processes: 20, nodes: 4, k: 3 },
        ExperimentPoint { processes: 40, nodes: 4, k: 4 },
        ExperimentPoint { processes: 60, nodes: 5, k: 5 },
        ExperimentPoint { processes: 80, nodes: 6, k: 6 },
        ExperimentPoint { processes: 100, nodes: 6, k: 7 },
    ]
}

/// The Fig. 8 sweep: 40–100 processes.
pub fn fig8_points() -> Vec<ExperimentPoint> {
    vec![
        ExperimentPoint { processes: 40, nodes: 4, k: 4 },
        ExperimentPoint { processes: 60, nodes: 5, k: 5 },
        ExperimentPoint { processes: 80, nodes: 6, k: 6 },
        ExperimentPoint { processes: 100, nodes: 6, k: 7 },
    ]
}

/// Generates the `seed`-th random application of an experiment point.
///
/// The graph-shape parameters (depth `n/2`, edge probability 0.7) are
/// calibrated to the regime of the paper's experiments: chain-heavy
/// TGFF-style graphs whose precedence constraints leave spare processor
/// capacity, the precondition for active replication to pay off (§3.2).
/// EXPERIMENTS.md records the calibration.
pub fn workload(point: ExperimentPoint, seed: u64) -> Application {
    let config = GeneratorConfig::chainy(point.processes, point.nodes);
    generate_application(&config, seed).expect("generator configs in the sweep are valid")
}

/// The TDMA platform used across the experiments (uniform 8-unit slots).
pub fn platform(nodes: usize) -> Platform {
    Platform::homogeneous(nodes, Time::new(8)).expect("non-empty platforms")
}

/// The search budget used by the figure harnesses.
pub fn harness_search(seed: u64) -> SearchConfig {
    SearchConfig { iterations: 120, neighborhood: 24, seed, ..SearchConfig::default() }
}

/// Fault-tolerance overhead of a synthesized configuration against the
/// fault-oblivious schedule length of the *same instance* (the paper's FTO:
/// "percentage increase of the schedule length due to fault tolerance").
pub fn fto_percent(s: &Synthesized, fault_oblivious_length: Time) -> f64 {
    100.0 * (s.estimate.worst_case_length - fault_oblivious_length).as_f64()
        / fault_oblivious_length.as_f64()
}

/// Synthesizes the fault-oblivious baseline length (mapping optimized with
/// the same budget, k = 0).
pub fn fault_oblivious_length(app: &Application, platform: &Platform, seed: u64) -> Time {
    let s = synthesize(app, platform, 0, Strategy::Mx, harness_search(seed))
        .expect("k = 0 synthesis always feasible");
    s.estimate.worst_case_length
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_are_in_paper_ranges() {
        for p in fig7_points().into_iter().chain(fig8_points()) {
            assert!((20..=100).contains(&p.processes));
            assert!((2..=6).contains(&p.nodes));
            assert!((3..=7).contains(&p.k));
        }
    }

    #[test]
    fn workload_and_baseline_are_reproducible() {
        let point = ExperimentPoint { processes: 20, nodes: 2, k: 3 };
        let a = workload(point, 0);
        let b = workload(point, 0);
        assert_eq!(a, b);
        let p = platform(point.nodes);
        assert_eq!(fault_oblivious_length(&a, &p, 0), fault_oblivious_length(&b, &p, 0));
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
