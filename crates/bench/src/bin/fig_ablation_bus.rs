//! Ablation: TDMA bus-access optimization (the paper's reference \[8\],
//! applied on top of the fault-tolerant flow).
//!
//! For each instance, synthesize with the default uniform bus, then let
//! the bus optimizer permute slots and rescale slot lengths; report the
//! average improvement of the estimated worst-case length.
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig_ablation_bus
//! [seeds]`

use ftes::ft::PolicyAssignment;
use ftes::opt::{constructive_mapping, optimize_bus, BusOptConfig};
use ftes_bench::{mean, platform, workload, ExperimentPoint};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("# Ablation — TDMA bus-access optimization (slot order + lengths)");
    println!(
        "{:>9} {:>5} {:>3} | {:>12} | {:>11}",
        "processes", "nodes", "k", "improvement", "round len"
    );
    for point in [
        ExperimentPoint { processes: 16, nodes: 3, k: 2 },
        ExperimentPoint { processes: 24, nodes: 4, k: 3 },
        ExperimentPoint { processes: 32, nodes: 4, k: 3 },
    ] {
        let plat = platform(point.nodes);
        let mut gains = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let app = workload(point, seed);
            let mapping = constructive_mapping(&app, plat.architecture()).expect("mappable");
            let policies = PolicyAssignment::uniform_reexecution(&app, point.k);
            let out =
                optimize_bus(&app, &plat, mapping, policies, point.k, BusOptConfig::default())
                    .expect("bus optimization runs");
            gains.push(out.improvement_percent());
            rounds.push(out.bus.round_length().as_f64());
        }
        println!(
            "{:>9} {:>5} {:>3} | {:>11.2}% | {:>11.1}",
            point.processes,
            point.nodes,
            point.k,
            mean(&gains),
            mean(&rounds)
        );
    }
    println!("# positive improvements show the bus configuration is a real design variable ([8])");
}
