//! Regenerates **Fig. 7** of the paper: efficiency of fault-tolerance
//! policy assignment.
//!
//! For 20–100 process applications (2–6 nodes, k = 3–7), synthesize with
//! MXR (the paper's approach, the 0% baseline), MR (replication only),
//! MX (re-execution only) and SFX (fault-oblivious mapping + re-execution),
//! and report the average percentage deviation of each strategy's
//! fault-tolerance overhead (FTO) from MXR's — the series plotted in
//! Fig. 7. The paper's headline: MXR is on average 77% better than MR and
//! 17.6% better than MX.
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig7_policy_assignment
//! [seeds-per-point]`

use ftes::opt::{synthesize, Strategy};
use ftes_bench::{
    fault_oblivious_length, fig7_points, fto_percent, harness_search, mean, platform, workload,
};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("# Fig. 7 — efficiency of fault tolerance policy assignment");
    println!("# avg % deviation of FTO from the MXR baseline ({seeds} seeds per point)");
    println!(
        "{:>9} {:>5} {:>3} | {:>9} | {:>8} {:>8} {:>8}",
        "processes", "nodes", "k", "FTO(MXR)%", "MR", "SFX", "MX"
    );

    let mut all_mr = Vec::new();
    let mut all_mx = Vec::new();
    let mut all_sfx = Vec::new();
    for point in fig7_points() {
        let plat = platform(point.nodes);
        let mut fto_mxr = Vec::new();
        let mut dev = [Vec::new(), Vec::new(), Vec::new()]; // MR, SFX, MX
        for seed in 0..seeds {
            let app = workload(point, seed);
            let baseline = fault_oblivious_length(&app, &plat, seed);
            let cfg = harness_search(seed);
            let run = |strategy| {
                let s = synthesize(&app, &plat, point.k, strategy, cfg)
                    .expect("synthesis on generated instances succeeds");
                fto_percent(&s, baseline)
            };
            let mxr = run(Strategy::Mxr);
            fto_mxr.push(mxr);
            for (i, strategy) in [Strategy::Mr, Strategy::Sfx, Strategy::Mx].into_iter().enumerate()
            {
                let fto = run(strategy);
                // Deviation of the strategy's FTO from MXR's, relative to
                // the strategy ("MXR is d% better than X").
                let d = if fto > 0.0 { 100.0 * (fto - mxr) / fto } else { 0.0 };
                dev[i].push(d);
            }
        }
        all_mr.extend_from_slice(&dev[0]);
        all_sfx.extend_from_slice(&dev[1]);
        all_mx.extend_from_slice(&dev[2]);
        println!(
            "{:>9} {:>5} {:>3} | {:>9.1} | {:>8.1} {:>8.1} {:>8.1}",
            point.processes,
            point.nodes,
            point.k,
            mean(&fto_mxr),
            mean(&dev[0]),
            mean(&dev[1]),
            mean(&dev[2]),
        );
    }
    println!("#");
    println!(
        "# overall: MXR better than MR by {:.1}%, than SFX by {:.1}%, than MX by {:.1}%",
        mean(&all_mr),
        mean(&all_sfx),
        mean(&all_mx)
    );
    println!("# paper reports: 77% better than MR, 17.6% better than MX (same ordering expected)");
}
