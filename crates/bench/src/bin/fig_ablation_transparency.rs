//! Ablation: the transparency/performance trade-off of §3.3.
//!
//! For small random instances (exact conditional scheduling feasible),
//! measure worst-case schedule length and schedule-table size under three
//! transparency settings: none, frozen messages, fully transparent.
//! Expectation (§3.3): transparency increases the worst-case delay but
//! shrinks the number of schedule-table entries (fewer execution
//! alternatives to store, easier debugging).
//!
//! Run with: `cargo run --release -p ftes-bench --bin
//! fig_ablation_transparency [seeds]`

use ftes::ft::PolicyAssignment;
use ftes::ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
use ftes::model::{FaultModel, Mapping, Transparency};
use ftes::sched::{schedule_ftcpg, SchedConfig, ScheduleTables};
use ftes_bench::{mean, platform, workload, ExperimentPoint};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let point = ExperimentPoint { processes: 10, nodes: 2, k: 2 };
    let plat = platform(point.nodes);
    println!("# Ablation — transparency vs performance (n={}, k={})", point.processes, point.k);
    println!("{:<18} | {:>12} | {:>13}", "transparency", "avg length", "avg entries");

    type Setting = (&'static str, Box<dyn Fn() -> Transparency>);
    let settings: [Setting; 3] = [
        ("none", Box::new(Transparency::none)),
        ("frozen messages", Box::new(Transparency::frozen_messages_only)),
        ("fully transparent", Box::new(Transparency::fully_transparent)),
    ];
    for (name, make) in &settings {
        let mut lengths = Vec::new();
        let mut entries = Vec::new();
        for seed in 0..seeds {
            let app = workload(point, seed);
            let mapping = Mapping::cheapest(&app, plat.architecture()).expect("mappable");
            let policies = PolicyAssignment::uniform_reexecution(&app, point.k);
            let copies = CopyMapping::from_base(&app, plat.architecture(), &mapping, &policies)
                .expect("placement");
            let transparency = make();
            let cpg = build_ftcpg(
                &app,
                &policies,
                &copies,
                FaultModel::new(point.k),
                &transparency,
                BuildConfig::default(),
            )
            .expect("small instances fit the node budget");
            let schedule =
                schedule_ftcpg(&app, &cpg, &plat, SchedConfig::default()).expect("schedule");
            let tables =
                ScheduleTables::new(&app, &cpg, &schedule, plat.architecture().node_count());
            lengths.push(schedule.length().as_f64());
            entries.push(tables.entry_count() as f64);
        }
        println!("{name:<18} | {:>12.1} | {:>13.1}", mean(&lengths), mean(&entries));
    }
    println!("# expectation: length grows downwards, entries shrink downwards (§3.3)");
}
