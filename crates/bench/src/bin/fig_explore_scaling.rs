//! Scaling harness for the `ftes-explore` portfolio engine: wall-clock
//! speedup over the serial MXR synthesis at matched evaluation budgets,
//! swept over thread counts, plus the estimate-cache contribution.
//!
//! Output is CSV (`point,engine,threads,wall_ms,worst_case,speedup`), one
//! block per experiment point, with the serial baseline as `threads=0`.
//! The portfolio's search budget (workers × rounds × iterations) matches
//! the serial iteration count, so the speedup column isolates the
//! parallel/caching machinery rather than comparing different search
//! effort.
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig_explore_scaling
//! [seeds-per-point]`

use ftes::explore::{default_portfolio, explore, PortfolioConfig, WorkerSpec};
use ftes::opt::{synthesize, SearchConfig, Strategy};
use ftes_bench::{fig7_points, mean, platform, workload};
use std::time::Instant;

/// The default worker mix with every neighborhood pinned to `width`, so the
/// portfolio's evaluation budget exactly matches the serial baseline's.
fn matched_workers(width: usize) -> Vec<WorkerSpec> {
    default_portfolio().into_iter().map(|w| WorkerSpec { neighborhood: width, ..w }).collect()
}

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut threads: Vec<usize> = vec![1, 2, 4, 8, cores];
    threads.sort_unstable();
    threads.dedup();
    threads.retain(|&t| t <= cores.max(8));

    println!("# explore scaling — portfolio exploration vs serial MXR ({seeds} seeds/point)");
    println!("point,engine,threads,wall_ms,worst_case,cache_hit_rate,speedup");

    for point in fig7_points() {
        let plat = platform(point.nodes);
        // Matched budgets: 4 workers × 4 rounds × 6 iterations = 96 serial
        // iterations, every worker pinned to the serial neighborhood width.
        let serial_cfg =
            SearchConfig { iterations: 96, neighborhood: 16, ..SearchConfig::default() };
        let portfolio_cfg = |threads: usize, seed: u64| PortfolioConfig {
            workers: matched_workers(serial_cfg.neighborhood),
            rounds: 4,
            iterations_per_round: 6,
            threads,
            seed,
            ..PortfolioConfig::default()
        };

        let mut serial_ms = Vec::new();
        let mut serial_wc = Vec::new();
        for seed in 0..seeds {
            let app = workload(point, seed);
            let cfg = SearchConfig { seed, ..serial_cfg };
            let started = Instant::now();
            let s = synthesize(&app, &plat, point.k, Strategy::Mxr, cfg)
                .expect("synthesis on generated instances succeeds");
            serial_ms.push(started.elapsed().as_secs_f64() * 1e3);
            serial_wc.push(s.estimate.worst_case_length.units() as f64);
        }
        let baseline_ms = mean(&serial_ms);
        println!(
            "n{}_k{},serial_mxr,0,{:.1},{:.0},0.0000,1.00",
            point.processes,
            point.k,
            baseline_ms,
            mean(&serial_wc)
        );

        for &t in &threads {
            let mut ms = Vec::new();
            let mut wc = Vec::new();
            let mut hit = Vec::new();
            for seed in 0..seeds {
                let app = workload(point, seed);
                let started = Instant::now();
                let result = explore(&app, &plat, point.k, &portfolio_cfg(t, seed))
                    .expect("exploration on generated instances succeeds");
                ms.push(started.elapsed().as_secs_f64() * 1e3);
                wc.push(result.best.estimate.worst_case_length.units() as f64);
                hit.push(result.cache.hit_rate());
            }
            println!(
                "n{}_k{},portfolio,{},{:.1},{:.0},{:.4},{:.2}",
                point.processes,
                point.k,
                t,
                mean(&ms),
                mean(&wc),
                mean(&hit),
                baseline_ms / mean(&ms).max(1e-9),
            );
        }
    }
    println!("# speedup = serial_mxr wall / portfolio wall (same machine, same budget)");
}
