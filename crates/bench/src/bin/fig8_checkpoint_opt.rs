//! Regenerates **Fig. 8** of the paper: efficiency of checkpointing
//! optimization.
//!
//! For 40–100 process applications, compare the fault-tolerance overhead of
//! the global checkpoint-count optimization (\[15\]) against the baseline
//! that fixes every process's checkpoint count at its isolated optimum
//! (Punnekkat et al. \[27\]). The series is the average percentage deviation
//! of the FTO from the baseline — "larger deviation means smaller
//! overhead".
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig8_checkpoint_opt
//! [seeds-per-point]`

use ftes::model::Mapping;
use ftes::opt::compare_checkpointing;
use ftes_bench::{fault_oblivious_length, fig8_points, fto_percent, mean, platform, workload};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("# Fig. 8 — efficiency of checkpointing optimization");
    println!("# avg % deviation of FTO from the local-optimum baseline [27] ({seeds} seeds)");
    println!(
        "{:>9} {:>5} {:>3} | {:>11} {:>11} | {:>9}",
        "processes", "nodes", "k", "FTO(local)%", "FTO(glob)%", "deviation"
    );

    for point in fig8_points() {
        let plat = platform(point.nodes);
        let mut local_ftos = Vec::new();
        let mut global_ftos = Vec::new();
        let mut deviations = Vec::new();
        for seed in 0..seeds {
            let app = workload(point, seed);
            let baseline = fault_oblivious_length(&app, &plat, seed);
            let mapping = Mapping::cheapest(&app, plat.architecture())
                .expect("generated instances are mappable");
            let cmp =
                compare_checkpointing(&app, &plat, mapping, point.k, 32).expect("comparison runs");
            let fto_local = fto_percent(&cmp.local, baseline);
            let fto_global = fto_percent(&cmp.global, baseline);
            local_ftos.push(fto_local);
            global_ftos.push(fto_global);
            deviations.push(if fto_local > 0.0 {
                100.0 * (fto_local - fto_global) / fto_local
            } else {
                0.0
            });
        }
        println!(
            "{:>9} {:>5} {:>3} | {:>11.1} {:>11.1} | {:>8.1}%",
            point.processes,
            point.nodes,
            point.k,
            mean(&local_ftos),
            mean(&global_ftos),
            mean(&deviations),
        );
    }
    println!("#");
    println!("# paper's Fig. 8 shows deviations of roughly 5-40% growing with size");
}
