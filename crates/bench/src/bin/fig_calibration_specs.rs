//! Calibration of the fast estimator against the exact conditional
//! schedule across every real system spec in `specs/*.ftes`: each spec is
//! synthesized with its own strategy and default flow settings, then the
//! incumbent's estimated worst case is compared to the exact conditional
//! schedule length (when the FT-CPG fits the size budget).
//!
//! This quantifies the estimator's known optimism on *synthesized*
//! incumbents — mixed policies, replication joins, recovery cascades — as
//! opposed to the uniform re-execution configurations the random-workload
//! ablation covers. The README's EXPERIMENTS calibration table is this
//! harness's output.
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig_calibration_specs`

use ftes::spec::parse_spec;
use ftes::{synthesize_system, FlowConfig};

fn main() {
    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
    let mut paths: Vec<_> = std::fs::read_dir(specs_dir)
        .expect("specs directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ftes"))
        .collect();
    paths.sort();

    println!("# Calibration — estimate vs exact conditional schedule, specs/*.ftes");
    println!(
        "{:<20} {:>5} {:>3} {:>9} {:>10} {:>10} {:>7} {:>9} {:>7} {:>12}",
        "spec",
        "procs",
        "k",
        "deadline",
        "estimate",
        "exact",
        "ratio",
        "certified",
        "repairs",
        "schedulable"
    );
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let spec = parse_spec(&text).expect("valid spec");
        let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
        let psi = synthesize_system(
            &spec.app,
            &spec.platform,
            spec.fault_model,
            &spec.transparency,
            config,
        )
        .expect("synthesis");
        let est = psi.estimate.worst_case_length;
        let (exact, ratio) = match psi.certification.exact_len() {
            Some(len) => (len.units().to_string(), format!("{:.2}", est.as_f64() / len.as_f64())),
            None => ("-".into(), "-".into()),
        };
        println!(
            "{:<20} {:>5} {:>3} {:>9} {:>10} {:>10} {:>7} {:>9} {:>7} {:>12}",
            name,
            spec.app.process_count(),
            spec.fault_model.k(),
            spec.app.deadline().units(),
            est.units(),
            exact,
            ratio,
            psi.certification.is_certified(),
            psi.repair_rounds,
            psi.schedulable,
        );
    }
    println!("# ratio < 1 = estimator optimism (recovery cascades it does not model);");
    println!("# certified = the shipped incumbent is exact-schedulable (the certify-and-repair");
    println!("# contract); schedulability is always judged on the exact schedule when one exists.");
}
