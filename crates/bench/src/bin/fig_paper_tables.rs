//! Regenerates the paper's §6-style comparison tables from the pinned
//! scenario corpus: every member of every built-in family (master seed
//! [`ftes::gen::corpus::DEFAULT_CORPUS_SEED`]) is streamed through the
//! certify-guided synthesis flow ([`CertifyMode::Guided`]: incumbents are
//! incrementally certified *inside* the search and refuted states demoted
//! during search, so the post-hoc repair loop has almost nothing left to
//! do) by the corpus batch driver, then the aggregates the paper reports —
//! schedulability percentage, average certified schedule length, repair
//! rounds — are tabulated per family and per policy class (synthesis
//! strategy), and recorded to `BENCH_corpus.json` at the workspace root
//! (uploaded as a CI artifact per run, so the corpus-quality trajectory
//! is preserved).
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig_paper_tables`

use ftes::corpus::{
    aggregate_by, run_corpus, write_group_json, CorpusJob, CorpusRunConfig, GroupAggregate,
};
use ftes::gen::corpus::{generate_corpus, Family, DEFAULT_CORPUS_SEED};
use ftes::json::JsonWriter;
use ftes::opt::CertifyMode;
use ftes::sched::CertificationCounters;
use ftes::FlowConfig;

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json");

fn main() {
    let corpus = generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED)
        .expect("built-in families are non-degenerate");
    let jobs: Vec<CorpusJob> = corpus
        .iter()
        .map(|s| CorpusJob {
            name: s.file_name.clone(),
            family: s.family.name().to_string(),
            text: s.text.clone(),
        })
        .collect();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "running the pinned corpus: {} specs, {} families, seed {}, {} workers",
        jobs.len(),
        Family::ALL.len(),
        DEFAULT_CORPUS_SEED,
        workers
    );
    let config = CorpusRunConfig {
        workers,
        flow: FlowConfig { certify: CertifyMode::Guided, ..FlowConfig::default() },
    };
    let outcome = run_corpus(&jobs, &config, |i, row| {
        eprintln!(
            "  [{:>2}/{}] {:<24} certified={} exact={}",
            i + 1,
            jobs.len(),
            row.spec,
            row.certified,
            row.exact_len.map_or_else(|| "-".to_string(), |v| v.to_string()),
        );
    });
    for (spec, message) in &outcome.errors {
        eprintln!("  ERROR {spec}: {message}");
    }

    let by_family = aggregate_by(&outcome.rows, |r| &r.family);
    let by_strategy = aggregate_by(&outcome.rows, |r| &r.strategy);

    println!("# Paper-style comparison tables — pinned corpus, seed {DEFAULT_CORPUS_SEED}");
    println!();
    print_table("family", &by_family);
    println!();
    print_table("policy class", &by_strategy);
    println!();
    println!(
        "{} specs in {} ms; certification totals: {} certified / {} refuted / {} estimate-only, \
         {} repair rounds, {} errors",
        outcome.rows.len(),
        outcome.wall.as_millis(),
        outcome.counters.certified,
        outcome.counters.refuted,
        outcome.counters.uncertifiable,
        outcome.counters.repair_rounds,
        outcome.errors.len(),
    );

    let body = render_report(
        outcome.rows.len(),
        &by_family,
        &by_strategy,
        &outcome.counters,
        outcome.errors.len(),
    );
    std::fs::write(REPORT_PATH, &body).expect("write BENCH_corpus.json");
    println!("wrote {REPORT_PATH}");
}

/// One §6-style comparison table: schedulability %, certified %, average
/// certified exact schedule length, repair rounds.
fn print_table(label: &str, groups: &[GroupAggregate]) {
    println!(
        "| {label:<12} | specs | schedulable % | certified % | avg certified length | repair rounds |"
    );
    println!(
        "|{}|------:|--------------:|------------:|---------------------:|--------------:|",
        "-".repeat(14)
    );
    for agg in groups {
        println!(
            "| {:<12} | {:>5} | {:>12.1}% | {:>10.1}% | {:>20} | {:>13} |",
            agg.name,
            agg.specs,
            agg.schedulable_pct(),
            agg.counters.certified_pct(),
            agg.avg_certified_exact_len.map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            agg.counters.repair_rounds,
        );
    }
}

/// The machine-readable record: per-family and per-strategy groups plus
/// totals. Wall-clock deliberately excluded so equal corpora produce
/// equal records.
fn render_report(
    specs: usize,
    by_family: &[GroupAggregate],
    by_strategy: &[GroupAggregate],
    totals: &CertificationCounters,
    errors: usize,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("corpus_seed");
    w.number_u64(DEFAULT_CORPUS_SEED);
    w.key("specs");
    w.number_usize(specs);
    // Recorded so the CI re-check (and any human reading the artifact)
    // knows which flow produced these totals: guided mode is what keeps
    // repair_rounds near zero.
    w.key("certify_mode");
    w.string("guided");
    for (section, groups) in [("families", by_family), ("strategies", by_strategy)] {
        w.key(section);
        w.begin_array();
        for agg in groups {
            // The shared encoder keeps this record structurally identical
            // to the per-family objects in corpus_results.json.
            write_group_json(&mut w, agg);
        }
        w.end_array();
    }
    w.key("totals");
    w.begin_object();
    w.key("certified");
    w.number_u64(totals.certified);
    w.key("refuted");
    w.number_u64(totals.refuted);
    w.key("uncertifiable");
    w.number_u64(totals.uncertifiable);
    w.key("repair_rounds");
    w.number_u64(totals.repair_rounds);
    w.key("certified_pct");
    w.number_f64(totals.certified_pct(), 2);
    w.key("errors");
    w.number_usize(errors);
    w.end_object();
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}
