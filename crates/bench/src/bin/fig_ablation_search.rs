//! Ablation: metaheuristic choice for the MXR design-space search.
//!
//! The paper's MXR uses tabu search \[13\]; this ablation runs greedy
//! steepest descent, tabu search and simulated annealing over the same
//! move space and budget on identical instances, reporting the average
//! final objective (estimated worst-case length) and the iteration at
//! which each engine last improved.
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig_ablation_search
//! [seeds]`

use ftes::ft::PolicyAssignment;
use ftes::model::Mapping;
use ftes::opt::{
    greedy_descent, simulated_annealing, tabu_search_traced, PolicyMoves, SearchConfig, Synthesized,
};
use ftes_bench::{mean, platform, workload, ExperimentPoint};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let point = ExperimentPoint { processes: 30, nodes: 4, k: 3 };
    let plat = platform(point.nodes);
    let cfg = SearchConfig { iterations: 80, neighborhood: 16, ..SearchConfig::default() };
    println!(
        "# Ablation — search engines on the MXR move space (n={}, k={}, {} iterations)",
        point.processes, point.k, cfg.iterations
    );
    println!("{:<10} | {:>12} | {:>14}", "engine", "avg objective", "last improve");

    let mut rows: Vec<(&str, Vec<f64>, Vec<f64>)> =
        vec![("greedy", vec![], vec![]), ("tabu", vec![], vec![]), ("annealing", vec![], vec![])];
    for seed in 0..seeds {
        let app = workload(point, seed);
        let mapping = Mapping::cheapest(&app, plat.architecture()).expect("mappable");
        let policies = PolicyAssignment::uniform_reexecution(&app, point.k);
        let initial = Synthesized::evaluate(&app, &plat, mapping, policies, point.k)
            .expect("initial state evaluates");
        let cfg = SearchConfig { seed, ..cfg };
        let runs: Vec<(Synthesized, Vec<i64>)> = vec![
            greedy_descent(&app, &plat, point.k, initial.clone(), PolicyMoves::Full, cfg)
                .expect("greedy runs"),
            tabu_search_traced(&app, &plat, point.k, initial.clone(), PolicyMoves::Full, cfg)
                .expect("tabu runs"),
            simulated_annealing(&app, &plat, point.k, initial, PolicyMoves::Full, cfg)
                .expect("annealing runs"),
        ];
        for (row, (result, trace)) in rows.iter_mut().zip(runs) {
            row.1.push(result.estimate.worst_case_length.as_f64());
            let last_improve =
                trace.windows(2).rposition(|w| w[1] < w[0]).map(|i| i + 1).unwrap_or(0);
            row.2.push(last_improve as f64);
        }
    }
    for (name, objectives, improves) in &rows {
        println!("{name:<10} | {:>12.1} | {:>14.1}", mean(objectives), mean(improves));
    }
    println!("# tabu's diversification should match or beat greedy; annealing trails on");
    println!("# short budgets (its exploration needs longer cooling schedules)");
}
