//! CI checker for the Prometheus exposition of `GET
//! /metrics?format=prometheus`: validates the scraped text with the
//! workspace's own format checker ([`ftes_serve::validate_prometheus`])
//! and (optionally) requires a set of metric families to be present.
//!
//! Run with: `cargo run --release -p ftes-bench --bin check_prometheus
//! <scrape.txt> [required-family]...`
//!
//! Exit code 0 when the exposition is well-formed and every required
//! family appears; 1 otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: check_prometheus <scrape.txt> [required-family]...");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("check_prometheus: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let families = match ftes_serve::validate_prometheus(&text) {
        Ok(families) => families,
        Err(e) => {
            eprintln!("check_prometheus: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{path}: {} metric families", families.len());
    for family in &families {
        println!("  {family}");
    }
    let mut ok = true;
    for required in args {
        if !families.contains(&required) {
            eprintln!("check_prometheus: required family `{required}` missing");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
