//! Ablation: calibration of the fast root-schedule estimator against the
//! exact conditional scheduler, on instances small enough for both.
//!
//! The optimization loops (Fig. 7/8) rank candidate configurations with the
//! estimator; this harness reports how its worst-case lengths relate to the
//! exact conditional schedule lengths (ratio statistics per k).
//!
//! Run with: `cargo run --release -p ftes-bench --bin fig_ablation_estimator
//! [seeds]`

use ftes::ft::PolicyAssignment;
use ftes::ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
use ftes::model::{FaultModel, Mapping, Transparency};
use ftes::sched::{estimate_schedule_length, schedule_ftcpg, SchedConfig};
use ftes_bench::{mean, platform, workload, ExperimentPoint};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    println!("# Ablation — estimator vs exact conditional scheduler (n=8, 2 nodes)");
    println!("{:>3} | {:>10} {:>10} {:>10}", "k", "ratio min", "ratio avg", "ratio max");
    for k in 0..=3u32 {
        let point = ExperimentPoint { processes: 8, nodes: 2, k };
        let plat = platform(point.nodes);
        let mut ratios = Vec::new();
        for seed in 0..seeds {
            let app = workload(point, seed);
            let mapping = Mapping::cheapest(&app, plat.architecture()).expect("mappable");
            let policies = PolicyAssignment::uniform_reexecution(&app, k);
            let copies = CopyMapping::from_base(&app, plat.architecture(), &mapping, &policies)
                .expect("placement");
            let cpg = build_ftcpg(
                &app,
                &policies,
                &copies,
                FaultModel::new(k),
                &Transparency::none(),
                BuildConfig::default(),
            )
            .expect("small FT-CPG");
            let exact = schedule_ftcpg(&app, &cpg, &plat, SchedConfig::default())
                .expect("schedule")
                .length();
            let est = estimate_schedule_length(&app, &plat, &copies, &policies, k)
                .expect("estimate")
                .worst_case_length;
            ratios.push(est.as_f64() / exact.as_f64());
        }
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        println!("{k:>3} | {min:>10.3} {:>10.3} {max:>10.3}", mean(&ratios));
    }
    println!("# ratios near 1.0 mean the optimizer's objective tracks reality");
}
