//! CI checker for Chrome trace artifacts: parses a trace file with the
//! workspace's own validator ([`ftes::obs::validate`]), requires
//! balanced/properly-nested spans, and (optionally) requires a set of
//! span or counter names to be present.
//!
//! Run with: `cargo run --release -p ftes-bench --bin check_trace
//! <trace.json> [--pipeline] [--folded <file> <stack>] [required-name]...`
//!
//! `--pipeline` requires every name in
//! [`ftes::obs::names::SYNTHESIS_PIPELINE`] — the taxonomy's own
//! definition of a complete traced synthesis — so the CI gate cannot
//! drift from the taxonomy. `--folded <file> <stack>` additionally
//! requires the folded-stack export at `<file>` to contain the
//! `;`-separated frame sequence `<stack>` (flamegraph input sanity).
//!
//! Exit code 0 when the trace is well-formed and every requirement
//! holds; 1 otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: check_trace <trace.json> [--pipeline] [--folded <file> <stack>] [required-name]...");
        return ExitCode::FAILURE;
    };
    let mut required: Vec<String> = Vec::new();
    let mut folded: Option<(String, String)> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pipeline" => {
                required.extend(ftes::obs::names::SYNTHESIS_PIPELINE.iter().map(|s| s.to_string()));
            }
            "--folded" => {
                let (Some(file), Some(stack)) = (args.next(), args.next()) else {
                    eprintln!("check_trace: --folded takes <file> <stack>");
                    return ExitCode::FAILURE;
                };
                folded = Some((file, stack));
            }
            _ => required.push(arg),
        }
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("check_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match ftes::obs::validate::validate_chrome_trace(&text) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("check_trace: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} events, {} completed spans, {} still open",
        summary.events, summary.spans_completed, summary.open_spans
    );
    println!("  spans: {}", summary.span_names.iter().cloned().collect::<Vec<_>>().join(", "));
    let counters: Vec<String> =
        summary.counters.iter().map(|(name, total)| format!("{name}={total}")).collect();
    if !counters.is_empty() {
        println!("  counters: {}", counters.join(", "));
    }
    let mut ok = true;
    for required in required {
        let present =
            summary.span_names.contains(&required) || summary.counters.contains_key(&required);
        if !present {
            eprintln!("check_trace: required name `{required}` not in the trace");
            ok = false;
        }
    }
    if let Some((file, stack)) = folded {
        match std::fs::read_to_string(&file) {
            Ok(text) if text.lines().any(|line| line.contains(stack.as_str())) => {
                println!("{file}: contains stack `{stack}`");
            }
            Ok(_) => {
                eprintln!("check_trace: folded export {file} lacks stack `{stack}`");
                ok = false;
            }
            Err(e) => {
                eprintln!("check_trace: cannot read {file}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
