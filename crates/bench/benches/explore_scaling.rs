//! Criterion bench: the parallel portfolio exploration against the serial
//! MXR synthesis it supersedes, at matched search budgets.
//!
//! Three measurements per experiment point:
//! * `serial_mxr`   — the baseline `ftes::opt::synthesize` loop;
//! * `portfolio_t1` — the portfolio engine pinned to one thread (engine
//!   overhead without parallelism);
//! * `portfolio_tN` — the portfolio engine with all cores.
//!
//! `fig_explore_scaling` (the harness binary) prints the full thread sweep
//! as CSV; this bench is the regression tripwire.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftes::explore::{default_portfolio, explore, PortfolioConfig, WorkerSpec};
use ftes::opt::{synthesize, SearchConfig, Strategy};
use ftes_bench::{platform, workload, ExperimentPoint};

fn bench_explore_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_scaling");
    group.sample_size(10);
    let point = ExperimentPoint { processes: 40, nodes: 4, k: 4 };
    let app = workload(point, 0);
    let plat = platform(point.nodes);

    // Matched budgets: the portfolio's total iterations (workers × rounds ×
    // iters) equal the serial search's and every worker runs the serial
    // neighborhood width, so the comparison is evaluations against
    // evaluations.
    let serial =
        SearchConfig { iterations: 96, neighborhood: 16, seed: 1, ..SearchConfig::default() };
    let workers: Vec<WorkerSpec> = default_portfolio()
        .into_iter()
        .map(|w| WorkerSpec { neighborhood: serial.neighborhood, ..w })
        .collect();
    let portfolio = |threads: usize| PortfolioConfig {
        workers: workers.clone(),
        rounds: 4,
        iterations_per_round: 6,
        threads,
        seed: 1,
        ..PortfolioConfig::default()
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    group.bench_with_input(
        BenchmarkId::from_parameter("serial_mxr"),
        &(&app, &plat),
        |b, (app, plat)| b.iter(|| synthesize(app, plat, point.k, Strategy::Mxr, serial).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("portfolio_t1"),
        &(&app, &plat),
        |b, (app, plat)| b.iter(|| explore(app, plat, point.k, &portfolio(1)).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("portfolio_t{cores}")),
        &(&app, &plat),
        |b, (app, plat)| b.iter(|| explore(app, plat, point.k, &portfolio(cores)).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench_explore_scaling);
criterion_main!(benches);
