//! Criterion bench for the exact-certification kernel on every real spec
//! in `specs/*.ftes`, across the three regimes the incremental certifier
//! distinguishes:
//!
//! * **cold** — first certification: full FT-CPG construction + exact
//!   conditional scheduling, nothing memoized;
//! * **anchored delta** — a warm certifier re-certifies a chain of
//!   1-move mapping variants: every state is a verdict-cache miss, but
//!   the FT-CPG rebuilds incrementally against the anchor and the
//!   fault-scenario subtree memo answers unchanged subtrees;
//! * **pruned refutation** — bounded certification against a bound the
//!   configuration cannot meet, exiting at the first scenario branch
//!   that provably exceeds it.
//!
//! Plus the memoized verdict cache (`cached`) and the certify-and-repair
//! loop's behavior through the full synthesis flow (repair invocations,
//! final verdict, calibration factor).
//!
//! Besides the console medians, the run records its numbers to
//! `BENCH_certify.json` at the workspace root (uploaded as a CI artifact
//! per run) — the cost trajectory of the certification subsystem. The
//! run itself asserts `certify_incremental_ns <= certify_cold_ns` per
//! spec, and CI re-checks the recorded ratios from the JSON (within-run
//! ratios only — absolute nanoseconds vary across runners).

use criterion::{criterion_group, Criterion};
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::json::JsonWriter;
use ftes::model::{Mapping, NodeId, ProcessId, Time};
use ftes::sched::{BoundedCert, CertOutcome, Certifier, CertifyConfig};
use ftes::spec::{parse_spec, SystemSpec};
use ftes::{synthesize_system, Certification, FlowConfig};
use std::time::Instant;

const SPECS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_certify.json");

fn specs() -> Vec<(String, SystemSpec)> {
    let mut paths: Vec<_> = std::fs::read_dir(SPECS_DIR)
        .expect("specs directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ftes"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let spec = parse_spec(&std::fs::read_to_string(&p).expect("readable spec"))
                .expect("valid spec");
            (name, spec)
        })
        .collect()
}

/// The uniform-re-execution baseline configuration of a spec — a cheap,
/// always-feasible state, so the bench isolates certification cost from
/// search cost.
fn baseline(spec: &SystemSpec) -> (CopyMapping, PolicyAssignment) {
    let arch = spec.platform.architecture();
    let mapping = Mapping::cheapest(&spec.app, arch).expect("spec is mappable");
    let policies = PolicyAssignment::uniform_reexecution(&spec.app, spec.fault_model.k());
    let copies =
        CopyMapping::from_base(&spec.app, arch, &mapping, &policies).expect("feasible baseline");
    (copies, policies)
}

/// The anchored-delta chain of a spec: an active-replication baseline
/// plus every feasible 1-move variant of its mapping (one process moved
/// to one different node, policies unchanged). Replication is what makes
/// the chain exercise the whole incremental machinery: replica joins are
/// the nodes whose worst-case delivery DP the fault-scenario subtree
/// memo answers, and a 1-move delta leaves most joins' ladders (and so
/// their memo keys) untouched. Re-execution states have no joins at all
/// — a chain of them would only measure the anchored graph rebuild.
fn delta_chain(
    spec: &SystemSpec,
) -> ((CopyMapping, PolicyAssignment), Vec<(CopyMapping, PolicyAssignment)>) {
    let arch = spec.platform.architecture();
    let mapping = Mapping::cheapest(&spec.app, arch).expect("spec is mappable");
    let policies = PolicyAssignment::uniform_replication(&spec.app, spec.fault_model.k());
    let base = CopyMapping::from_base(&spec.app, arch, &mapping, &policies)
        .expect("feasible replication baseline");
    let mut variants = Vec::new();
    for p in (0..spec.app.process_count()).map(ProcessId::new) {
        for n in (0..arch.node_count()).map(NodeId::new) {
            if n == mapping.node_of(p) {
                continue;
            }
            let Ok(moved) = mapping.with_move(&spec.app, arch, p, n) else { continue };
            if let Ok(copies) = CopyMapping::from_base(&spec.app, arch, &moved, &policies) {
                variants.push((copies, policies.clone()));
            }
        }
    }
    ((base, policies), variants)
}

fn certifier(spec: &SystemSpec) -> Certifier {
    Certifier::new(
        &spec.app,
        &spec.platform,
        spec.fault_model,
        &spec.transparency,
        CertifyConfig::default(),
    )
}

fn bench_certify_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify_throughput");
    group.sample_size(20);
    for (name, spec) in specs() {
        let (copies, policies) = baseline(&spec);
        group.bench_function(format!("cold/{name}"), |b| {
            b.iter(|| certifier(&spec).certify(&copies, &policies).unwrap())
        });
        let mut warm = certifier(&spec);
        warm.certify(&copies, &policies).unwrap();
        group.bench_function(format!("cached/{name}"), |b| {
            b.iter(|| warm.certify(&copies, &policies).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certify_throughput);

/// Median nanoseconds per call over `iters` timed calls (one warm-up).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Re-measures certification per spec and writes `BENCH_certify.json`.
fn write_report() {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("certify_throughput");
    w.key("specs");
    w.begin_array();
    for (name, spec) in specs() {
        let (copies, policies) = baseline(&spec);
        let cold = median_ns(30, || {
            certifier(&spec).certify(&copies, &policies).unwrap();
        });
        let mut warm = certifier(&spec);
        warm.certify(&copies, &policies).unwrap();
        let cached = median_ns(200, || {
            warm.certify(&copies, &policies).unwrap();
        });

        // Anchored-delta regime: the in-search workload. A search loop
        // probes each neighbor state once and then re-probes it across
        // iterations (tabu re-expansion, accept/revert oscillation), so
        // the walk interleaves one *fresh* 1-move delta with three
        // revisits of recently certified states. The same walk runs
        // twice — once memoless (a fresh certifier per call: what a
        // monolithic certifier pays inside the loop) and once on a
        // single warm certifier (anchored rebuilds + the verdict memo +
        // the shared fault-scenario subtree memo). Identical state
        // sequences make the ratio a pure within-run measure of the
        // incremental machinery.
        let ((base_copies, base_policies), variants) = delta_chain(&spec);
        assert!(!variants.is_empty(), "shipped specs admit 1-move variants");
        let fresh_count = variants.len().min(10);
        let mut walk = Vec::with_capacity(4 * fresh_count);
        for f in 0..fresh_count {
            walk.push(f); // the fresh 1-move delta…
            walk.push(f.saturating_sub(1)); // …then tabu-style re-probes
            walk.push(f.saturating_sub(2));
            walk.push(f);
        }
        let walk_iters = walk.len() - 1; // median_ns warm-up consumes walk[0]
        let mut cold_cursor = 0usize;
        let delta_cold = median_ns(walk_iters, || {
            let (copies, policies) = &variants[walk[cold_cursor % walk.len()]];
            cold_cursor += 1;
            certifier(&spec).certify(copies, policies).unwrap();
        });
        let mut inc = certifier(&spec);
        let base_verdict = inc.certify(&base_copies, &base_policies).unwrap(); // plant the anchor
        let mut cursor = 0usize;
        let incremental = median_ns(walk_iters, || {
            let (copies, policies) = &variants[walk[cursor % walk.len()]];
            cursor += 1;
            inc.certify(copies, policies).unwrap();
        });
        let incremental_builds = inc.stats().incremental_builds;
        assert!(
            incremental <= delta_cold,
            "anchored-delta certify must not be slower than a memoless walk \
             of the same chain ({name}: incremental {incremental} ns vs cold \
             {delta_cold} ns)"
        );

        // Pruned-refutation regime: bounded certification against half
        // the chain baseline's exact length — a bound these states cannot
        // meet, so the exact scheduler exits at the first scenario branch
        // that provably exceeds it. Distinct variants on a distinct
        // certifier keep every call memo-fresh.
        let CertOutcome::Exact { exact_len, .. } = base_verdict else {
            panic!("shipped specs certify exactly");
        };
        let prune_bound = Time::new(exact_len.units() / 2);
        let pruned_iters = variants.len().saturating_sub(1).clamp(1, 30);
        let mut pruner = certifier(&spec);
        pruner.certify(&base_copies, &base_policies).unwrap(); // plant the anchor
        let mut pruned_cursor = 0usize;
        let mut pruned_runs = 0u64;
        let pruned = median_ns(pruned_iters, || {
            let (copies, policies) = &variants[pruned_cursor % variants.len()];
            pruned_cursor += 1;
            if let BoundedCert::Pruned { .. } =
                pruner.certify_bounded(copies, policies, prune_bound).unwrap()
            {
                pruned_runs += 1;
            }
        });

        // The certify-and-repair loop on the spec's own strategy: how many
        // repair searches the flow actually runs, and the final verdict.
        let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
        let flow_started = Instant::now();
        let psi = synthesize_system(
            &spec.app,
            &spec.platform,
            spec.fault_model,
            &spec.transparency,
            config,
        )
        .expect("shipped specs synthesize");
        let flow_ns = flow_started.elapsed().as_nanos() as u64;
        assert!(
            matches!(warm.certify(&copies, &policies).unwrap(), CertOutcome::Exact { .. }),
            "shipped specs fit the certification budget"
        );

        w.begin_object();
        w.key("spec");
        w.string(&format!("specs/{name}"));
        w.key("processes");
        w.number_usize(spec.app.process_count());
        w.key("k");
        w.number_u64(spec.fault_model.k() as u64);
        w.key("certify_cold_ns");
        w.number_u64(cold);
        w.key("certify_cached_ns");
        w.number_u64(cached);
        w.key("certify_delta_cold_ns");
        w.number_u64(delta_cold);
        w.key("certify_incremental_ns");
        w.number_u64(incremental);
        w.key("incremental_speedup");
        w.number_f64(delta_cold as f64 / incremental.max(1) as f64, 1);
        w.key("incremental_builds");
        w.number_u64(incremental_builds);
        w.key("certify_pruned_ns");
        w.number_u64(pruned);
        w.key("pruned_runs");
        w.number_u64(pruned_runs);
        w.key("cache_amortization");
        w.number_f64(cold as f64 / cached.max(1) as f64, 1);
        w.key("flow_ns");
        w.number_u64(flow_ns);
        w.key("repair_rounds");
        w.number_u64(psi.repair_rounds as u64);
        w.key("certified");
        w.bool(matches!(psi.certification, Certification::Certified { .. }));
        w.key("exact_len");
        match psi.certification.exact_len() {
            Some(len) => w.number_i64(len.units()),
            None => w.null(),
        }
        w.key("estimate");
        w.number_i64(psi.estimate.worst_case_length.units());
        w.key("calibration_milli");
        w.number_u64(psi.calibration_milli);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    std::fs::write(REPORT_PATH, &body).expect("write BENCH_certify.json");
    println!("wrote {REPORT_PATH}");
    println!("{body}");
}

fn main() {
    benches();
    write_report();
}
