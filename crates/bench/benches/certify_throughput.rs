//! Criterion bench for the exact-certification kernel on every real spec
//! in `specs/*.ftes`: cold certify (FT-CPG construction + exact
//! conditional scheduling) vs the memoized verdict cache, plus the
//! certify-and-repair loop's behavior through the full synthesis flow
//! (repair invocations, final verdict, calibration factor).
//!
//! Besides the console medians, the run records its numbers to
//! `BENCH_certify.json` at the workspace root (uploaded as a CI artifact
//! per run) — the cost trajectory of the certification subsystem.

use criterion::{criterion_group, Criterion};
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::json::JsonWriter;
use ftes::model::Mapping;
use ftes::sched::{CertOutcome, Certifier, CertifyConfig};
use ftes::spec::{parse_spec, SystemSpec};
use ftes::{synthesize_system, Certification, FlowConfig};
use std::time::Instant;

const SPECS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_certify.json");

fn specs() -> Vec<(String, SystemSpec)> {
    let mut paths: Vec<_> = std::fs::read_dir(SPECS_DIR)
        .expect("specs directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ftes"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let spec = parse_spec(&std::fs::read_to_string(&p).expect("readable spec"))
                .expect("valid spec");
            (name, spec)
        })
        .collect()
}

/// The uniform-re-execution baseline configuration of a spec — a cheap,
/// always-feasible state, so the bench isolates certification cost from
/// search cost.
fn baseline(spec: &SystemSpec) -> (CopyMapping, PolicyAssignment) {
    let arch = spec.platform.architecture();
    let mapping = Mapping::cheapest(&spec.app, arch).expect("spec is mappable");
    let policies = PolicyAssignment::uniform_reexecution(&spec.app, spec.fault_model.k());
    let copies =
        CopyMapping::from_base(&spec.app, arch, &mapping, &policies).expect("feasible baseline");
    (copies, policies)
}

fn certifier(spec: &SystemSpec) -> Certifier {
    Certifier::new(
        &spec.app,
        &spec.platform,
        spec.fault_model,
        &spec.transparency,
        CertifyConfig::default(),
    )
}

fn bench_certify_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify_throughput");
    group.sample_size(20);
    for (name, spec) in specs() {
        let (copies, policies) = baseline(&spec);
        group.bench_function(format!("cold/{name}"), |b| {
            b.iter(|| certifier(&spec).certify(&copies, &policies).unwrap())
        });
        let mut warm = certifier(&spec);
        warm.certify(&copies, &policies).unwrap();
        group.bench_function(format!("cached/{name}"), |b| {
            b.iter(|| warm.certify(&copies, &policies).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certify_throughput);

/// Median nanoseconds per call over `iters` timed calls (one warm-up).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Re-measures certification per spec and writes `BENCH_certify.json`.
fn write_report() {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("certify_throughput");
    w.key("specs");
    w.begin_array();
    for (name, spec) in specs() {
        let (copies, policies) = baseline(&spec);
        let cold = median_ns(30, || {
            certifier(&spec).certify(&copies, &policies).unwrap();
        });
        let mut warm = certifier(&spec);
        warm.certify(&copies, &policies).unwrap();
        let cached = median_ns(200, || {
            warm.certify(&copies, &policies).unwrap();
        });
        // The certify-and-repair loop on the spec's own strategy: how many
        // repair searches the flow actually runs, and the final verdict.
        let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
        let flow_started = Instant::now();
        let psi = synthesize_system(
            &spec.app,
            &spec.platform,
            spec.fault_model,
            &spec.transparency,
            config,
        )
        .expect("shipped specs synthesize");
        let flow_ns = flow_started.elapsed().as_nanos() as u64;
        assert!(
            matches!(warm.certify(&copies, &policies).unwrap(), CertOutcome::Exact { .. }),
            "shipped specs fit the certification budget"
        );

        w.begin_object();
        w.key("spec");
        w.string(&format!("specs/{name}"));
        w.key("processes");
        w.number_usize(spec.app.process_count());
        w.key("k");
        w.number_u64(spec.fault_model.k() as u64);
        w.key("certify_cold_ns");
        w.number_u64(cold);
        w.key("certify_cached_ns");
        w.number_u64(cached);
        w.key("cache_amortization");
        w.number_f64(cold as f64 / cached.max(1) as f64, 1);
        w.key("flow_ns");
        w.number_u64(flow_ns);
        w.key("repair_rounds");
        w.number_u64(psi.repair_rounds as u64);
        w.key("certified");
        w.bool(matches!(psi.certification, Certification::Certified { .. }));
        w.key("exact_len");
        match psi.certification.exact_len() {
            Some(len) => w.number_i64(len.units()),
            None => w.null(),
        }
        w.key("estimate");
        w.number_i64(psi.estimate.worst_case_length.units());
        w.key("calibration_milli");
        w.number_u64(psi.calibration_milli);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    std::fs::write(REPORT_PATH, &body).expect("write BENCH_certify.json");
    println!("wrote {REPORT_PATH}");
    println!("{body}");
}

fn main() {
    benches();
    write_report();
}
