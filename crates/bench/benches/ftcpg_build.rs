//! Criterion bench: FT-CPG construction cost across application sizes and
//! fault budgets (the graph of §5.1 grows with the scenario space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
use ftes::model::{FaultModel, Mapping, Transparency};
use ftes_bench::{platform, workload, ExperimentPoint};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftcpg_build");
    for (n, k) in [(8, 1), (8, 2), (12, 2), (16, 2), (12, 3)] {
        let point = ExperimentPoint { processes: n, nodes: 2, k };
        let app = workload(point, 0);
        let plat = platform(point.nodes);
        let mapping = Mapping::cheapest(&app, plat.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies =
            CopyMapping::from_base(&app, plat.architecture(), &mapping, &policies).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(&app, &policies, &copies, k),
            |b, (app, policies, copies, k)| {
                b.iter(|| {
                    build_ftcpg(
                        app,
                        policies,
                        copies,
                        FaultModel::new(*k),
                        &Transparency::none(),
                        BuildConfig::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
