//! Criterion bench for the evaluation kernel on `specs/mixed20.ftes`:
//! cold construct+evaluate vs reused-evaluator vs the delta path vs the
//! batched neighborhood path — the four regimes of the synthesis hot loop
//! after the `SystemEvaluator` refactor and its SoA/batch follow-up.
//!
//! Besides the console medians, the run records its numbers to
//! `BENCH_estimate.json` at the workspace root, continuing the performance
//! trajectory of the estimator (CI uploads the file as an artifact and
//! fails the build if the batch path ever regresses below the delta path).

use criterion::{criterion_group, Criterion};
use ftes::ft::{Policy, PolicyAssignment};
use ftes::ftcpg::CopyMapping;
use ftes::json::JsonWriter;
use ftes::model::{Mapping, NodeId};
use ftes::sched::SystemEvaluator;
use ftes::spec::{parse_spec, SystemSpec};
use std::time::Instant;

const SPEC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/mixed20.ftes");
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_estimate.json");

/// The neighborhood sizes recorded for the batch path. 24 is the default
/// `SearchConfig::neighborhood` (the `batch_ns` headline number); 8 and 64
/// bracket it.
const BATCH_SIZES: [usize; 3] = [8, 24, 64];

struct Instance {
    spec: SystemSpec,
    mapping: Mapping,
    policies: PolicyAssignment,
    copies: CopyMapping,
    moved_copies: CopyMapping,
}

fn instance() -> Instance {
    let text = std::fs::read_to_string(SPEC_PATH).expect("specs/mixed20.ftes exists");
    let spec = parse_spec(&text).expect("mixed20 parses");
    let arch = spec.platform.architecture();
    let mapping = Mapping::cheapest(&spec.app, arch).expect("mixed20 is mappable");
    let policies = PolicyAssignment::uniform_reexecution(&spec.app, spec.fault_model.k());
    let copies = CopyMapping::from_base(&spec.app, arch, &mapping, &policies).expect("feasible");
    // A representative neighborhood move: remap the first movable process
    // to a different candidate node (what `delta_evaluate` scores all day).
    let (p, to) = spec
        .app
        .processes()
        .find_map(|(p, proc)| {
            if proc.fixed_node().is_some() {
                return None;
            }
            let others: Vec<NodeId> =
                proc.candidate_nodes().filter(|&n| n != mapping.node_of(p)).collect();
            others.first().map(|&n| (p, n))
        })
        .expect("mixed20 has movable processes");
    let moved = mapping.with_move(&spec.app, arch, p, to).expect("candidate node");
    let moved_copies =
        CopyMapping::from_base(&spec.app, arch, &moved, &policies).expect("feasible");
    Instance { spec, mapping, policies, copies, moved_copies }
}

/// A deterministic `size`-candidate neighborhood of the instance's base
/// state: every movable (process, node) remap plus one replication
/// repolicy per process, cycled if `size` exceeds the distinct move count
/// — the same move vocabulary the search engines sample.
fn neighborhood(inst: &Instance, size: usize) -> Vec<(CopyMapping, PolicyAssignment)> {
    let app = &inst.spec.app;
    let arch = inst.spec.platform.architecture();
    let k = inst.spec.fault_model.k();
    let mut moves: Vec<(CopyMapping, PolicyAssignment)> = Vec::new();
    for (p, proc) in app.processes() {
        if proc.fixed_node().is_none() {
            for to in proc.candidate_nodes() {
                if to == inst.mapping.node_of(p) {
                    continue;
                }
                let Ok(m) = inst.mapping.with_move(app, arch, p, to) else { continue };
                let Ok(c) = CopyMapping::from_base(app, arch, &m, &inst.policies) else { continue };
                moves.push((c, inst.policies.clone()));
            }
        }
        let repolicy = Policy::replication(k);
        if *inst.policies.policy(p) != repolicy {
            let mut pols = inst.policies.clone();
            pols.set(p, repolicy);
            let Ok(c) = CopyMapping::from_base(app, arch, &inst.mapping, &pols) else { continue };
            moves.push((c, pols));
        }
    }
    assert!(!moves.is_empty(), "mixed20 must yield candidate moves");
    (0..size).map(|i| moves[i % moves.len()].clone()).collect()
}

fn bench_estimate_throughput(c: &mut Criterion) {
    let inst = instance();
    let k = inst.spec.fault_model.k();
    let mut group = c.benchmark_group("estimate_throughput");
    group.sample_size(40);

    group.bench_function("cold_construct_evaluate", |b| {
        b.iter(|| {
            SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k)
                .evaluate(&inst.copies, &inst.policies)
                .unwrap()
        })
    });

    let mut reused = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
    group.bench_function("reused_evaluate", |b| {
        b.iter(|| reused.evaluate(&inst.copies, &inst.policies).unwrap())
    });

    let mut delta = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
    delta.evaluate(&inst.copies, &inst.policies).unwrap();
    group.bench_function("delta_evaluate", |b| {
        b.iter(|| delta.delta_evaluate(&inst.moved_copies, &inst.policies).unwrap())
    });

    let neigh = neighborhood(&inst, 24);
    let refs: Vec<(&CopyMapping, &PolicyAssignment)> = neigh.iter().map(|(c, p)| (c, p)).collect();
    let mut batch = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
    batch.evaluate(&inst.copies, &inst.policies).unwrap();
    group.bench_function("batch_evaluate_24", |b| b.iter(|| batch.evaluate_batch(&refs)));
    group.finish();

    let stats = delta.stats();
    assert!(stats.delta_evals > 0, "the bench move must exercise the delta fast path");
    assert!(batch.stats().delta_evals > 0, "the batch must exercise the delta fast path");
}

criterion_group!(benches, bench_estimate_throughput);

/// Median nanoseconds per call over `iters` timed calls (one warm-up).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Re-measures the four regimes and writes `BENCH_estimate.json`.
fn write_report() {
    let inst = instance();
    let k = inst.spec.fault_model.k();
    let iters = 300;

    let cold = median_ns(iters, || {
        SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k)
            .evaluate(&inst.copies, &inst.policies)
            .unwrap();
    });
    let mut evaluator = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
    let reused = median_ns(iters, || {
        evaluator.evaluate(&inst.copies, &inst.policies).unwrap();
    });
    evaluator.evaluate(&inst.copies, &inst.policies).unwrap();
    let delta = median_ns(iters, || {
        evaluator.delta_evaluate(&inst.moved_copies, &inst.policies).unwrap();
    });
    // Guard the recorded number: if the move ever degenerated into the
    // noop/fallback path (e.g. the spec changed and the moved process now
    // sits at position 0), the timing above would not measure suffix
    // re-scheduling and must not be published as `delta_ns`.
    assert!(
        evaluator.stats().delta_evals > 0,
        "the recorded move must exercise the delta fast path"
    );

    // The batch path: amortized ns/candidate at each neighborhood size,
    // measured on a kernel anchored at the base state (the search-loop
    // regime: one anchor, whole neighborhoods diffed against it).
    let mut batch_per_candidate = [0u64; BATCH_SIZES.len()];
    for (slot, &size) in BATCH_SIZES.iter().enumerate() {
        let neigh = neighborhood(&inst, size);
        let refs: Vec<(&CopyMapping, &PolicyAssignment)> =
            neigh.iter().map(|(c, p)| (c, p)).collect();
        let mut kernel = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
        kernel.evaluate(&inst.copies, &inst.policies).unwrap();
        let total = median_ns(iters, || {
            kernel.evaluate_batch(&refs);
        });
        batch_per_candidate[slot] = total / size as u64;
        assert!(kernel.stats().delta_evals > 0, "the batch must exercise the delta fast path");
    }
    let [batch8, batch24, batch64] = batch_per_candidate;

    // The apples-to-apples baseline for the batch: sequential
    // `delta_evaluate` calls over the *same* 24-candidate neighborhood on an
    // identically anchored kernel. (`delta_ns` above times one fixed
    // mid-schedule move — a different workload from a whole neighborhood,
    // whose candidates dirty the schedule at every depth.)
    let seq = {
        let neigh = neighborhood(&inst, 24);
        let mut kernel = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
        kernel.evaluate(&inst.copies, &inst.policies).unwrap();
        let total = median_ns(iters, || {
            for (c, p) in &neigh {
                let _ = kernel.delta_evaluate(c, p);
            }
        });
        total / 24
    };
    // The batch path must never regress below sequential delta scoring of
    // the same neighborhood (CI re-checks this from the recorded fields;
    // both sides are measured in the same process, so the comparison is
    // robust to machine-speed drift between runs).
    assert!(
        batch24 <= seq,
        "batch path ({batch24} ns/candidate) regressed below sequential delta ({seq} ns/candidate)"
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("estimate_throughput");
    w.key("spec");
    w.string("specs/mixed20.ftes");
    w.key("processes");
    w.number_usize(inst.spec.app.process_count());
    w.key("nodes");
    w.number_usize(inst.spec.platform.architecture().node_count());
    w.key("k");
    w.number_u64(k as u64);
    w.key("iters");
    w.number_usize(iters);
    w.key("cold_ns");
    w.number_u64(cold);
    w.key("reused_ns");
    w.number_u64(reused);
    w.key("delta_ns");
    w.number_u64(delta);
    w.key("seq_ns");
    w.number_u64(seq);
    w.key("batch8_ns");
    w.number_u64(batch8);
    w.key("batch_ns");
    w.number_u64(batch24);
    w.key("batch64_ns");
    w.number_u64(batch64);
    w.key("speedup_reused");
    w.number_f64(cold as f64 / reused.max(1) as f64, 2);
    w.key("speedup_delta");
    w.number_f64(cold as f64 / delta.max(1) as f64, 2);
    w.key("speedup_batch");
    w.number_f64(cold as f64 / batch24.max(1) as f64, 2);
    w.key("speedup_batch_vs_seq");
    w.number_f64(seq as f64 / batch24.max(1) as f64, 2);
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    std::fs::write(REPORT_PATH, &body).expect("write BENCH_estimate.json");
    println!("wrote {REPORT_PATH}");
    println!("{body}");
}

fn main() {
    benches();
    write_report();
}
