//! Criterion bench for the tracing instrumentation's overhead on the
//! synthesis hot path: `delta_evaluate` on `specs/mixed20.ftes` (the
//! 1.3µs/call regime recorded in `BENCH_estimate.json`) with the trace
//! gate off and on.
//!
//! The disabled path of every span/counter is one relaxed atomic load
//! and a branch, so `disabled_ns` must stay within noise of the
//! pre-instrumentation `delta_ns` baseline (< 2%). The run records its
//! numbers to `BENCH_obs.json` at the workspace root (CI uploads it as
//! an artifact alongside `BENCH_estimate.json`).

use criterion::{criterion_group, Criterion};
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::json::JsonWriter;
use ftes::model::{Mapping, NodeId};
use ftes::sched::SystemEvaluator;
use ftes::spec::{parse_spec, SystemSpec};
use std::time::Instant;

const SPEC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/mixed20.ftes");
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_estimate.json");

struct Instance {
    spec: SystemSpec,
    policies: PolicyAssignment,
    copies: CopyMapping,
    moved_copies: CopyMapping,
}

fn instance() -> Instance {
    let text = std::fs::read_to_string(SPEC_PATH).expect("specs/mixed20.ftes exists");
    let spec = parse_spec(&text).expect("mixed20 parses");
    let arch = spec.platform.architecture();
    let mapping = Mapping::cheapest(&spec.app, arch).expect("mixed20 is mappable");
    let policies = PolicyAssignment::uniform_reexecution(&spec.app, spec.fault_model.k());
    let copies = CopyMapping::from_base(&spec.app, arch, &mapping, &policies).expect("feasible");
    let (p, to) = spec
        .app
        .processes()
        .find_map(|(p, proc)| {
            if proc.fixed_node().is_some() {
                return None;
            }
            let others: Vec<NodeId> =
                proc.candidate_nodes().filter(|&n| n != mapping.node_of(p)).collect();
            others.first().map(|&n| (p, n))
        })
        .expect("mixed20 has movable processes");
    let moved = mapping.with_move(&spec.app, arch, p, to).expect("candidate node");
    let moved_copies =
        CopyMapping::from_base(&spec.app, arch, &moved, &policies).expect("feasible");
    Instance { spec, policies, copies, moved_copies }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let inst = instance();
    let k = inst.spec.fault_model.k();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(40);

    let mut evaluator = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
    evaluator.evaluate(&inst.copies, &inst.policies).unwrap();

    ftes::obs::set_enabled(false);
    group.bench_function("delta_evaluate_tracing_disabled", |b| {
        b.iter(|| evaluator.delta_evaluate(&inst.moved_copies, &inst.policies).unwrap())
    });

    ftes::obs::set_enabled(true);
    group.bench_function("delta_evaluate_tracing_enabled", |b| {
        b.iter(|| evaluator.delta_evaluate(&inst.moved_copies, &inst.policies).unwrap())
    });
    ftes::obs::set_enabled(false);
    // Keep the rings from pinning a full buffer of bench events.
    ftes::obs::drain();
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);

/// Median nanoseconds per call over `iters` timed calls (one warm-up).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The `delta_ns` baseline out of `BENCH_estimate.json`, when present.
fn baseline_delta_ns() -> Option<u64> {
    let text = std::fs::read_to_string(BASELINE_PATH).ok()?;
    let json = ftes::obs::validate::parse_json(&text).ok()?;
    Some(json.get("delta_ns")?.as_num()? as u64)
}

/// Re-measures both gates and writes `BENCH_obs.json`.
fn write_report() {
    let inst = instance();
    let k = inst.spec.fault_model.k();
    let iters = 300;

    let mut evaluator = SystemEvaluator::new(&inst.spec.app, &inst.spec.platform, k);
    evaluator.evaluate(&inst.copies, &inst.policies).unwrap();

    ftes::obs::set_enabled(false);
    let disabled = median_ns(iters, || {
        evaluator.delta_evaluate(&inst.moved_copies, &inst.policies).unwrap();
    });
    ftes::obs::set_enabled(true);
    let enabled = median_ns(iters, || {
        evaluator.delta_evaluate(&inst.moved_copies, &inst.policies).unwrap();
    });
    ftes::obs::set_enabled(false);
    let captured = ftes::obs::drain().len();
    assert!(captured > 0, "the enabled run must actually capture events");
    assert!(
        evaluator.stats().delta_evals > 0,
        "the recorded move must exercise the delta fast path"
    );

    let baseline = baseline_delta_ns();
    let overhead_pct =
        baseline.map(|b| (disabled as f64 - b as f64) * 100.0 / b.max(1) as f64).unwrap_or(0.0);

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("obs_overhead");
    w.key("spec");
    w.string("specs/mixed20.ftes");
    w.key("iters");
    w.number_usize(iters);
    w.key("disabled_ns");
    w.number_u64(disabled);
    w.key("enabled_ns");
    w.number_u64(enabled);
    w.key("baseline_delta_ns");
    w.number_u64(baseline.unwrap_or(0));
    w.key("overhead_pct_vs_baseline");
    w.number_f64(overhead_pct, 2);
    w.key("enabled_overhead_pct");
    w.number_f64((enabled as f64 - disabled as f64) * 100.0 / disabled.max(1) as f64, 2);
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    std::fs::write(REPORT_PATH, &body).expect("write BENCH_obs.json");
    println!("wrote {REPORT_PATH}");
    println!("{body}");
}

fn main() {
    benches();
    write_report();
}
