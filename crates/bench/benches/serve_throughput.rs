//! Criterion bench: service-path overhead of `ftes-serve`.
//!
//! Three measurements over a live in-process server:
//! * `healthz`            — pure transport + routing floor (no synthesis);
//! * `synthesize_cached`  — the steady-state hot path: canonical-key
//!   lookup + replayed body (what repeated production traffic pays);
//! * `synthesize_cold`    — a unique spec every iteration, i.e. transport
//!   plus one full Fig. 5-sized synthesis (the cache-miss ceiling).
//!
//! The cached/cold gap is the amortization the result cache buys; the
//! healthz/cached gap is what the cache machinery itself costs.

use criterion::{criterion_group, criterion_main, Criterion};
use ftes::spec::FIG5_SPEC;
use ftes_serve::{request, start, ServeConfig};
use std::net::TcpStream;
use std::time::Duration;

fn call(addr: &str, method: &str, path: &str, body: &str) -> u16 {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let (status, _) = request(&stream, method, path, body).expect("request");
    status
}

fn bench_serve_throughput(c: &mut Criterion) {
    let server = start(ServeConfig { workers: 2, cache_capacity: 1024, ..ServeConfig::default() })
        .expect("start server");
    let addr = server.addr().to_string();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);

    group.bench_function("healthz", |b| {
        b.iter(|| assert_eq!(call(&addr, "GET", "/healthz", ""), 200))
    });

    // Warm the entry once, then measure pure replay.
    assert_eq!(call(&addr, "POST", "/synthesize", FIG5_SPEC), 200);
    group.bench_function("synthesize_cached", |b| {
        b.iter(|| assert_eq!(call(&addr, "POST", "/synthesize", FIG5_SPEC), 200))
    });

    // A semantically distinct deadline per iteration forces a miss (the
    // instance stays schedulable: Fig. 5 fits in well under 400 units).
    let mut deadline = 400u64;
    group.bench_function("synthesize_cold", |b| {
        b.iter(|| {
            deadline += 1;
            let spec = FIG5_SPEC.replace("deadline 400", &format!("deadline {deadline}"));
            assert_eq!(call(&addr, "POST", "/synthesize", &spec), 200);
        })
    });

    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
