//! Criterion bench: the Fig. 8 checkpoint-count comparison (local optimum
//! \[27\] vs global greedy \[15\]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftes::model::Mapping;
use ftes::opt::compare_checkpointing;
use ftes_bench::{fig8_points, platform, workload};

fn bench_checkpoint_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_opt");
    group.sample_size(10);
    for point in fig8_points().into_iter().take(2) {
        let app = workload(point, 0);
        let plat = platform(point.nodes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{}_k{}", point.processes, point.k)),
            &(&app, &plat, point.k),
            |b, (app, plat, k)| {
                b.iter(|| {
                    let mapping = Mapping::cheapest(app, plat.architecture()).unwrap();
                    compare_checkpointing(app, plat, mapping, *k, 32).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint_opt);
criterion_main!(benches);
