//! Criterion bench: the one-shot `estimate_schedule_length` wrapper
//! (construct + evaluate per call) at the paper's experiment sizes
//! (20-100 processes). The optimization loops themselves hold a reused
//! `SystemEvaluator` kernel — `estimate_throughput` benches that gap —
//! so this bench tracks the *cold* baseline of the Fig. 7/8 sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::CopyMapping;
use ftes::model::Mapping;
use ftes::sched::estimate_schedule_length;
use ftes_bench::{fig7_points, platform, workload};

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    for point in fig7_points() {
        let app = workload(point, 0);
        let plat = platform(point.nodes);
        let mapping = Mapping::cheapest(&app, plat.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, point.k);
        let copies =
            CopyMapping::from_base(&app, plat.architecture(), &mapping, &policies).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{}_k{}", point.processes, point.k)),
            &(&app, &plat, &copies, &policies, point.k),
            |b, (app, plat, copies, policies, k)| {
                b.iter(|| estimate_schedule_length(app, plat, copies, policies, *k).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
