//! Criterion bench: one MXR synthesis per Fig. 7 point (reduced search
//! budget; the figure binary uses the full budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftes::opt::{synthesize, SearchConfig, Strategy};
use ftes_bench::{fig7_points, platform, workload};

fn bench_mxr(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_assignment_mxr");
    group.sample_size(10);
    for point in fig7_points().into_iter().take(3) {
        let app = workload(point, 0);
        let plat = platform(point.nodes);
        let cfg = SearchConfig { iterations: 30, neighborhood: 12, ..SearchConfig::default() };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{}_k{}", point.processes, point.k)),
            &(&app, &plat, point.k),
            |b, (app, plat, k)| b.iter(|| synthesize(app, plat, *k, Strategy::Mxr, cfg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mxr);
criterion_main!(benches);
