//! Criterion bench: conditional list scheduling of FT-CPGs (§5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftes::ft::PolicyAssignment;
use ftes::ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
use ftes::model::{FaultModel, Mapping, Transparency};
use ftes::sched::{schedule_ftcpg, SchedConfig};
use ftes_bench::{platform, workload, ExperimentPoint};

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("conditional_sched");
    for (n, k) in [(8, 2), (12, 2), (12, 3)] {
        let point = ExperimentPoint { processes: n, nodes: 2, k };
        let app = workload(point, 0);
        let plat = platform(point.nodes);
        let mapping = Mapping::cheapest(&app, plat.architecture()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies =
            CopyMapping::from_base(&app, plat.architecture(), &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}_nodes{}", cpg.node_count())),
            &(&app, &cpg, &plat),
            |b, (app, cpg, plat)| {
                b.iter(|| schedule_ftcpg(app, cpg, plat, SchedConfig::default()).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
