//! # ftes-gen
//!
//! Seeded synthetic workload generation for the paper's experiments (§6):
//! random layered task graphs of 20–100 processes mapped on architectures
//! of 2–6 nodes, with WCETs, mapping restrictions, fault-tolerance
//! overheads and message sizes drawn from configurable ranges — the
//! substitution for the authors' unpublished TGFF-style generator (see
//! DESIGN.md).
//!
//! Generation is deterministic in `(config, seed)` across platforms
//! (ChaCha-based), so every figure harness is exactly reproducible.
//!
//! ```
//! use ftes_gen::{generate_application, GeneratorConfig};
//!
//! # fn main() -> Result<(), ftes_model::ModelError> {
//! let config = GeneratorConfig::new(20, 3);
//! let app = generate_application(&config, 42)?;
//! assert_eq!(app.process_count(), 20);
//! assert_eq!(app.node_count(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;

use ftes_model::{Application, ApplicationBuilder, ModelError, ProcessSpec, Time};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic application generator.
///
/// Defaults follow the paper's experimental setup: WCETs of 10–100 time
/// units, error-detection/recovery/checkpointing overheads of 5–15% of the
/// WCET, most processes mappable on most nodes with ±50% WCET variation
/// between nodes, and a deadline derived from the serial load with a
/// configurable slack factor.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of processes `|V|`.
    pub process_count: usize,
    /// Number of architecture nodes `|N|`.
    pub node_count: usize,
    /// Number of DAG layers (defaults to `⌈√|V|⌉` when `None`).
    pub layers: Option<usize>,
    /// Probability of an edge between consecutive-layer process pairs.
    pub edge_probability: f64,
    /// Base WCET range (inclusive).
    pub wcet_range: (i64, i64),
    /// Per-node WCET multiplier spread: node WCET = base · U(1, 1 + spread).
    pub wcet_node_variation: f64,
    /// Probability that a process can execute on a given non-home node
    /// (its home node is always feasible — the `X` entries of Fig. 3c).
    pub mappable_fraction: f64,
    /// Error-detection overhead `α` as a fraction range of the base WCET.
    pub alpha_fraction: (f64, f64),
    /// Recovery overhead `µ` as a fraction range of the base WCET.
    pub mu_fraction: (f64, f64),
    /// Checkpointing overhead `χ` as a fraction range of the base WCET.
    pub chi_fraction: (f64, f64),
    /// Bus transmission time range for messages.
    pub transmission_range: (i64, i64),
    /// Deadline = serial-load lower bound · this factor.
    pub deadline_factor: f64,
}

impl GeneratorConfig {
    /// The paper-style configuration for a given size.
    pub fn new(process_count: usize, node_count: usize) -> Self {
        GeneratorConfig {
            process_count,
            node_count,
            layers: None,
            edge_probability: 0.3,
            wcet_range: (10, 100),
            wcet_node_variation: 0.5,
            mappable_fraction: 0.8,
            alpha_fraction: (0.05, 0.15),
            mu_fraction: (0.05, 0.15),
            chi_fraction: (0.03, 0.10),
            transmission_range: (1, 4),
            deadline_factor: 4.0,
        }
    }

    /// A chain-heavy variant: deep layering (`|V|/2` layers) with dense
    /// consecutive-layer edges. Precedence chains leave spare processor
    /// capacity — the replication-friendly regime of the paper's §3.2 —
    /// and this is the shape the figure harnesses sweep (EXPERIMENTS.md
    /// records the calibration).
    pub fn chainy(process_count: usize, node_count: usize) -> Self {
        GeneratorConfig {
            layers: Some((process_count / 2).max(2)),
            edge_probability: 0.7,
            ..GeneratorConfig::new(process_count, node_count)
        }
    }

    /// A wide, parallel-heavy variant: few layers, so most processes are
    /// independent and the schedulers contend on processors rather than on
    /// precedence — the stress shape for resource-table logic (the
    /// evaluator equality property test mixes this with
    /// [`chainy`](GeneratorConfig::chainy) and the default shape).
    pub fn wide(process_count: usize, node_count: usize) -> Self {
        GeneratorConfig {
            layers: Some(3.min(process_count.max(1))),
            edge_probability: 0.4,
            ..GeneratorConfig::new(process_count, node_count)
        }
    }

    fn layer_count(&self) -> usize {
        self.layers.unwrap_or_else(|| (self.process_count as f64).sqrt().ceil() as usize).max(1)
    }
}

/// Generates one random application; deterministic in `(config, seed)`.
///
/// # Errors
///
/// Propagates [`ModelError`] from application validation (only reachable
/// with degenerate configurations, e.g. `process_count == 0`).
pub fn generate_application(
    config: &GeneratorConfig,
    seed: u64,
) -> Result<Application, ModelError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = config.process_count;
    let layer_count = config.layer_count();
    // Assign every process to a layer; guarantee no empty layers by seeding
    // one process per layer first.
    let mut layer_of = vec![0usize; n];
    for (i, l) in layer_of.iter_mut().enumerate().take(layer_count.min(n)) {
        *l = i;
    }
    for l in layer_of.iter_mut().skip(layer_count.min(n)) {
        *l = rng.gen_range(0..layer_count);
    }

    let mut builder = ApplicationBuilder::new(config.node_count);
    let mut serial_load = Time::ZERO;
    for i in 0..n {
        let base = rng.gen_range(config.wcet_range.0..=config.wcet_range.1);
        serial_load += Time::new(base);
        let home = rng.gen_range(0..config.node_count);
        let wcet: Vec<Option<Time>> = (0..config.node_count)
            .map(|node| {
                if node != home && !rng.gen_bool(config.mappable_fraction) {
                    return None;
                }
                let factor = 1.0 + rng.gen_range(0.0..=config.wcet_node_variation);
                Some(Time::new(((base as f64) * factor).round() as i64))
            })
            .collect();
        let frac = |r: (f64, f64), rng: &mut ChaCha8Rng| {
            Time::new(((base as f64) * rng.gen_range(r.0..=r.1)).round().max(0.0) as i64)
        };
        let alpha = frac(config.alpha_fraction, &mut rng);
        let mu = frac(config.mu_fraction, &mut rng);
        let chi = frac(config.chi_fraction, &mut rng);
        builder.add_process(ProcessSpec::new(format!("P{i}"), wcet).overheads(alpha, mu, chi));
    }

    // Edges between consecutive layers (plus occasional skips) keep the
    // graph acyclic by construction.
    let mut msg = 0usize;
    for src in 0..n {
        for dst in 0..n {
            if layer_of[dst] <= layer_of[src] {
                continue;
            }
            let adjacent = layer_of[dst] == layer_of[src] + 1;
            let p = if adjacent { config.edge_probability } else { config.edge_probability * 0.1 };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let trans =
                    rng.gen_range(config.transmission_range.0..=config.transmission_range.1);
                builder
                    .add_message(
                        format!("m{msg}"),
                        ftes_model::ProcessId::new(src),
                        ftes_model::ProcessId::new(dst),
                        Time::new(trans),
                    )
                    .expect("layered edges are acyclic and unique");
                msg += 1;
            }
        }
    }

    // Deadline: serial load per node, inflated by the slack factor (the FTO
    // metric is relative, so the absolute deadline only gates feasibility).
    let per_node = Time::new(serial_load.units() / config.node_count.max(1) as i64);
    let deadline = Time::new(
        ((per_node.units().max(config.wcet_range.1) as f64) * config.deadline_factor) as i64,
    );
    builder.deadline(deadline).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig::new(30, 3);
        let a = generate_application(&config, 7).unwrap();
        let b = generate_application(&config, 7).unwrap();
        assert_eq!(a, b);
        let c = generate_application(&config, 8).unwrap();
        assert_ne!(a, c, "different seeds give different applications");
    }

    #[test]
    fn sizes_and_structure() {
        for (n, nodes) in [(20, 2), (50, 4), (100, 6)] {
            let config = GeneratorConfig::new(n, nodes);
            let app = generate_application(&config, 1).unwrap();
            assert_eq!(app.process_count(), n);
            assert_eq!(app.node_count(), nodes);
            assert!(app.message_count() > 0, "graphs are connected enough to be interesting");
            assert_eq!(app.topological_order().len(), n);
        }
    }

    #[test]
    fn every_process_has_a_home_node() {
        let config = GeneratorConfig { mappable_fraction: 0.0, ..GeneratorConfig::new(25, 4) };
        let app = generate_application(&config, 3).unwrap();
        for (_, p) in app.processes() {
            assert_eq!(p.candidate_nodes().count(), 1, "only the home node is feasible");
        }
    }

    #[test]
    fn overheads_are_fractions_of_wcet() {
        let config = GeneratorConfig::new(40, 3);
        let app = generate_application(&config, 11).unwrap();
        for (_, p) in app.processes() {
            let min_wcet = p.candidate_nodes().filter_map(|n| p.wcet_on(n)).min().unwrap();
            assert!(p.alpha() <= min_wcet, "α below the WCET");
            assert!(!p.mu().is_negative() && !p.chi().is_negative());
        }
    }

    #[test]
    fn deadline_scales_with_load() {
        let small = generate_application(&GeneratorConfig::new(20, 2), 5).unwrap();
        let large = generate_application(&GeneratorConfig::new(100, 2), 5).unwrap();
        assert!(large.deadline() > small.deadline());
    }

    #[test]
    fn layer_override_is_respected() {
        let config = GeneratorConfig { layers: Some(2), ..GeneratorConfig::new(10, 2) };
        let app = generate_application(&config, 9).unwrap();
        // With two layers every edge goes layer 0 -> layer 1, so receivers
        // are sinks.
        for (_, m) in app.messages() {
            assert!(app.successors(m.dst()).is_empty(), "two layers => sinks receive");
        }
    }
}
