//! The scenario corpus: named, parameterized spec families.
//!
//! The paper's §6 sweeps whole *families* of synthetic applications —
//! chain-heavy control paths, wide parallel stages, policy-mixing
//! overhead profiles, bus-dominated systems, utilization sweeps — while
//! the repo used to ship three hand-written `.ftes` documents. This
//! module turns the generator into a corpus engine: each [`Family`]
//! names a workload class, describes its members as complete
//! [`GeneratorConfig`]s plus platform/strategy parameters, and emits
//! every member as a real `.ftes` document ([`render_ftes`]) that the
//! ordinary `ftes::spec` parser round-trips losslessly.
//!
//! Generation is deterministic in `(family, master seed)`: member seeds
//! derive from an FNV mix of the family name, the member index and the
//! master seed, so `ftes corpus generate --family all --seed 7` produces
//! byte-identical files on every machine, forever (the determinism tests
//! in `tests/corpus.rs` pin this, and `specs/corpus_*.ftes` check one
//! exemplar per family into the repository).

use crate::{generate_application, GeneratorConfig};
use ftes_model::{Application, ModelError, NodeId, ProcessId, Time};
use std::fmt::Write as _;

/// The master seed behind the pinned corpus: the checked-in exemplars,
/// the `fig_paper_tables` harness and the CI smoke run all use it.
pub const DEFAULT_CORPUS_SEED: u64 = 7;

/// One of the built-in corpus families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Chain-heavy control paths (deep layering, frozen actuator): the
    /// automotive regime of §3.2 where precedence chains leave spare
    /// processor capacity and replication competes with re-execution.
    Automotive,
    /// Wide, parallel-heavy stage graphs synthesized with pure
    /// replication (strategy MR): the avionics regime where independent
    /// processes contend on processors rather than on precedence.
    Avionics,
    /// Overhead profiles alternating cheap and expensive checkpoints so
    /// MXR synthesis genuinely mixes policies within one application.
    Mixed,
    /// Message-heavy graphs on slow, long-slot TDMA buses: communication
    /// dominates, stressing bus windows and condition broadcasts.
    Tdma,
    /// One fixed application shape swept across deadline slack factors,
    /// from near-infeasible to comfortable — the schedulability-percentage
    /// dimension of the paper's comparison tables.
    Util,
}

impl Family {
    /// Every built-in family, in catalog order.
    pub const ALL: [Family; 5] =
        [Family::Automotive, Family::Avionics, Family::Mixed, Family::Tdma, Family::Util];

    /// Stable lowercase name (CLI argument, file-name prefix, CSV value).
    pub fn name(self) -> &'static str {
        match self {
            Family::Automotive => "automotive",
            Family::Avionics => "avionics",
            Family::Mixed => "mixed",
            Family::Tdma => "tdma",
            Family::Util => "util",
        }
    }

    /// One-line description shown by `ftes corpus list` and the
    /// `GET /corpus` catalog.
    pub fn description(self) -> &'static str {
        match self {
            Family::Automotive => {
                "chain-heavy control paths with a frozen actuator (replication-friendly regime)"
            }
            Family::Avionics => {
                "wide parallel stage graphs under pure replication (MR, processor-contended)"
            }
            Family::Mixed => {
                "overhead profiles alternating cheap/expensive checkpoints so MXR mixes policies"
            }
            Family::Tdma => "message-heavy graphs on long-slot TDMA buses (bus-dominated)",
            Family::Util => "one shape swept across deadline slack factors (tight to comfortable)",
        }
    }

    /// Parses a family name as accepted by the CLI (`automotive`, …).
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The family's member parameter sets, in index order. Everything that
    /// distinguishes one member from another lives here; the random draw
    /// itself is fixed by the member seed.
    pub fn members(self) -> Vec<MemberParams> {
        match self {
            Family::Automotive => (0..5)
                .map(|i| {
                    let processes = 8 + 2 * i;
                    let nodes = 2 + i / 2;
                    MemberParams {
                        index: i,
                        config: GeneratorConfig {
                            deadline_factor: 5.0,
                            ..GeneratorConfig::chainy(processes, nodes)
                        },
                        k: 1 + (i as u32) % 2,
                        slot: 8,
                        strategy: "mxr",
                        frozen_sinks: 1,
                    }
                })
                .collect(),
            Family::Avionics => (0..5)
                .map(|i| {
                    let processes = 8 + 2 * i;
                    let nodes = 3 + i / 2;
                    MemberParams {
                        index: i,
                        config: GeneratorConfig {
                            deadline_factor: 6.0,
                            ..GeneratorConfig::wide(processes, nodes)
                        },
                        k: 1 + (i as u32) % 2,
                        slot: 8,
                        strategy: "mr",
                        frozen_sinks: 0,
                    }
                })
                .collect(),
            Family::Mixed => (0..5)
                .map(|i| {
                    let processes = 10 + 2 * i;
                    // Alternate overhead profiles: even members make
                    // checkpointing nearly free, odd members make it
                    // expensive enough that replication wins — MXR then
                    // mixes policies inside each synthesized system.
                    let (chi, mu) = if i % 2 == 0 {
                        ((0.01, 0.03), (0.03, 0.08))
                    } else {
                        ((0.15, 0.25), (0.15, 0.30))
                    };
                    MemberParams {
                        index: i,
                        config: GeneratorConfig {
                            chi_fraction: chi,
                            mu_fraction: mu,
                            deadline_factor: 5.0,
                            ..GeneratorConfig::new(processes, 3 + i / 2)
                        },
                        k: 2,
                        slot: 8,
                        strategy: "mxr",
                        frozen_sinks: 0,
                    }
                })
                .collect(),
            Family::Tdma => (0..5)
                .map(|i| {
                    let processes = 8 + 2 * i;
                    MemberParams {
                        index: i,
                        config: GeneratorConfig {
                            edge_probability: 0.5,
                            transmission_range: (4, 12),
                            deadline_factor: 6.0,
                            ..GeneratorConfig::new(processes, 2 + i.div_ceil(2))
                        },
                        k: 1,
                        slot: 12 + 4 * i as i64,
                        strategy: "mxr",
                        frozen_sinks: 0,
                    }
                })
                .collect(),
            Family::Util => [2.0, 3.0, 4.5, 6.0, 8.0]
                .into_iter()
                .enumerate()
                .map(|(i, deadline_factor)| MemberParams {
                    index: i,
                    config: GeneratorConfig { deadline_factor, ..GeneratorConfig::new(12, 3) },
                    k: 2,
                    slot: 8,
                    strategy: "mxr",
                    frozen_sinks: 0,
                })
                .collect(),
        }
    }
}

/// Complete parameter set of one family member: the generator
/// configuration plus the platform and synthesis parameters the `.ftes`
/// document carries. The member seed is *not* part of this — it derives
/// from `(family, index, master seed)` at generation time.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberParams {
    /// Member index within the family (0-based).
    pub index: usize,
    /// Application-generator configuration (shape, overheads, deadline
    /// slack). `config.node_count` is the platform size.
    pub config: GeneratorConfig,
    /// Fault budget `k` of the emitted spec.
    pub k: u32,
    /// TDMA slot length of the emitted spec.
    pub slot: i64,
    /// Synthesis strategy directive (`mxr` / `mx` / `mr` / `sfx`).
    pub strategy: &'static str,
    /// How many sink processes the emitted spec freezes (transparency).
    pub frozen_sinks: usize,
}

/// One generated corpus member: identity plus the rendered document.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// The family this member belongs to.
    pub family: Family,
    /// Member index within the family.
    pub index: usize,
    /// The master seed the corpus was generated with.
    pub master_seed: u64,
    /// The derived member seed the application was drawn with.
    pub member_seed: u64,
    /// Suggested file name, e.g. `automotive_02_s7.ftes` — sorting file
    /// names groups members by family in index order, which is the
    /// canonical corpus-run order.
    pub file_name: String,
    /// Process count of the generated application.
    pub processes: usize,
    /// Node count of the generated platform.
    pub nodes: usize,
    /// Fault budget.
    pub k: u32,
    /// Strategy directive.
    pub strategy: &'static str,
    /// The complete `.ftes` document.
    pub text: String,
}

/// FNV-1a over the member identity: the per-member seed derivation.
/// Stable across platforms and releases — changing it would re-draw every
/// pinned corpus, so it is fixed here rather than shared with other
/// hashers in the workspace.
fn member_seed(family: Family, index: usize, master_seed: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(family.name().as_bytes());
    eat(&(index as u64).to_le_bytes());
    eat(&master_seed.to_le_bytes());
    hash
}

/// Generates every member of one family. Deterministic in
/// `(family, master_seed)`: same inputs, byte-identical documents.
///
/// # Errors
///
/// Propagates [`ModelError`] from application validation (unreachable for
/// the built-in member parameter sets, which are all non-degenerate).
pub fn generate_family(family: Family, master_seed: u64) -> Result<Vec<CorpusSpec>, ModelError> {
    family
        .members()
        .into_iter()
        .map(|m| {
            let seed = member_seed(family, m.index, master_seed);
            let app = generate_application(&m.config, seed)?;
            let frozen = frozen_sinks(&app, m.frozen_sinks);
            let header = format!(
                "# corpus: family={} index={} seed={}\n# {}\n\
                 # generated by `ftes corpus generate`; do not edit by hand\n",
                family.name(),
                m.index,
                master_seed,
                family.description(),
            );
            let text = render_ftes(&app, m.slot, m.k, m.strategy, &frozen, &header);
            Ok(CorpusSpec {
                family,
                index: m.index,
                master_seed,
                member_seed: seed,
                file_name: format!("{}_{:02}_s{}.ftes", family.name(), m.index, master_seed),
                processes: app.process_count(),
                nodes: app.node_count(),
                k: m.k,
                strategy: m.strategy,
                text,
            })
        })
        .collect()
}

/// Generates the members of several families (typically [`Family::ALL`]),
/// concatenated in catalog order.
///
/// # Errors
///
/// Propagates the first [`ModelError`] (see [`generate_family`]).
pub fn generate_corpus(
    families: &[Family],
    master_seed: u64,
) -> Result<Vec<CorpusSpec>, ModelError> {
    let mut out = Vec::new();
    for &family in families {
        out.extend(generate_family(family, master_seed)?);
    }
    Ok(out)
}

/// The first `count` sink processes (no successors) in id order — the
/// deterministic choice of frozen processes for families that exercise
/// transparency.
fn frozen_sinks(app: &Application, count: usize) -> Vec<ProcessId> {
    app.sinks().take(count).collect()
}

/// Renders an application + platform parameters as a `.ftes` document the
/// `ftes::spec` parser round-trips losslessly: parsing the output yields
/// an application equal to `app` (same names, WCET rows, overheads,
/// releases, local deadlines, fixed nodes, messages, deadline and period)
/// on a homogeneous `nodes`-node platform with a uniform `slot`-length
/// TDMA bus.
pub fn render_ftes(
    app: &Application,
    slot: i64,
    k: u32,
    strategy: &str,
    frozen: &[ProcessId],
    header: &str,
) -> String {
    let nodes = app.node_count();
    let mut out = String::with_capacity(256 + 64 * app.process_count());
    out.push_str(header);
    let _ = writeln!(out, "nodes {nodes}");
    let _ = writeln!(out, "slot {slot}");
    let _ = writeln!(out, "deadline {}", app.deadline().units());
    if app.period() != app.deadline() {
        let _ = writeln!(out, "period {}", app.period().units());
    }
    let _ = writeln!(out, "k {k}");
    let _ = writeln!(out, "strategy {strategy}");
    out.push('\n');
    for (_, p) in app.processes() {
        let _ = write!(out, "process {} wcet", p.name());
        for node in 0..nodes {
            match p.wcet_on(NodeId::new(node)) {
                Some(w) => {
                    let _ = write!(out, " {}", w.units());
                }
                None => out.push_str(" -"),
            }
        }
        if p.alpha() != Time::ZERO || p.mu() != Time::ZERO || p.chi() != Time::ZERO {
            let _ = write!(
                out,
                " alpha {} mu {} chi {}",
                p.alpha().units(),
                p.mu().units(),
                p.chi().units()
            );
        }
        if p.release() != Time::ZERO {
            let _ = write!(out, " release {}", p.release().units());
        }
        if let Some(dl) = p.local_deadline() {
            let _ = write!(out, " dlocal {}", dl.units());
        }
        if let Some(node) = p.fixed_node() {
            let _ = write!(out, " fixed {}", node.index());
        }
        out.push('\n');
    }
    if app.message_count() > 0 {
        out.push('\n');
    }
    for (_, m) in app.messages() {
        let _ = writeln!(
            out,
            "message {} {} {} {}",
            m.name(),
            app.process(m.src()).name(),
            app.process(m.dst()).name(),
            m.transmission().units()
        );
    }
    if !frozen.is_empty() {
        out.push('\n');
    }
    for &pid in frozen {
        let _ = writeln!(out, "frozen process {}", app.process(pid).name());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        for family in Family::ALL {
            assert_eq!(Family::from_name(family.name()), Some(family));
            assert!(!family.description().is_empty());
            assert!(family.members().len() >= 5, "{}", family.name());
        }
        assert_eq!(Family::from_name("bogus"), None);
    }

    #[test]
    fn generation_is_deterministic_per_family_and_seed() {
        for family in Family::ALL {
            let a = generate_family(family, 7).unwrap();
            let b = generate_family(family, 7).unwrap();
            assert_eq!(a, b, "{}", family.name());
            let c = generate_family(family, 8).unwrap();
            assert_ne!(
                a.iter().map(|s| &s.text).collect::<Vec<_>>(),
                c.iter().map(|s| &s.text).collect::<Vec<_>>(),
                "{}: master seed must reach the draw",
                family.name()
            );
        }
    }

    #[test]
    fn member_seeds_do_not_collide_across_families() {
        let mut seeds = std::collections::HashSet::new();
        for family in Family::ALL {
            for m in family.members() {
                assert!(
                    seeds.insert(member_seed(family, m.index, DEFAULT_CORPUS_SEED)),
                    "seed collision at {}[{}]",
                    family.name(),
                    m.index
                );
            }
        }
    }

    #[test]
    fn corpus_spans_the_advertised_families_and_size() {
        let corpus = generate_corpus(&Family::ALL, DEFAULT_CORPUS_SEED).unwrap();
        assert!(corpus.len() >= 25, "default corpus has {} specs", corpus.len());
        let families: std::collections::HashSet<_> = corpus.iter().map(|s| s.family).collect();
        assert_eq!(families.len(), 5);
        // File names are unique and sort into family/index order.
        let mut names: Vec<_> = corpus.iter().map(|s| s.file_name.clone()).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort();
            s
        };
        names.dedup();
        assert_eq!(names.len(), corpus.len());
        let grouped: Vec<_> = corpus.iter().map(|s| s.file_name.clone()).collect();
        assert_eq!(sorted, {
            let mut g = grouped.clone();
            g.sort();
            g
        });
    }

    #[test]
    fn rendered_documents_carry_the_member_identity_header() {
        let corpus = generate_family(Family::Automotive, 7).unwrap();
        for spec in &corpus {
            let first = spec.text.lines().next().unwrap();
            assert_eq!(first, format!("# corpus: family=automotive index={} seed=7", spec.index));
            assert!(spec.text.contains("strategy mxr"));
            assert!(spec.text.contains("frozen process"), "automotive freezes a sink");
        }
    }

    #[test]
    fn render_ftes_emits_dash_for_unmappable_nodes() {
        let config = GeneratorConfig { mappable_fraction: 0.0, ..GeneratorConfig::new(6, 3) };
        let app = generate_application(&config, 3).unwrap();
        let text = render_ftes(&app, 8, 1, "mxr", &[], "");
        assert!(text.contains(" -"), "home-node-only processes render X entries:\n{text}");
    }
}
