//! On-demand exact certification of candidate configurations.
//!
//! The fast estimator the optimization loops run on is a *ranking
//! heuristic*: it prices the adversary's concentrated `k`-fault attack but
//! not multi-process recovery cascades that serialize on a shared CPU, so
//! it is optimistic relative to the exact conditional schedule —
//! increasingly so with `k` and for incumbents that mix policies. A search
//! that only ever consults the estimator can therefore return a "best"
//! configuration that is not actually schedulable.
//!
//! The [`Certifier`] closes that gap: it runs the full FT-CPG construction
//! and exact conditional scheduler for one candidate configuration on
//! demand, under a work budget, and memoizes the verdict behind the same
//! canonical-key discipline as the exploration estimate cache (an exact,
//! collision-free encoding of the `(copies, policies)` state — the two
//! inputs that vary between candidates of one `(app, platform, k,
//! transparency)` instance). The repair loops in `ftes-opt` and the suite
//! runner in `ftes-explore` hold one certifier per problem instance, so a
//! configuration revisited across repair rounds is re-certified for free.
//!
//! The certifier also reports a per-instance **calibration factor** —
//! the largest `exact / estimate` ratio observed on certified incumbents —
//! which the searches fold into acceptance (see
//! `SearchConfig::calibration_milli` in `ftes-opt`) so the estimator stops
//! systematically under-pricing policy mixes on instances where the gap
//! has already been measured.

use crate::{check_deadlines, schedule_ftcpg, ConditionalSchedule, SchedConfig, SchedError};
use ftes_ft::PolicyAssignment;
use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping, CpgError, FtCpg};
use ftes_model::{Application, FaultModel, Time, Transparency};
use ftes_tdma::Platform;
// ftes-lint: allow(determinism) reason="canonical-key certification memo; probed per key, never iterated into results"
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Tunables of a [`Certifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifyConfig {
    /// FT-CPG size budget: configurations whose graph exceeds it are
    /// reported [`CertOutcome::OverBudget`] instead of certified (the
    /// estimate-only regime of the paper's large-scale experiments).
    pub cpg: BuildConfig,
    /// Exact-scheduler tunables (condition broadcast time).
    pub sched: SchedConfig,
    /// Work budget: exact schedules this certifier may compute over its
    /// lifetime. Once exhausted, uncached requests return
    /// [`CertOutcome::OverBudget`]; memoized verdicts keep answering.
    pub max_exact_runs: u64,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            cpg: BuildConfig::default(),
            sched: SchedConfig::default(),
            max_exact_runs: 64,
        }
    }
}

/// Verdict of one certification request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertOutcome {
    /// The exact conditional schedule was computed.
    Exact {
        /// Worst-case length of the exact conditional schedule.
        exact_len: Time,
        /// `true` when the exact schedule meets the global deadline and
        /// every local process deadline.
        deadline_met: bool,
    },
    /// The FT-CPG exceeded the size budget, or the certifier's work budget
    /// is exhausted — no exact verdict exists for this configuration.
    OverBudget,
}

impl CertOutcome {
    /// The exact schedule length, when one was computed.
    pub fn exact_len(&self) -> Option<Time> {
        match self {
            CertOutcome::Exact { exact_len, .. } => Some(*exact_len),
            CertOutcome::OverBudget => None,
        }
    }

    /// `true` when the configuration is exact-certified schedulable.
    pub fn is_certified(&self) -> bool {
        matches!(self, CertOutcome::Exact { deadline_met: true, .. })
    }
}

/// Error produced during certification (hard failures only — budget and
/// size overruns are [`CertOutcome::OverBudget`], not errors).
#[derive(Debug)]
#[non_exhaustive]
pub enum CertifyError {
    /// FT-CPG construction failed for a reason other than size.
    Cpg(CpgError),
    /// Exact conditional scheduling failed.
    Sched(SchedError),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Cpg(e) => write!(f, "certification: FT-CPG construction failed: {e}"),
            CertifyError::Sched(e) => write!(f, "certification: exact scheduling failed: {e}"),
        }
    }
}

impl Error for CertifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CertifyError::Cpg(e) => Some(e),
            CertifyError::Sched(e) => Some(e),
        }
    }
}

impl From<CpgError> for CertifyError {
    fn from(e: CpgError) -> Self {
        CertifyError::Cpg(e)
    }
}

impl From<SchedError> for CertifyError {
    fn from(e: SchedError) -> Self {
        CertifyError::Sched(e)
    }
}

/// Work counters of one [`Certifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CertifierStats {
    /// Certification requests answered (cached or not).
    pub requests: u64,
    /// Requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Exact conditional schedules actually computed.
    pub exact_runs: u64,
    /// Requests answered [`CertOutcome::OverBudget`] because the FT-CPG
    /// exceeded the size budget.
    pub graph_too_large: u64,
    /// Requests answered [`CertOutcome::OverBudget`] because the work
    /// budget (`max_exact_runs`) was exhausted.
    pub budget_exhausted: u64,
    /// Wall-clock time spent inside certification (graph construction +
    /// exact scheduling).
    pub wall: Duration,
}

/// Corpus-level certification accounting: how many configurations in a
/// batch (a corpus run, a daemon's lifetime, a suite sweep) certified,
/// shipped refuted, or ran estimate-only, plus the calibrated repair
/// searches spent getting there.
///
/// The counters are plain-old-data and mergeable, so independent workers
/// can each keep their own and fold them at the end
/// ([`CertificationCounters::merged`]): the corpus batch driver in
/// `ftes`, the `ftes-serve` `/metrics` endpoint and the
/// `fig_paper_tables` harness all report this shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CertificationCounters {
    /// Configurations whose exact conditional schedule met every deadline.
    pub certified: u64,
    /// Configurations that shipped explicitly refuted (repair exhausted).
    pub refuted: u64,
    /// Configurations in the estimate-only regime (FT-CPG over budget) —
    /// no exact verdict exists.
    pub uncertifiable: u64,
    /// Total calibrated repair searches run across the batch.
    pub repair_rounds: u64,
}

impl CertificationCounters {
    /// Records one synthesis outcome: `Some(true)` certified,
    /// `Some(false)` refuted, `None` uncertifiable, plus its repair
    /// rounds.
    pub fn record(&mut self, certified: Option<bool>, repair_rounds: u64) {
        match certified {
            Some(true) => self.certified += 1,
            Some(false) => self.refuted += 1,
            None => self.uncertifiable += 1,
        }
        self.repair_rounds += repair_rounds;
    }

    /// Element-wise sum, for folding per-worker counters.
    #[must_use]
    pub fn merged(self, other: CertificationCounters) -> CertificationCounters {
        CertificationCounters {
            certified: self.certified + other.certified,
            refuted: self.refuted + other.refuted,
            uncertifiable: self.uncertifiable + other.uncertifiable,
            repair_rounds: self.repair_rounds + other.repair_rounds,
        }
    }

    /// Configurations recorded (all three outcome classes).
    pub fn total(&self) -> u64 {
        self.certified + self.refuted + self.uncertifiable
    }

    /// Certified fraction of all recorded configurations, in percent
    /// (0 when nothing was recorded). The schedulability-percentage
    /// column of the paper-style comparison tables.
    pub fn certified_pct(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        100.0 * self.certified as f64 / self.total() as f64
    }
}

/// On-demand exact certification kernel for one
/// `(application, platform, k, transparency)` problem instance.
///
/// Construction is cheap (clones of the inputs); all expensive work happens
/// lazily per certified configuration and is memoized, so re-certifying a
/// configuration across repair rounds costs a map lookup.
///
/// # `exact >= estimate` is *not* a theorem
///
/// It is tempting to treat the exact conditional schedule as an upper
/// bound on the fast estimate and assert `exact_len >=
/// estimate.worst_case_length` when consuming verdicts. **Do not.** The
/// estimator and the exact scheduler are both greedy list schedulers, but
/// over *different graphs and priority orders*: the estimator prices a
/// concentrated `k`-fault attack on the root schedule, the exact
/// scheduler walks the full FT-CPG. The estimate is optimistic on most
/// states (it under-prices multi-process recovery cascades that
/// serialize on a shared CPU — the dominant gap, and the reason this
/// certifier exists), but classic list-scheduling *order anomalies* make
/// a small pessimistic tail legitimate: on random systems roughly 1–2%
/// of states measure `exact < estimate`, bounded ≲1.3× (e.g. estimate
/// 494 vs exact 464 at k = 2, and a pure k = 0 order anomaly of
/// estimate 393 vs exact 305). `tests/certification.rs` pins the measured
/// envelope in both directions; code consuming [`CertOutcome`] must
/// treat the exact length as authoritative and the estimate as a ranking
/// heuristic, never assume an inequality between them.
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::CopyMapping;
/// use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
/// use ftes_sched::{CertOutcome, Certifier, CertifyConfig};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig3();
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let platform = Platform::homogeneous(2, Time::new(8))?;
/// let mut certifier = Certifier::new(
///     &app, &platform, FaultModel::new(2), &Transparency::none(),
///     CertifyConfig::default(),
/// );
/// let verdict = certifier.certify(&copies, &policies)?;
/// assert!(matches!(verdict, CertOutcome::Exact { .. }));
/// # Ok(())
/// # }
/// ```
pub struct Certifier {
    app: Application,
    platform: Platform,
    fault_model: FaultModel,
    transparency: Transparency,
    config: CertifyConfig,
    /// Memoized verdicts keyed by the canonical `(copies, policies)`
    /// encoding. Only outcomes that cannot change are cached — a
    /// budget-exhausted `OverBudget` is *not* cached, so raising the budget
    /// on a fresh certifier re-answers.
    verdicts: HashMap<Vec<u8>, CertOutcome>,
    /// Artifacts (FT-CPG + exact schedule) of the most recently scheduled
    /// configuration, so the flow can reuse them for table generation
    /// instead of rebuilding the winner's graph from scratch.
    last_artifacts: Option<(Vec<u8>, FtCpg, ConditionalSchedule)>,
    /// Largest `exact / estimate` ratio observed so far, in milli-units
    /// (1000 = the estimator was exact). Fed back into calibrated search
    /// acceptance.
    calibration_milli: u64,
    stats: CertifierStats,
}

impl Certifier {
    /// A certifier for one problem instance.
    pub fn new(
        app: &Application,
        platform: &Platform,
        fault_model: FaultModel,
        transparency: &Transparency,
        config: CertifyConfig,
    ) -> Self {
        Certifier {
            app: app.clone(),
            platform: platform.clone(),
            fault_model,
            transparency: transparency.clone(),
            config,
            verdicts: HashMap::new(),
            last_artifacts: None,
            calibration_milli: 1000,
            stats: CertifierStats::default(),
        }
    }

    /// The fault budget this certifier certifies against.
    pub fn k(&self) -> u32 {
        self.fault_model.k()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> CertifierStats {
        self.stats
    }

    /// The calibration factor in milli-units: the largest
    /// `exact / estimate` ratio observed on configurations certified
    /// through [`Certifier::record_estimate`], never below 1000.
    pub fn calibration_milli(&self) -> u64 {
        self.calibration_milli
    }

    /// Folds one `(exact, estimate)` observation into the calibration
    /// factor (ratios below 1 are clamped — a pessimistic estimate needs
    /// no correction).
    pub fn record_estimate(&mut self, exact: Time, estimate: Time) {
        self.calibration_milli = self.calibration_milli.max(calibration_milli(exact, estimate));
    }

    /// Certifies one configuration: builds its FT-CPG and exact conditional
    /// schedule (memoized; budgeted) and judges every deadline on it.
    ///
    /// # Errors
    ///
    /// Hard construction/scheduling failures only; size and work-budget
    /// overruns are reported as [`CertOutcome::OverBudget`].
    pub fn certify(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<CertOutcome, CertifyError> {
        self.stats.requests += 1;
        let _span = ftes_obs::span(ftes_obs::names::CERTIFY);
        let key = config_key(&self.app, copies, policies);
        if let Some(&verdict) = self.verdicts.get(&key) {
            self.stats.cache_hits += 1;
            ftes_obs::counter(ftes_obs::names::CERTIFY_MEMO_HIT, 1);
            return Ok(verdict);
        }
        match self.schedule_uncached(&key, copies, policies)? {
            Some(verdict) => {
                self.verdicts.insert(key, verdict);
                Ok(verdict)
            }
            None => Ok(CertOutcome::OverBudget),
        }
    }

    /// Takes the FT-CPG and exact schedule of the most recent certification
    /// if it was for exactly this configuration — the flow uses this to
    /// avoid rebuilding the winner's graph for table generation.
    pub fn take_artifacts(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Option<(FtCpg, ConditionalSchedule)> {
        let key = config_key(&self.app, copies, policies);
        match self.last_artifacts.take() {
            Some((k, cpg, schedule)) if k == key => Some((cpg, schedule)),
            other => {
                self.last_artifacts = other;
                None
            }
        }
    }

    /// Builds graph + schedule, updating counters and the artifact slot.
    /// `Ok(None)` = work budget exhausted (not cacheable);
    /// `Ok(Some(OverBudget))` = graph too large (cacheable — a
    /// configuration's graph size never changes).
    fn schedule_uncached(
        &mut self,
        key: &[u8],
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Option<CertOutcome>, CertifyError> {
        if self.stats.exact_runs >= self.config.max_exact_runs {
            self.stats.budget_exhausted += 1;
            return Ok(None);
        }
        // ftes-lint: allow(determinism) reason="exact-run timing feeds CertifyStats diagnostics, never result bytes"
        let started = Instant::now();
        let built = {
            let _span = ftes_obs::span(ftes_obs::names::CPG);
            build_ftcpg(
                &self.app,
                policies,
                copies,
                self.fault_model,
                &self.transparency,
                self.config.cpg,
            )
        };
        let cpg = match built {
            Ok(cpg) => cpg,
            Err(CpgError::GraphTooLarge { .. }) => {
                self.stats.graph_too_large += 1;
                self.stats.wall += started.elapsed();
                return Ok(Some(CertOutcome::OverBudget));
            }
            Err(e) => {
                self.stats.wall += started.elapsed();
                return Err(e.into());
            }
        };
        self.stats.exact_runs += 1;
        let scheduled = {
            let _span = ftes_obs::span(ftes_obs::names::SCHEDULE);
            schedule_ftcpg(&self.app, &cpg, &self.platform, self.config.sched)
        };
        let schedule = match scheduled {
            Ok(s) => s,
            Err(e) => {
                self.stats.wall += started.elapsed();
                return Err(e.into());
            }
        };
        let deadline_met = check_deadlines(&self.app, &cpg, &schedule).is_empty();
        let verdict = CertOutcome::Exact { exact_len: schedule.length(), deadline_met };
        self.last_artifacts = Some((key.to_vec(), cpg, schedule));
        self.stats.wall += started.elapsed();
        Ok(Some(verdict))
    }
}

/// The `exact / estimate` ratio in milli-units, clamped to ≥ 1000 (the
/// calibration factor only ever *inflates* estimates — a pessimistic
/// estimator needs no correction).
pub fn calibration_milli(exact: Time, estimate: Time) -> u64 {
    let (e, x) = (estimate.units(), exact.units());
    if e <= 0 || x <= e {
        return 1000;
    }
    // Ceiling division keeps `estimate × factor ≥ exact` exactly.
    ((x as u128 * 1000).div_ceil(e as u128).min(u64::MAX as u128)) as u64
}

/// Canonical, collision-free encoding of one `(copies, policies)`
/// configuration — the certification twin of the exploration cache's
/// `StateKey` (which encodes `(mapping, policies)`; the certifier sees the
/// derived copy placement instead, which subsumes the mapping).
fn config_key(app: &Application, copies: &CopyMapping, policies: &PolicyAssignment) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * app.process_count());
    for (pid, _) in app.processes() {
        let placed = copies.copies_of(pid);
        out.extend_from_slice(&(placed.len() as u32).to_le_bytes());
        for &node in placed {
            out.extend_from_slice(&(node.index() as u32).to_le_bytes());
        }
        let policy = policies.policy(pid);
        out.extend_from_slice(&(policy.copies().len() as u32).to_le_bytes());
        for plan in policy.copies() {
            out.extend_from_slice(&plan.recoveries.to_le_bytes());
            out.extend_from_slice(&plan.checkpoints.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_schedule_length;
    use ftes_model::{samples, Mapping};

    fn fig3_instance(k: u32) -> (Application, Platform, CopyMapping, PolicyAssignment) {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        (app, platform, copies, policies)
    }

    fn certifier(app: &Application, platform: &Platform, k: u32, cfg: CertifyConfig) -> Certifier {
        Certifier::new(app, platform, FaultModel::new(k), &Transparency::none(), cfg)
    }

    #[test]
    fn certification_matches_a_fresh_exact_schedule() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        let verdict = c.certify(&copies, &policies).unwrap();
        let CertOutcome::Exact { exact_len, deadline_met } = verdict else {
            panic!("fig3 fits the budget");
        };
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        assert_eq!(exact_len, schedule.length());
        assert_eq!(deadline_met, check_deadlines(&app, &cpg, &schedule).is_empty());
        // The estimator is never pessimistic here.
        let est = estimate_schedule_length(&app, &platform, &copies, &policies, 2).unwrap();
        assert!(est.worst_case_length <= exact_len, "{est:?} vs {exact_len}");
    }

    #[test]
    fn verdicts_are_memoized() {
        let (app, platform, copies, policies) = fig3_instance(1);
        let mut c = certifier(&app, &platform, 1, CertifyConfig::default());
        let a = c.certify(&copies, &policies).unwrap();
        let b = c.certify(&copies, &policies).unwrap();
        assert_eq!(a, b);
        let stats = c.stats();
        assert_eq!((stats.requests, stats.cache_hits, stats.exact_runs), (2, 1, 1));
    }

    #[test]
    fn graph_size_budget_reports_over_budget() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let cfg = CertifyConfig { cpg: BuildConfig { node_limit: 2 }, ..CertifyConfig::default() };
        let mut c = certifier(&app, &platform, 2, cfg);
        assert_eq!(c.certify(&copies, &policies).unwrap(), CertOutcome::OverBudget);
        assert_eq!(c.stats().graph_too_large, 1);
        // Size verdicts are cacheable (the graph cannot shrink).
        assert_eq!(c.certify(&copies, &policies).unwrap(), CertOutcome::OverBudget);
        assert_eq!(c.stats().cache_hits, 1);
    }

    #[test]
    fn work_budget_exhaustion_is_not_cached() {
        let (app, platform, copies, policies) = fig3_instance(1);
        let cfg = CertifyConfig { max_exact_runs: 0, ..CertifyConfig::default() };
        let mut c = certifier(&app, &platform, 1, cfg);
        assert_eq!(c.certify(&copies, &policies).unwrap(), CertOutcome::OverBudget);
        assert_eq!(c.stats().budget_exhausted, 1);
        assert_eq!(c.stats().cache_hits, 0, "budget overruns must not poison the cache");
    }

    #[test]
    fn artifacts_are_reusable_for_the_last_configuration() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        let verdict = c.certify(&copies, &policies).unwrap();
        let (cpg, schedule) = c.take_artifacts(&copies, &policies).expect("just scheduled");
        assert_eq!(Some(schedule.length()), verdict.exact_len());
        assert!(cpg.node_count() > app.process_count());
        // Taken once; a second take must miss.
        assert!(c.take_artifacts(&copies, &policies).is_none());
    }

    #[test]
    fn artifacts_do_not_alias_other_configurations() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        c.certify(&copies, &policies).unwrap();
        let other = PolicyAssignment::uniform_reexecution(&app, 2);
        let mut other = other;
        other.set(ftes_model::ProcessId::new(0), ftes_ft::Policy::checkpointing(2, 2));
        let other_copies = CopyMapping::from_base(
            &app,
            platform.architecture(),
            &Mapping::cheapest(&app, platform.architecture()).unwrap(),
            &other,
        )
        .unwrap();
        assert!(c.take_artifacts(&other_copies, &other).is_none());
        // The slot survives a mismatched take.
        assert!(c.take_artifacts(&copies, &policies).is_some());
    }

    #[test]
    fn calibration_factor_is_monotone_and_clamped() {
        assert_eq!(calibration_milli(Time::new(100), Time::new(100)), 1000);
        assert_eq!(calibration_milli(Time::new(90), Time::new(100)), 1000);
        assert_eq!(calibration_milli(Time::new(1041), Time::new(441)), 2361);
        assert_eq!(calibration_milli(Time::new(100), Time::ZERO), 1000);

        let (app, platform, ..) = fig3_instance(1);
        let mut c = certifier(&app, &platform, 1, CertifyConfig::default());
        assert_eq!(c.calibration_milli(), 1000);
        c.record_estimate(Time::new(150), Time::new(100));
        assert_eq!(c.calibration_milli(), 1500);
        c.record_estimate(Time::new(110), Time::new(100));
        assert_eq!(c.calibration_milli(), 1500, "the factor never decreases");
    }

    #[test]
    fn certification_counters_record_and_merge() {
        let mut a = CertificationCounters::default();
        a.record(Some(true), 0);
        a.record(Some(true), 2);
        a.record(Some(false), 3);
        let mut b = CertificationCounters::default();
        b.record(None, 0);
        let merged = a.merged(b);
        assert_eq!(
            merged,
            CertificationCounters { certified: 2, refuted: 1, uncertifiable: 1, repair_rounds: 5 }
        );
        assert_eq!(merged.total(), 4);
        assert!((merged.certified_pct() - 50.0).abs() < 1e-9);
        assert_eq!(CertificationCounters::default().certified_pct(), 0.0);
    }
}
