//! On-demand exact certification of candidate configurations.
//!
//! The fast estimator the optimization loops run on is a *ranking
//! heuristic*: it prices the adversary's concentrated `k`-fault attack but
//! not multi-process recovery cascades that serialize on a shared CPU, so
//! it is optimistic relative to the exact conditional schedule —
//! increasingly so with `k` and for incumbents that mix policies. A search
//! that only ever consults the estimator can therefore return a "best"
//! configuration that is not actually schedulable.
//!
//! The [`Certifier`] closes that gap: it runs the full FT-CPG construction
//! and exact conditional scheduler for one candidate configuration on
//! demand, under a work budget, and memoizes the verdict behind the same
//! canonical-key discipline as the exploration estimate cache (an exact,
//! collision-free encoding of the `(copies, policies)` state — the two
//! inputs that vary between candidates of one `(app, platform, k,
//! transparency)` instance). The repair loops in `ftes-opt` and the suite
//! runner in `ftes-explore` hold one certifier per problem instance, so a
//! configuration revisited across repair rounds is re-certified for free.
//!
//! The certifier also reports a per-instance **calibration factor** —
//! the largest `exact / estimate` ratio observed on certified incumbents —
//! which the searches fold into acceptance (see
//! `SearchConfig::calibration_milli` in `ftes-opt`) so the estimator stops
//! systematically under-pricing policy mixes on instances where the gap
//! has already been measured.

use crate::{
    check_deadlines, schedule_ftcpg_bounded, BoundedSchedule, ConditionalSchedule, JoinMemo,
    SchedConfig, SchedError,
};
use ftes_ft::PolicyAssignment;
use ftes_ftcpg::{build_ftcpg_anchored, BuildConfig, CopyMapping, CpgAnchor, CpgError, FtCpg};
use ftes_model::{Application, FaultModel, Time, Transparency};
use ftes_tdma::Platform;
// ftes-lint: allow(determinism) reason="canonical-key certification memo; probed per key, never iterated into results"
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Tunables of a [`Certifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifyConfig {
    /// FT-CPG size budget: configurations whose graph exceeds it are
    /// reported [`CertOutcome::OverBudget`] instead of certified (the
    /// estimate-only regime of the paper's large-scale experiments).
    pub cpg: BuildConfig,
    /// Exact-scheduler tunables (condition broadcast time).
    pub sched: SchedConfig,
    /// Work budget: exact schedules this certifier may compute over its
    /// lifetime. Once exhausted, uncached requests return
    /// [`CertOutcome::OverBudget`]; memoized verdicts keep answering.
    pub max_exact_runs: u64,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            cpg: BuildConfig::default(),
            sched: SchedConfig::default(),
            max_exact_runs: 64,
        }
    }
}

/// Verdict of one certification request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertOutcome {
    /// The exact conditional schedule was computed.
    Exact {
        /// Worst-case length of the exact conditional schedule.
        exact_len: Time,
        /// `true` when the exact schedule meets the global deadline and
        /// every local process deadline.
        deadline_met: bool,
    },
    /// The FT-CPG exceeded the size budget, or the certifier's work budget
    /// is exhausted — no exact verdict exists for this configuration.
    OverBudget,
}

impl CertOutcome {
    /// The exact schedule length, when one was computed.
    pub fn exact_len(&self) -> Option<Time> {
        match self {
            CertOutcome::Exact { exact_len, .. } => Some(*exact_len),
            CertOutcome::OverBudget => None,
        }
    }

    /// `true` when the configuration is exact-certified schedulable.
    pub fn is_certified(&self) -> bool {
        matches!(self, CertOutcome::Exact { deadline_met: true, .. })
    }
}

/// Verdict of one *bounded* certification request
/// ([`Certifier::certify_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedCert {
    /// The run completed (or was answered from the verdict memo): a full
    /// [`CertOutcome`] exists.
    Verdict(CertOutcome),
    /// The run refuted early: some scenario branch provably finishes after
    /// the bound, so the full schedule was never computed.
    Pruned {
        /// A proven lower bound on the exact schedule length — the end
        /// time of the first placed node that exceeded the bound (a real
        /// completion time in a valid partial schedule, so
        /// `exact_len >= lower_bound > bound`).
        lower_bound: Time,
    },
}

impl BoundedCert {
    /// `true` when the configuration is exact-certified schedulable
    /// (a pruned run is a refutation, never a certification).
    pub fn is_certified(&self) -> bool {
        matches!(self, BoundedCert::Verdict(v) if v.is_certified())
    }
}

/// Error produced during certification (hard failures only — budget and
/// size overruns are [`CertOutcome::OverBudget`], not errors).
#[derive(Debug)]
#[non_exhaustive]
pub enum CertifyError {
    /// FT-CPG construction failed for a reason other than size.
    Cpg(CpgError),
    /// Exact conditional scheduling failed.
    Sched(SchedError),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Cpg(e) => write!(f, "certification: FT-CPG construction failed: {e}"),
            CertifyError::Sched(e) => write!(f, "certification: exact scheduling failed: {e}"),
        }
    }
}

impl Error for CertifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CertifyError::Cpg(e) => Some(e),
            CertifyError::Sched(e) => Some(e),
        }
    }
}

impl From<CpgError> for CertifyError {
    fn from(e: CpgError) -> Self {
        CertifyError::Cpg(e)
    }
}

impl From<SchedError> for CertifyError {
    fn from(e: SchedError) -> Self {
        CertifyError::Sched(e)
    }
}

/// Work counters of one [`Certifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CertifierStats {
    /// Certification requests answered (cached or not).
    pub requests: u64,
    /// Requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Exact conditional scheduler invocations (complete or pruned —
    /// both consume the work budget; they do real scheduling work).
    pub exact_runs: u64,
    /// Requests answered [`CertOutcome::OverBudget`] because the FT-CPG
    /// exceeded the size budget.
    pub graph_too_large: u64,
    /// Requests answered [`CertOutcome::OverBudget`] because the work
    /// budget (`max_exact_runs`) was exhausted.
    pub budget_exhausted: u64,
    /// Uncached requests whose FT-CPG was rebuilt incrementally from the
    /// certifier's anchor instead of from scratch.
    pub incremental_builds: u64,
    /// Bounded certifications that refuted early (bound-and-prune exit)
    /// instead of scheduling every scenario.
    pub pruned_runs: u64,
    /// Replica-join deliveries answered from the fault-scenario subtree
    /// memo.
    pub subtree_hits: u64,
    /// Replica-join deliveries that ran the adversarial DP.
    pub subtree_misses: u64,
    /// Wall-clock time spent inside certification (graph construction +
    /// exact scheduling).
    pub wall: Duration,
}

/// Corpus-level certification accounting: how many configurations in a
/// batch (a corpus run, a daemon's lifetime, a suite sweep) certified,
/// shipped refuted, or ran estimate-only, plus the calibrated repair
/// searches spent getting there.
///
/// The counters are plain-old-data and mergeable, so independent workers
/// can each keep their own and fold them at the end
/// ([`CertificationCounters::merged`]): the corpus batch driver in
/// `ftes`, the `ftes-serve` `/metrics` endpoint and the
/// `fig_paper_tables` harness all report this shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CertificationCounters {
    /// Configurations whose exact conditional schedule met every deadline.
    pub certified: u64,
    /// Configurations that shipped explicitly refuted (repair exhausted).
    pub refuted: u64,
    /// Configurations in the estimate-only regime (FT-CPG over budget) —
    /// no exact verdict exists.
    pub uncertifiable: u64,
    /// Total calibrated repair searches run across the batch.
    pub repair_rounds: u64,
}

impl CertificationCounters {
    /// Records one synthesis outcome: `Some(true)` certified,
    /// `Some(false)` refuted, `None` uncertifiable, plus its repair
    /// rounds.
    pub fn record(&mut self, certified: Option<bool>, repair_rounds: u64) {
        match certified {
            Some(true) => self.certified += 1,
            Some(false) => self.refuted += 1,
            None => self.uncertifiable += 1,
        }
        self.repair_rounds += repair_rounds;
    }

    /// Element-wise sum, for folding per-worker counters.
    #[must_use]
    pub fn merged(self, other: CertificationCounters) -> CertificationCounters {
        CertificationCounters {
            certified: self.certified + other.certified,
            refuted: self.refuted + other.refuted,
            uncertifiable: self.uncertifiable + other.uncertifiable,
            repair_rounds: self.repair_rounds + other.repair_rounds,
        }
    }

    /// Configurations recorded (all three outcome classes).
    pub fn total(&self) -> u64 {
        self.certified + self.refuted + self.uncertifiable
    }

    /// Certified fraction of all recorded configurations, in percent
    /// (0 when nothing was recorded). The schedulability-percentage
    /// column of the paper-style comparison tables.
    pub fn certified_pct(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        100.0 * self.certified as f64 / self.total() as f64
    }
}

/// On-demand exact certification kernel for one
/// `(application, platform, k, transparency)` problem instance.
///
/// Construction is cheap (clones of the inputs); all expensive work happens
/// lazily per certified configuration and is memoized, so re-certifying a
/// configuration across repair rounds costs a map lookup.
///
/// # `exact >= estimate` is *not* a theorem
///
/// It is tempting to treat the exact conditional schedule as an upper
/// bound on the fast estimate and assert `exact_len >=
/// estimate.worst_case_length` when consuming verdicts. **Do not.** The
/// estimator and the exact scheduler are both greedy list schedulers, but
/// over *different graphs and priority orders*: the estimator prices a
/// concentrated `k`-fault attack on the root schedule, the exact
/// scheduler walks the full FT-CPG. The estimate is optimistic on most
/// states (it under-prices multi-process recovery cascades that
/// serialize on a shared CPU — the dominant gap, and the reason this
/// certifier exists), but classic list-scheduling *order anomalies* make
/// a small pessimistic tail legitimate: on random systems roughly 1–2%
/// of states measure `exact < estimate`, bounded ≲1.3× (e.g. estimate
/// 494 vs exact 464 at k = 2, and a pure k = 0 order anomaly of
/// estimate 393 vs exact 305). `tests/certification.rs` pins the measured
/// envelope in both directions; code consuming [`CertOutcome`] must
/// treat the exact length as authoritative and the estimate as a ranking
/// heuristic, never assume an inequality between them.
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::CopyMapping;
/// use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
/// use ftes_sched::{CertOutcome, Certifier, CertifyConfig};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig3();
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let platform = Platform::homogeneous(2, Time::new(8))?;
/// let mut certifier = Certifier::new(
///     &app, &platform, FaultModel::new(2), &Transparency::none(),
///     CertifyConfig::default(),
/// );
/// let verdict = certifier.certify(&copies, &policies)?;
/// assert!(matches!(verdict, CertOutcome::Exact { .. }));
/// # Ok(())
/// # }
/// ```
pub struct Certifier {
    app: Application,
    platform: Platform,
    fault_model: FaultModel,
    transparency: Transparency,
    config: CertifyConfig,
    /// Memoized verdicts keyed by the canonical `(copies, policies)`
    /// encoding. Only outcomes that cannot change are cached — a
    /// budget-exhausted `OverBudget` is *not* cached, so raising the budget
    /// on a fresh certifier re-answers.
    verdicts: HashMap<Vec<u8>, CertOutcome>,
    /// Refutation evidence from bounded runs: the largest lower bound on
    /// `exact_len` ever proved for a configuration. A stored bound answers
    /// any later [`Certifier::certify_bounded`] whose bound it exceeds
    /// without re-scheduling; it never answers an unbounded [`Certifier::certify`]
    /// (a pruned run has no exact length).
    refuted_bounds: HashMap<Vec<u8>, Time>,
    /// FT-CPG anchor for incremental rebuilds: after the first uncached
    /// certification, later configurations diff against the anchored
    /// `(copies, policies)` and rebuild only the dirty suffix.
    anchor: Option<CpgAnchor>,
    /// Memoized fault-scenario subtree deliveries, shared across every
    /// exact run of this certifier (keys are canonical ladder encodings,
    /// so a policy change on one process invalidates exactly the subtrees
    /// it touches — their keys change).
    join_memo: JoinMemo,
    /// Artifacts (FT-CPG + exact schedule) of the most recently scheduled
    /// configuration, so the flow can reuse them for table generation
    /// instead of rebuilding the winner's graph from scratch.
    last_artifacts: Option<(Vec<u8>, FtCpg, ConditionalSchedule)>,
    /// Largest `exact / estimate` ratio observed so far, in milli-units
    /// (1000 = the estimator was exact). Fed back into calibrated search
    /// acceptance.
    calibration_milli: u64,
    stats: CertifierStats,
}

impl Certifier {
    /// A certifier for one problem instance.
    pub fn new(
        app: &Application,
        platform: &Platform,
        fault_model: FaultModel,
        transparency: &Transparency,
        config: CertifyConfig,
    ) -> Self {
        Certifier {
            app: app.clone(),
            platform: platform.clone(),
            fault_model,
            transparency: transparency.clone(),
            config,
            verdicts: HashMap::new(),
            refuted_bounds: HashMap::new(),
            anchor: None,
            join_memo: JoinMemo::new(),
            last_artifacts: None,
            calibration_milli: 1000,
            stats: CertifierStats::default(),
        }
    }

    /// The fault budget this certifier certifies against.
    pub fn k(&self) -> u32 {
        self.fault_model.k()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> CertifierStats {
        self.stats
    }

    /// The calibration factor in milli-units: the largest
    /// `exact / estimate` ratio observed on configurations certified
    /// through [`Certifier::record_estimate`], never below 1000.
    pub fn calibration_milli(&self) -> u64 {
        self.calibration_milli
    }

    /// Folds one `(exact, estimate)` observation into the calibration
    /// factor (ratios below 1 are clamped — a pessimistic estimate needs
    /// no correction).
    pub fn record_estimate(&mut self, exact: Time, estimate: Time) {
        self.calibration_milli = self.calibration_milli.max(calibration_milli(exact, estimate));
    }

    /// Certifies one configuration: builds its FT-CPG and exact conditional
    /// schedule (memoized; budgeted) and judges every deadline on it.
    ///
    /// # Errors
    ///
    /// Hard construction/scheduling failures only; size and work-budget
    /// overruns are reported as [`CertOutcome::OverBudget`].
    pub fn certify(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<CertOutcome, CertifyError> {
        self.stats.requests += 1;
        let _span = ftes_obs::span(ftes_obs::names::CERTIFY);
        let key = config_key(&self.app, copies, policies);
        if let Some(&verdict) = self.verdicts.get(&key) {
            self.stats.cache_hits += 1;
            ftes_obs::counter(ftes_obs::names::CERTIFY_MEMO_HIT, 1);
            return Ok(verdict);
        }
        match self.schedule_uncached(&key, copies, policies, None)? {
            UncachedResult::Verdict(verdict) => {
                self.verdicts.insert(key, verdict);
                Ok(verdict)
            }
            UncachedResult::Pruned(_) => unreachable!("unbounded runs never prune"),
            UncachedResult::Budget => Ok(CertOutcome::OverBudget),
        }
    }

    /// Certifies one configuration against an upper bound: identical to
    /// [`Certifier::certify`] when the exact schedule fits the bound, but
    /// exits at the first scenario branch that provably exceeds it —
    /// the bound-and-prune regime that makes refutation cheap enough to
    /// run inside the search loop (pass the incumbent's deadline as the
    /// bound; [`BoundedCert::Pruned`] then proves `deadline_met` would be
    /// `false` without scheduling the remaining scenarios).
    ///
    /// Both the verdict memo and previously proven refutation bounds
    /// answer without re-scheduling; a pruned run records its lower bound
    /// so the same losing configuration refutes from the memo next time.
    ///
    /// # Errors
    ///
    /// Hard construction/scheduling failures only, exactly as
    /// [`Certifier::certify`].
    pub fn certify_bounded(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        bound: Time,
    ) -> Result<BoundedCert, CertifyError> {
        self.stats.requests += 1;
        let _span = ftes_obs::span(ftes_obs::names::CERTIFY);
        let key = config_key(&self.app, copies, policies);
        if let Some(&verdict) = self.verdicts.get(&key) {
            self.stats.cache_hits += 1;
            ftes_obs::counter(ftes_obs::names::CERTIFY_MEMO_HIT, 1);
            return Ok(BoundedCert::Verdict(verdict));
        }
        if let Some(&lb) = self.refuted_bounds.get(&key) {
            if lb > bound {
                self.stats.cache_hits += 1;
                ftes_obs::counter(ftes_obs::names::CERTIFY_MEMO_HIT, 1);
                return Ok(BoundedCert::Pruned { lower_bound: lb });
            }
        }
        match self.schedule_uncached(&key, copies, policies, Some(bound))? {
            UncachedResult::Verdict(verdict) => {
                self.verdicts.insert(key, verdict);
                Ok(BoundedCert::Verdict(verdict))
            }
            UncachedResult::Pruned(lower_bound) => {
                self.stats.pruned_runs += 1;
                ftes_obs::counter(ftes_obs::names::CERTIFY_PRUNE, 1);
                let entry = self.refuted_bounds.entry(key).or_insert(lower_bound);
                *entry = (*entry).max(lower_bound);
                Ok(BoundedCert::Pruned { lower_bound: *entry })
            }
            UncachedResult::Budget => Ok(BoundedCert::Verdict(CertOutcome::OverBudget)),
        }
    }

    /// Takes the FT-CPG and exact schedule of the most recent certification
    /// if it was for exactly this configuration — the flow uses this to
    /// avoid rebuilding the winner's graph for table generation.
    pub fn take_artifacts(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Option<(FtCpg, ConditionalSchedule)> {
        let key = config_key(&self.app, copies, policies);
        match self.last_artifacts.take() {
            Some((k, cpg, schedule)) if k == key => Some((cpg, schedule)),
            other => {
                self.last_artifacts = other;
                None
            }
        }
    }

    /// Builds graph + schedule, updating counters and the artifact slot.
    /// `Budget` = work budget exhausted (not cacheable); a too-large graph
    /// is `Verdict(OverBudget)` (cacheable — a configuration's graph size
    /// never changes); `Pruned` = a bounded run refuted early (cached as
    /// refutation evidence by the caller, never as a verdict).
    fn schedule_uncached(
        &mut self,
        key: &[u8],
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        bound: Option<Time>,
    ) -> Result<UncachedResult, CertifyError> {
        if self.stats.exact_runs >= self.config.max_exact_runs {
            self.stats.budget_exhausted += 1;
            return Ok(UncachedResult::Budget);
        }
        // ftes-lint: allow(determinism) reason="exact-run timing feeds CertifyStats diagnostics, never result bytes"
        let started = Instant::now();
        let built = {
            let _span = ftes_obs::span(ftes_obs::names::CPG);
            match self.anchor.as_mut() {
                Some(anchor) => {
                    self.stats.incremental_builds += 1;
                    ftes_obs::counter(ftes_obs::names::CERTIFY_INCREMENTAL, 1);
                    anchor
                        .rebuild(
                            &self.app,
                            policies,
                            copies,
                            self.fault_model,
                            &self.transparency,
                            self.config.cpg,
                        )
                        .map(|(cpg, _)| cpg)
                }
                None => build_ftcpg_anchored(
                    &self.app,
                    policies,
                    copies,
                    self.fault_model,
                    &self.transparency,
                    self.config.cpg,
                )
                .map(|(cpg, anchor)| {
                    self.anchor = Some(anchor);
                    cpg
                }),
            }
        };
        let cpg = match built {
            Ok(cpg) => cpg,
            Err(CpgError::GraphTooLarge { .. }) => {
                self.stats.graph_too_large += 1;
                self.stats.wall += started.elapsed();
                return Ok(UncachedResult::Verdict(CertOutcome::OverBudget));
            }
            Err(e) => {
                self.stats.wall += started.elapsed();
                return Err(e.into());
            }
        };
        self.stats.exact_runs += 1;
        let scheduled = {
            let _span = ftes_obs::span(ftes_obs::names::SCHEDULE);
            schedule_ftcpg_bounded(
                &self.app,
                &cpg,
                &self.platform,
                self.config.sched,
                bound,
                Some(&mut self.join_memo),
            )
        };
        self.stats.subtree_hits = self.join_memo.hits();
        self.stats.subtree_misses = self.join_memo.misses();
        let schedule = match scheduled {
            Ok(BoundedSchedule::Complete(s)) => s,
            Ok(BoundedSchedule::Exceeded { lower_bound }) => {
                self.stats.wall += started.elapsed();
                return Ok(UncachedResult::Pruned(lower_bound));
            }
            Err(e) => {
                self.stats.wall += started.elapsed();
                return Err(e.into());
            }
        };
        let deadline_met = check_deadlines(&self.app, &cpg, &schedule).is_empty();
        let verdict = CertOutcome::Exact { exact_len: schedule.length(), deadline_met };
        self.last_artifacts = Some((key.to_vec(), cpg, schedule));
        self.stats.wall += started.elapsed();
        Ok(UncachedResult::Verdict(verdict))
    }
}

/// Internal outcome of one uncached scheduling attempt.
enum UncachedResult {
    /// A cacheable verdict (exact, or a size-budget `OverBudget`).
    Verdict(CertOutcome),
    /// A bounded run refuted early with this proven lower bound.
    Pruned(Time),
    /// The work budget is exhausted — answer `OverBudget`, do not cache.
    Budget,
}

/// The `exact / estimate` ratio in milli-units, clamped to ≥ 1000 (the
/// calibration factor only ever *inflates* estimates — a pessimistic
/// estimator needs no correction).
pub fn calibration_milli(exact: Time, estimate: Time) -> u64 {
    let (e, x) = (estimate.units(), exact.units());
    if e <= 0 || x <= e {
        return 1000;
    }
    // Ceiling division keeps `estimate × factor ≥ exact` exactly.
    ((x as u128 * 1000).div_ceil(e as u128).min(u64::MAX as u128)) as u64
}

/// Canonical, collision-free encoding of one `(copies, policies)`
/// configuration — the certification twin of the exploration cache's
/// `StateKey` (which encodes `(mapping, policies)`; the certifier sees the
/// derived copy placement instead, which subsumes the mapping).
fn config_key(app: &Application, copies: &CopyMapping, policies: &PolicyAssignment) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * app.process_count());
    for (pid, _) in app.processes() {
        let placed = copies.copies_of(pid);
        out.extend_from_slice(&(placed.len() as u32).to_le_bytes());
        for &node in placed {
            out.extend_from_slice(&(node.index() as u32).to_le_bytes());
        }
        let policy = policies.policy(pid);
        out.extend_from_slice(&(policy.copies().len() as u32).to_le_bytes());
        for plan in policy.copies() {
            out.extend_from_slice(&plan.recoveries.to_le_bytes());
            out.extend_from_slice(&plan.checkpoints.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_schedule_length, schedule_ftcpg};
    use ftes_ftcpg::build_ftcpg;
    use ftes_model::{samples, Mapping};

    fn fig3_instance(k: u32) -> (Application, Platform, CopyMapping, PolicyAssignment) {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        (app, platform, copies, policies)
    }

    fn certifier(app: &Application, platform: &Platform, k: u32, cfg: CertifyConfig) -> Certifier {
        Certifier::new(app, platform, FaultModel::new(k), &Transparency::none(), cfg)
    }

    #[test]
    fn certification_matches_a_fresh_exact_schedule() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        let verdict = c.certify(&copies, &policies).unwrap();
        let CertOutcome::Exact { exact_len, deadline_met } = verdict else {
            panic!("fig3 fits the budget");
        };
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        assert_eq!(exact_len, schedule.length());
        assert_eq!(deadline_met, check_deadlines(&app, &cpg, &schedule).is_empty());
        // The estimator is never pessimistic here.
        let est = estimate_schedule_length(&app, &platform, &copies, &policies, 2).unwrap();
        assert!(est.worst_case_length <= exact_len, "{est:?} vs {exact_len}");
    }

    #[test]
    fn verdicts_are_memoized() {
        let (app, platform, copies, policies) = fig3_instance(1);
        let mut c = certifier(&app, &platform, 1, CertifyConfig::default());
        let a = c.certify(&copies, &policies).unwrap();
        let b = c.certify(&copies, &policies).unwrap();
        assert_eq!(a, b);
        let stats = c.stats();
        assert_eq!((stats.requests, stats.cache_hits, stats.exact_runs), (2, 1, 1));
    }

    #[test]
    fn graph_size_budget_reports_over_budget() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let cfg = CertifyConfig { cpg: BuildConfig { node_limit: 2 }, ..CertifyConfig::default() };
        let mut c = certifier(&app, &platform, 2, cfg);
        assert_eq!(c.certify(&copies, &policies).unwrap(), CertOutcome::OverBudget);
        assert_eq!(c.stats().graph_too_large, 1);
        // Size verdicts are cacheable (the graph cannot shrink).
        assert_eq!(c.certify(&copies, &policies).unwrap(), CertOutcome::OverBudget);
        assert_eq!(c.stats().cache_hits, 1);
    }

    #[test]
    fn work_budget_exhaustion_is_not_cached() {
        let (app, platform, copies, policies) = fig3_instance(1);
        let cfg = CertifyConfig { max_exact_runs: 0, ..CertifyConfig::default() };
        let mut c = certifier(&app, &platform, 1, cfg);
        assert_eq!(c.certify(&copies, &policies).unwrap(), CertOutcome::OverBudget);
        assert_eq!(c.stats().budget_exhausted, 1);
        assert_eq!(c.stats().cache_hits, 0, "budget overruns must not poison the cache");
    }

    #[test]
    fn artifacts_are_reusable_for_the_last_configuration() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        let verdict = c.certify(&copies, &policies).unwrap();
        let (cpg, schedule) = c.take_artifacts(&copies, &policies).expect("just scheduled");
        assert_eq!(Some(schedule.length()), verdict.exact_len());
        assert!(cpg.node_count() > app.process_count());
        // Taken once; a second take must miss.
        assert!(c.take_artifacts(&copies, &policies).is_none());
    }

    #[test]
    fn artifacts_do_not_alias_other_configurations() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        c.certify(&copies, &policies).unwrap();
        let other = PolicyAssignment::uniform_reexecution(&app, 2);
        let mut other = other;
        other.set(ftes_model::ProcessId::new(0), ftes_ft::Policy::checkpointing(2, 2));
        let other_copies = CopyMapping::from_base(
            &app,
            platform.architecture(),
            &Mapping::cheapest(&app, platform.architecture()).unwrap(),
            &other,
        )
        .unwrap();
        assert!(c.take_artifacts(&other_copies, &other).is_none());
        // The slot survives a mismatched take.
        assert!(c.take_artifacts(&copies, &policies).is_some());
    }

    #[test]
    fn calibration_factor_is_monotone_and_clamped() {
        assert_eq!(calibration_milli(Time::new(100), Time::new(100)), 1000);
        assert_eq!(calibration_milli(Time::new(90), Time::new(100)), 1000);
        assert_eq!(calibration_milli(Time::new(1041), Time::new(441)), 2361);
        assert_eq!(calibration_milli(Time::new(100), Time::ZERO), 1000);

        let (app, platform, ..) = fig3_instance(1);
        let mut c = certifier(&app, &platform, 1, CertifyConfig::default());
        assert_eq!(c.calibration_milli(), 1000);
        c.record_estimate(Time::new(150), Time::new(100));
        assert_eq!(c.calibration_milli(), 1500);
        c.record_estimate(Time::new(110), Time::new(100));
        assert_eq!(c.calibration_milli(), 1500, "the factor never decreases");
    }

    #[test]
    fn incremental_certification_matches_a_fresh_certifier() {
        // A warm certifier walked over a chain of one-move deltas rebuilds
        // from its anchor and schedules against its subtree memo; every
        // verdict AND artifact must be bit-identical to a cold certifier.
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let mut warm = certifier(&app, &platform, 2, CertifyConfig::default());
        // P1 stays replicated in every configuration, so its replica-join
        // subtree recurs across the walk and must hit the subtree memo;
        // the delta rotates a second process through policy changes.
        let deltas = [(1, 0), (2, 1), (3, 0), (4, 1), (1, 1), (2, 0)];
        for (step, (target, variant)) in deltas.into_iter().enumerate() {
            let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
            policies.set(ftes_model::ProcessId::new(0), ftes_ft::Policy::replication(2));
            let policy = if variant == 0 {
                ftes_ft::Policy::checkpointing(2, 2)
            } else {
                ftes_ft::Policy::replication(2)
            };
            policies.set(ftes_model::ProcessId::new(target), policy);
            let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
            let mut fresh = certifier(&app, &platform, 2, CertifyConfig::default());
            let warm_verdict = warm.certify(&copies, &policies).unwrap();
            let fresh_verdict = fresh.certify(&copies, &policies).unwrap();
            assert_eq!(warm_verdict, fresh_verdict, "verdict diverged at step {step}");
            let (warm_cpg, warm_sched) = warm.take_artifacts(&copies, &policies).unwrap();
            let (fresh_cpg, fresh_sched) = fresh.take_artifacts(&copies, &policies).unwrap();
            assert_eq!(warm_cpg, fresh_cpg, "FT-CPG diverged at step {step}");
            assert_eq!(warm_sched, fresh_sched, "schedule diverged at step {step}");
        }
        let stats = warm.stats();
        assert_eq!(stats.incremental_builds, 5, "every run after the first rebuilds the anchor");
        assert!(stats.subtree_hits > 0, "the delta walk must revisit scenario subtrees");
    }

    #[test]
    fn bounded_certification_prunes_and_memoizes_the_refutation() {
        let (app, platform, copies, policies) = fig3_instance(2);
        let mut reference = certifier(&app, &platform, 2, CertifyConfig::default());
        let verdict = reference.certify(&copies, &policies).unwrap();
        let CertOutcome::Exact { exact_len, .. } = verdict else {
            panic!("fig3 fits the budget");
        };

        let mut c = certifier(&app, &platform, 2, CertifyConfig::default());
        let tight = Time::new(exact_len.units() - 1);
        let BoundedCert::Pruned { lower_bound } =
            c.certify_bounded(&copies, &policies, tight).unwrap()
        else {
            panic!("a bound below the exact length must refute early");
        };
        assert!(lower_bound > tight, "the pruning end time is past the bound");
        assert!(lower_bound <= exact_len, "a placed end is a valid lower bound");
        assert_eq!(c.stats().pruned_runs, 1);

        // The refutation evidence answers the same losing request from the
        // memo — no second scheduler run.
        let again = c.certify_bounded(&copies, &policies, tight).unwrap();
        assert_eq!(again, BoundedCert::Pruned { lower_bound });
        assert_eq!((c.stats().cache_hits, c.stats().pruned_runs), (1, 1));

        // A bound the evidence cannot refute re-schedules and completes
        // with the reference verdict; from then on the verdict memo rules.
        let complete = c.certify_bounded(&copies, &policies, exact_len).unwrap();
        assert_eq!(complete, BoundedCert::Verdict(verdict));
        assert!(complete.is_certified() || !verdict.is_certified());
        assert_eq!(c.certify(&copies, &policies).unwrap(), verdict);
        assert_eq!(c.stats().cache_hits, 2);
    }

    #[test]
    fn config_keys_are_collision_free_on_adversarial_twins() {
        // Two distinct states that touch the same scenario subtrees must
        // never share a key: swapping which process carries the heavy
        // policy, or trading copy counts between neighbors, all reshuffle
        // the same totals.
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut keys = Vec::new();
        let n = app.process_count();
        for target in 0..n {
            for heavy in [ftes_ft::Policy::checkpointing(2, 2), ftes_ft::Policy::replication(2)] {
                let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
                policies.set(ftes_model::ProcessId::new(target), heavy);
                let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
                keys.push((target, config_key(&app, &copies, &policies)));
            }
        }
        for (i, (ta, a)) in keys.iter().enumerate() {
            for (tb, b) in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "states ({ta}, {tb}) collided");
            }
        }
        // Equal configurations keep equal keys (the memo can actually hit).
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        assert_eq!(config_key(&app, &copies, &policies), config_key(&app, &copies, &policies));
    }

    #[test]
    fn certification_counters_record_and_merge() {
        let mut a = CertificationCounters::default();
        a.record(Some(true), 0);
        a.record(Some(true), 2);
        a.record(Some(false), 3);
        let mut b = CertificationCounters::default();
        b.record(None, 0);
        let merged = a.merged(b);
        assert_eq!(
            merged,
            CertificationCounters { certified: 2, refuted: 1, uncertifiable: 1, repair_rounds: 5 }
        );
        assert_eq!(merged.total(), 4);
        assert!((merged.certified_pct() - 50.0).abs() < 1e-9);
        assert_eq!(CertificationCounters::default().certified_pct(), 0.0);
    }
}
