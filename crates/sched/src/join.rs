//! Adversarial analysis of replicated executions: by when is at least one
//! replica of a process guaranteed to have completed, no matter how an
//! adversary distributes the remaining fault budget?
//!
//! Active replication (§3.2) runs all replicas regardless of faults. A
//! replica with `f` faults completes at its `f`-recovery completion time; a
//! replica whose whole recovery chain is exhausted dies. The worst-case
//! delivery time of the process output is
//!
//! `max over fault allocations (Σfj ≤ budget) of min over alive replicas of
//! completion(j, fj)`
//!
//! which the conditional scheduler uses as the completion time of a
//! `ReplicaJoin` node, and the estimator uses for replication slack.

use ftes_model::Time;
// ftes-lint: allow(determinism) reason="canonical-key subtree memo; probed per key, never iterated into results"
use std::collections::HashMap;

/// Completion ladder of one replica: `ladder[f]` is the completion time
/// after absorbing `f` faults (`f < ladder.len()`), and `killable` tells
/// whether hitting every attempt (cost `ladder.len()` faults) kills the
/// replica for the rest of the cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaLadder {
    /// Completion time after `f` faults, `f = 0..len`.
    pub ladder: Vec<Time>,
    /// `true` if `ladder.len()` faults kill the replica (its final attempt
    /// is still at risk); `false` if the chain is budget-truncated and the
    /// final attempt can no longer fail.
    pub killable: bool,
}

/// Outcome of one adversary allocation over all replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Some replica survives; payload is the earliest surviving completion.
    Delivered(Time),
    /// Every replica is dead.
    Silent,
}

/// Worst-case delivery time of a replicated output under `budget` faults.
///
/// Returns `None` if the adversary can kill **all** replicas within the
/// budget — a policy-assignment bug for validated inputs; callers surface it
/// as an error.
///
/// # Examples
///
/// ```
/// use ftes_sched::{worst_case_delivery, ReplicaLadder};
/// use ftes_model::Time;
///
/// // Two plain replicas finishing at 70 and 90; one fault to spend.
/// let ladders = vec![
///     ReplicaLadder { ladder: vec![Time::new(70)], killable: true },
///     ReplicaLadder { ladder: vec![Time::new(90)], killable: true },
/// ];
/// // The adversary kills the fast one; the slow one delivers.
/// assert_eq!(worst_case_delivery(&ladders, 1), Some(Time::new(90)));
/// // With no faults the fast replica delivers.
/// assert_eq!(worst_case_delivery(&ladders, 0), Some(Time::new(70)));
/// // Two faults kill both.
/// assert_eq!(worst_case_delivery(&ladders, 2), None);
/// ```
pub fn worst_case_delivery(ladders: &[ReplicaLadder], budget: u32) -> Option<Time> {
    if ladders.is_empty() {
        return None;
    }
    match explore(ladders, budget, Time::MAX) {
        Some(Outcome::Delivered(t)) => Some(t),
        Some(Outcome::Silent) | None => None,
    }
}

/// Returns the adversary-optimal outcome for replicas `ladders`, given
/// `budget` faults and `current_min` — the minimum completion among replicas
/// already decided alive (`Time::MAX` when none yet). `Silent` dominates any
/// `Delivered`; among `Delivered`, larger is worse.
fn explore(ladders: &[ReplicaLadder], budget: u32, current_min: Time) -> Option<Outcome> {
    let Some((first, rest)) = ladders.split_first() else {
        return Some(if current_min == Time::MAX {
            Outcome::Silent
        } else {
            Outcome::Delivered(current_min)
        });
    };
    let mut worst: Option<Outcome> = None;
    let mut consider = |o: Outcome| {
        worst = Some(match (worst, o) {
            (None, o) => o,
            (Some(Outcome::Silent), _) | (_, Outcome::Silent) => Outcome::Silent,
            (Some(Outcome::Delivered(a)), Outcome::Delivered(b)) => Outcome::Delivered(a.max(b)),
        });
    };
    // Option 1: delay this replica with f faults; it stays alive. The
    // ladder is non-decreasing for well-formed inputs, so only the largest
    // affordable f matters — but we scan all f for robustness to
    // non-monotone ladders.
    for f in 0..first.ladder.len() as u32 {
        if f > budget {
            break;
        }
        if let Some(o) = explore(rest, budget - f, current_min.min(first.ladder[f as usize])) {
            consider(o);
        }
    }
    // Option 2: kill it (cost = the whole chain), if affordable.
    let kill_cost = first.ladder.len() as u32;
    if first.killable && kill_cost <= budget {
        if let Some(o) = explore(rest, budget - kill_cost, current_min) {
            consider(o);
        }
    }
    worst
}

/// Canonical, collision-free key of one adversarial-delivery subproblem:
/// the fault budget plus, per replica ladder, its length, every completion
/// time and the killable flag. Two `(copies, policies)` states whose
/// scenario subtrees reduce to the same key have provably identical
/// worst-case deliveries (the DP is a pure function of exactly these
/// inputs), so the key doubles as the memo's invalidation: any change to a
/// touched process's policy, placement or copy completion times changes
/// some ladder entry and thereby the key.
pub fn subtree_key(ladders: &[ReplicaLadder], budget: u32) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(8 + ladders.iter().map(|l| 8 * l.ladder.len() + 5).sum::<usize>());
    out.extend_from_slice(&budget.to_le_bytes());
    for l in ladders {
        out.extend_from_slice(&(l.ladder.len() as u32).to_le_bytes());
        for &end in &l.ladder {
            out.extend_from_slice(&end.units().to_le_bytes());
        }
        out.push(u8::from(l.killable));
    }
    out
}

/// Memo of [`worst_case_delivery`] results keyed by [`subtree_key`] — the
/// fault-scenario subtree cache behind incremental certification. The DP
/// is exponential in the replica count in the worst case; across the
/// certifier's delta chains most joins are untouched and resolve to the
/// same key, so the memo answers them in a hash probe.
#[derive(Debug, Clone, Default)]
pub struct JoinMemo {
    entries: HashMap<Vec<u8>, Option<Time>>,
    hits: u64,
    misses: u64,
}

impl JoinMemo {
    /// An empty memo.
    pub fn new() -> Self {
        JoinMemo::default()
    }

    /// Deliveries answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Deliveries that ran the adversarial DP.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Memoized [`worst_case_delivery`] — bit-identical to the plain
    /// function (the DP is pure; the key is collision-free).
    pub fn delivery(&mut self, ladders: &[ReplicaLadder], budget: u32) -> Option<Time> {
        let key = subtree_key(ladders, budget);
        if let Some(&cached) = self.entries.get(&key) {
            self.hits += 1;
            ftes_obs::counter(ftes_obs::names::CERTIFY_SUBTREE_HIT, 1);
            return cached;
        }
        let computed = worst_case_delivery(ladders, budget);
        self.misses += 1;
        self.entries.insert(key, computed);
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    fn plain(completion: i64) -> ReplicaLadder {
        ReplicaLadder { ladder: vec![t(completion)], killable: true }
    }

    #[test]
    fn single_checkpointed_copy_walks_its_ladder() {
        // One copy with 2 recoveries: ladder of 3 completions, not killable
        // beyond (budget-truncated regular final attempt).
        let l = vec![ReplicaLadder { ladder: vec![t(75), t(155), t(225)], killable: false }];
        assert_eq!(worst_case_delivery(&l, 0), Some(t(75)));
        assert_eq!(worst_case_delivery(&l, 1), Some(t(155)));
        assert_eq!(worst_case_delivery(&l, 2), Some(t(225)));
        // Extra budget cannot hurt a non-killable exhausted chain.
        assert_eq!(worst_case_delivery(&l, 5), Some(t(225)));
    }

    #[test]
    fn k_plus_one_plain_replicas_deliver_kth_smallest() {
        let l = vec![plain(70), plain(80), plain(90)];
        // Budget 2: kill the two fastest; the slowest delivers.
        assert_eq!(worst_case_delivery(&l, 2), Some(t(90)));
        assert_eq!(worst_case_delivery(&l, 1), Some(t(80)));
        assert_eq!(worst_case_delivery(&l, 0), Some(t(70)));
        assert_eq!(worst_case_delivery(&l, 3), None, "budget kills all");
    }

    #[test]
    fn mixed_kill_and_delay() {
        // Replica A: plain, fast. Replica B: one recovery, slow ladder.
        let l = vec![plain(50), ReplicaLadder { ladder: vec![t(60), t(120)], killable: true }];
        // Budget 2: kill A (1 fault), delay B once (1 fault) -> 120.
        assert_eq!(worst_case_delivery(&l, 2), Some(t(120)));
        // Budget 1: either kill A (B at 60) or delay B (A at 50): max = 60.
        assert_eq!(worst_case_delivery(&l, 1), Some(t(60)));
        // Budget 3: kill A and B (1 + 2) -> None.
        assert_eq!(worst_case_delivery(&l, 3), None);
    }

    #[test]
    fn empty_replica_set_never_delivers() {
        assert_eq!(worst_case_delivery(&[], 0), None);
    }

    #[test]
    fn order_of_replicas_is_irrelevant() {
        let a = vec![plain(50), ReplicaLadder { ladder: vec![t(60), t(120)], killable: true }];
        let b = vec![ReplicaLadder { ladder: vec![t(60), t(120)], killable: true }, plain(50)];
        for budget in 0..4 {
            assert_eq!(worst_case_delivery(&a, budget), worst_case_delivery(&b, budget));
        }
    }

    #[test]
    fn non_monotone_ladder_handled() {
        // Degenerate input: a "recovery" that finishes earlier (can happen
        // with zero-duration test fixtures); the adversary must still pick
        // the max.
        let l = vec![ReplicaLadder { ladder: vec![t(100), t(40)], killable: false }];
        assert_eq!(worst_case_delivery(&l, 1), Some(t(100)));
    }

    #[test]
    fn subtree_keys_are_collision_free_on_adversarial_shapes() {
        // Same multiset of completion times, different ladder grouping:
        // [[1,2],[3]] vs [[1],[2,3]] describe different subtrees and MUST
        // key apart (flat concatenation without length prefixes collides).
        let a = vec![
            ReplicaLadder { ladder: vec![t(1), t(2)], killable: true },
            ReplicaLadder { ladder: vec![t(3)], killable: true },
        ];
        let b = vec![
            ReplicaLadder { ladder: vec![t(1)], killable: true },
            ReplicaLadder { ladder: vec![t(2), t(3)], killable: true },
        ];
        assert_ne!(subtree_key(&a, 1), subtree_key(&b, 1));
        // Killable flag and budget are part of the subproblem.
        let c = vec![ReplicaLadder { ladder: vec![t(1), t(2)], killable: false }];
        let d = vec![ReplicaLadder { ladder: vec![t(1), t(2)], killable: true }];
        assert_ne!(subtree_key(&c, 1), subtree_key(&d, 1));
        assert_ne!(subtree_key(&c, 1), subtree_key(&c, 2));
        // A killable flag can never be confused with a one-entry ladder of
        // a zero/one completion (length prefixes self-delimit).
        let e = vec![
            ReplicaLadder { ladder: vec![t(1)], killable: true },
            ReplicaLadder { ladder: vec![t(1)], killable: true },
        ];
        let f = vec![ReplicaLadder { ladder: vec![t(1), t(1)], killable: true }];
        assert_ne!(subtree_key(&e, 0), subtree_key(&f, 0));
    }

    #[test]
    fn join_memo_equals_the_plain_dp_and_counts_hits() {
        let mut memo = JoinMemo::new();
        let a = vec![plain(50), ReplicaLadder { ladder: vec![t(60), t(120)], killable: true }];
        let b = vec![plain(50), plain(70), plain(90)];
        for budget in 0..4 {
            assert_eq!(memo.delivery(&a, budget), worst_case_delivery(&a, budget));
            assert_eq!(memo.delivery(&b, budget), worst_case_delivery(&b, budget));
        }
        assert_eq!((memo.hits(), memo.misses()), (0, 8));
        // Revisits hit; non-equivalent subtrees never cross.
        for budget in 0..4 {
            assert_eq!(memo.delivery(&a, budget), worst_case_delivery(&a, budget));
        }
        assert_eq!((memo.hits(), memo.misses()), (4, 8));
    }
}
