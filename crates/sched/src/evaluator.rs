//! The incremental evaluation kernel: a reusable [`SystemEvaluator`] that
//! amortizes everything invariant per `(Application, Platform, k)` across
//! the thousands of candidate evaluations a synthesis run performs.
//!
//! [`estimate_schedule_length`](crate::estimate_schedule_length) re-derives
//! the list-scheduling order, recovery schemes, resource tables and
//! transitive-successor structure from scratch on every call — fine for a
//! one-shot estimate, wasteful inside the optimization loops where only the
//! candidate `(mapping, policies)` state changes between calls. The kernel
//! splits the work into a **three-tier contract**:
//!
//! * **Construction** precomputes the invariants: the exact pop order of
//!   the root-schedule list scheduler (a pure function of the DAG and the
//!   downward ranks, both state-independent), one [`RecoveryScheme`] per
//!   feasible `(process, node)` pair, and reusable per-processor lane and
//!   per-process completion buffers.
//! * **[`evaluate`](SystemEvaluator::evaluate)** — tier 1, full — re-scores
//!   a candidate state against those buffers with zero steady-state
//!   allocation, and anchors the evaluator's *base state* for delta
//!   re-estimation.
//! * **[`delta_evaluate`](SystemEvaluator::delta_evaluate)** — tier 2,
//!   incremental — re-scores a neighbor of the base state by diffing copy
//!   placements and policies: the root-schedule prefix before the first
//!   dirty process is provably identical (the pop order is fixed and every
//!   reservation at position `< p` derives from positions `< p` only), so
//!   only the suffix is re-scheduled and only processes whose inputs
//!   changed re-run the adversarial slack analysis. When the dirty region
//!   reaches position 0 the call degrades to a full evaluation — never to
//!   a wrong one.
//! * **[`evaluate_batch`](SystemEvaluator::evaluate_batch)** — tier 3,
//!   neighborhood — scores a whole set of neighbors in one pass: candidates
//!   are sorted by first-dirty pop position (stably; results come back in
//!   input order), the shared schedule prefix is materialized incrementally
//!   as a sorted per-lane reservation image, and each candidate forks its
//!   suffix off that image with flat `memcpy` restores instead of per-call
//!   partition-and-sort work. The batch never moves the base state.
//!
//! ## SoA layout
//!
//! All per-evaluation state lives in contiguous structure-of-arrays
//! buffers, which is what makes shared-prefix forking sound *and* cheap:
//!
//! * copy completion times are one flat `Vec<Time>` in **pop-position
//!   order** with a `Vec<u32>` offset table (`copy_off[pos]..copy_off[pos +
//!   1]` is position `pos`'s row), so "restore the prefix before position
//!   `d`" is a single `memcpy` of `copy_end[..copy_off[d]]` — the prefix of
//!   the flat array *is* the prefix of the schedule;
//! * recovery schemes are one flat slice with a node-count stride;
//! * per-node reservation logs are tagged with the reserving pop position
//!   and appended in pop order, so any prefix image is a cursor walk, and
//!   per-process slack, downstream-finish, and changed flags are flat
//!   arrays indexed by process id.
//!
//! Equality with the legacy free function is bit-for-bit — including which
//! process is reported critical and which error is reported for infeasible
//! states — and is locked in by `tests/evaluator_equality.rs` at the
//! workspace root, which also pins `evaluate_batch` to the sequential
//! delta path result-for-result and error-for-error, in input order.

use crate::{worst_case_delivery, Estimate, ReplicaLadder, SchedError};
use ftes_ft::{CopyPlan, FtError, PolicyAssignment, RecoveryScheme};
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, ProcessId, Time};
use ftes_tdma::Platform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work counters of one [`SystemEvaluator`] (mergeable across a pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvaluatorStats {
    /// Evaluator constructions (1 per [`SystemEvaluator::new`]).
    pub constructions: u64,
    /// Full evaluations (including delta fallbacks).
    pub full_evals: u64,
    /// Delta evaluations that re-scheduled only a suffix.
    pub delta_evals: u64,
    /// Delta calls whose state equalled the base (answered from the anchor).
    pub delta_noops: u64,
    /// Delta calls that fell back to a full evaluation (no base yet, or the
    /// dirty region reached position 0).
    pub delta_fallbacks: u64,
    /// Batched neighborhood evaluations
    /// ([`SystemEvaluator::evaluate_batch`] invocations).
    pub batch_evals: u64,
    /// Candidates scored through the batch path (each also counted in the
    /// full/delta/noop buckets above, so [`EvaluatorStats::evaluations`]
    /// needs no extra term).
    pub batch_candidates: u64,
}

impl EvaluatorStats {
    /// Total candidate evaluations answered.
    pub fn evaluations(&self) -> u64 {
        self.full_evals + self.delta_evals + self.delta_noops
    }

    /// Evaluations served by a *reused* evaluator (beyond one construction
    /// each) — the counter the `ftes explore` summary reports.
    pub fn reused(&self) -> u64 {
        self.evaluations().saturating_sub(self.constructions)
    }

    /// Sums two snapshots (pool/suite aggregation).
    pub fn merged(self, other: EvaluatorStats) -> EvaluatorStats {
        EvaluatorStats {
            constructions: self.constructions + other.constructions,
            full_evals: self.full_evals + other.full_evals,
            delta_evals: self.delta_evals + other.delta_evals,
            delta_noops: self.delta_noops + other.delta_noops,
            delta_fallbacks: self.delta_fallbacks + other.delta_fallbacks,
            batch_evals: self.batch_evals + other.batch_evals,
            batch_candidates: self.batch_candidates + other.batch_candidates,
        }
    }
}

/// Per-`(process, node)` recovery scheme, precomputed at construction.
///
/// `None` = the process has no WCET on that node (a validated copy mapping
/// never asks for it); `Some(Err)` = the scheme itself is invalid there and
/// evaluation must surface the same [`FtError`] the legacy path would.
type SchemeSlot = Option<Result<RecoveryScheme, FtError>>;

/// The anchor state `delta_evaluate` and `evaluate_batch` diff against.
///
/// Mirrors the evaluator's flat SoA scratch: `copy_end`/`copy_off` store the
/// base root schedule pop-position-major, so any schedule prefix restores
/// with two `memcpy`s.
struct BaseState {
    copies: CopyMapping,
    policies: PolicyAssignment,
    /// Completion time of every copy, flat in pop-position order.
    copy_end: Vec<Time>,
    /// Row offsets into `copy_end` (`copy_off[pos]..copy_off[pos + 1]`).
    copy_off: Vec<u32>,
    /// Per node: reservations in insertion (= pop) order, tagged with the
    /// position of the reserving process so prefixes can be truncated (and,
    /// in the batch path, extended incrementally with a cursor).
    logs: Vec<Vec<(u32, Time, Time)>>,
    /// Root-schedule makespan after each position.
    makespan_after: Vec<Time>,
    /// Recovery slack `delivery − no_fault` per process.
    slack: Vec<Time>,
    estimate: Estimate,
}

/// Reusable evaluation kernel for one `(Application, Platform, k)` problem
/// instance.
///
/// The evaluator owns clones of the application and platform so it can
/// outlive the caller's borrows (the `ftes-serve` evaluator bank keeps warm
/// evaluators across requests). All scratch buffers are reused between
/// calls; steady-state evaluation allocates nothing.
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::CopyMapping;
/// use ftes_model::{samples, Mapping, Time};
/// use ftes_sched::{estimate_schedule_length, SystemEvaluator};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig3();
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let platform = Platform::homogeneous(2, Time::new(8))?;
///
/// let mut evaluator = SystemEvaluator::new(&app, &platform, 2);
/// let fast = evaluator.evaluate(&copies, &policies)?;
/// let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 2)?;
/// assert_eq!(fast, legacy);
///
/// // A whole neighborhood in one pass, results in input order.
/// let batch = evaluator.evaluate_batch(&[(&copies, &policies)]);
/// assert_eq!(batch[0].as_ref().unwrap(), &legacy);
/// # Ok(())
/// # }
/// ```
pub struct SystemEvaluator {
    app: Application,
    platform: Platform,
    k: u32,
    /// Pop order of the root-schedule list scheduler (state-independent).
    order: Vec<ProcessId>,
    /// Position of each process in `order`.
    pos_of: Vec<u32>,
    /// Recovery scheme of process `p` on node `n` at `p * node_count + n`.
    schemes: Vec<SchemeSlot>,
    node_count: usize,
    // ---- per-evaluation scratch (SoA), reused across calls ----
    /// Copy completion times, flat in pop-position order.
    copy_end: Vec<Time>,
    /// Row offsets into `copy_end`.
    copy_off: Vec<u32>,
    lanes: Vec<Vec<(Time, Time)>>,
    logs: Vec<Vec<(u32, Time, Time)>>,
    makespan_after: Vec<Time>,
    path_end: Vec<Time>,
    slack: Vec<Time>,
    changed: Vec<bool>,
    /// Replica ladders of the process under the slack join (inner `Vec`s
    /// reused so the hot loop never allocates).
    ladders: Vec<ReplicaLadder>,
    /// Memoized bus-arrival time per predecessor copy of the position being
    /// scheduled (the TDMA window scan is consumer-independent, so each
    /// consumer copy after the first reads it back).
    arrival_memo: Vec<Option<Time>>,
    // ---- batch scratch ----
    /// Sorted per-node image of the base reservations before the current
    /// batch candidate's dirty position (grown incrementally, never rebuilt).
    prefix_lanes: Vec<Vec<(Time, Time)>>,
    /// Per-node cursor into the base logs backing `prefix_lanes`.
    prefix_cursor: Vec<usize>,
    /// `(dirty position, input index)` sort keys of the current batch.
    batch_order: Vec<(u32, u32)>,
    /// Per-candidate changed flags, `candidate * n + process` indexed.
    batch_changed: Vec<bool>,
    // ---- delta anchor + counters ----
    base: Option<BaseState>,
    stats: EvaluatorStats,
}

impl SystemEvaluator {
    /// Precomputes the invariant structure for one `(app, platform, k)`
    /// problem instance.
    pub fn new(app: &Application, platform: &Platform, k: u32) -> Self {
        let n = app.process_count();
        let node_count = platform.architecture().node_count();
        let order = schedule_order(app);
        let mut pos_of = vec![0u32; n];
        for (pos, &pid) in order.iter().enumerate() {
            pos_of[pid.index()] = pos as u32;
        }
        let schemes = app
            .processes()
            .flat_map(|(_, proc)| {
                (0..node_count).map(|node| {
                    proc.wcet_on(ftes_model::NodeId::new(node))
                        .map(|wcet| RecoveryScheme::for_process(proc, wcet))
                })
            })
            .collect();
        SystemEvaluator {
            app: app.clone(),
            platform: platform.clone(),
            k,
            order,
            pos_of,
            schemes,
            node_count,
            copy_end: Vec::new(),
            copy_off: Vec::with_capacity(n + 1),
            lanes: vec![Vec::new(); node_count],
            logs: vec![Vec::new(); node_count],
            makespan_after: Vec::with_capacity(n),
            path_end: vec![Time::ZERO; n],
            slack: vec![Time::ZERO; n],
            changed: vec![false; n],
            ladders: Vec::new(),
            arrival_memo: Vec::new(),
            prefix_lanes: vec![Vec::new(); node_count],
            prefix_cursor: vec![0; node_count],
            batch_order: Vec::new(),
            batch_changed: Vec::new(),
            base: None,
            stats: EvaluatorStats { constructions: 1, ..EvaluatorStats::default() },
        }
    }

    /// The application this evaluator was built for.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The platform this evaluator was built for.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The fault budget `k` this evaluator scores against.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Evaluates a candidate state from scratch (reusing all buffers) and
    /// anchors it as the base state for subsequent
    /// [`delta_evaluate`](SystemEvaluator::delta_evaluate) calls.
    ///
    /// # Errors
    ///
    /// Exactly the legacy estimator's:
    /// [`SchedError::Tdma`] when a message cannot be scheduled on the bus,
    /// [`SchedError::Ft`] for invalid policies. A failed evaluation leaves
    /// the previous base state in place.
    pub fn evaluate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Estimate, SchedError> {
        self.stats.full_evals += 1;
        ftes_obs::counter(ftes_obs::names::EVAL_FULL, 1);
        self.evaluate_inner(copies, policies)
    }

    fn evaluate_inner(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Estimate, SchedError> {
        let estimate = self.full_pass(copies, policies, true)?;
        self.anchor(copies, policies, estimate);
        Ok(estimate)
    }

    /// A full from-scratch evaluation without anchoring: the shared body of
    /// the full tier and the batch path's fallback candidates. Position
    /// logs (consumed only by [`anchor`](SystemEvaluator::anchor)) are
    /// recorded only when the caller is about to anchor.
    fn full_pass(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        record_logs: bool,
    ) -> Result<Estimate, SchedError> {
        policies.validate(self.k)?;
        self.copy_end.clear();
        self.copy_off.clear();
        self.copy_off.push(0);
        for lane in &mut self.lanes {
            lane.clear();
        }
        if record_logs {
            for log in &mut self.logs {
                log.clear();
            }
        }
        self.makespan_after.clear();
        let makespan = self.schedule_suffix(copies, policies, 0, Time::ZERO, record_logs)?;
        self.finish_estimate(copies, policies, makespan, None)
    }

    /// Re-scores a *neighbor* of the base state: only positions from the
    /// first changed process onward are re-scheduled, and only processes
    /// whose policy, placement or completion times changed re-run the
    /// adversarial slack analysis. Falls back to a full evaluation (and
    /// re-anchors) when no base exists or the dirty region reaches
    /// position 0. The base state is left untouched otherwise, so a search
    /// can score a whole neighborhood and re-anchor only on acceptance.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`](SystemEvaluator::evaluate) — bit-for-bit, the
    /// same inputs produce the same `Result` on both paths.
    pub fn delta_evaluate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Estimate, SchedError> {
        let Some(dirty_from) = self.dirty_position(copies, policies) else {
            // No base to diff against: full evaluation.
            self.stats.delta_fallbacks += 1;
            self.stats.full_evals += 1;
            ftes_obs::counter(ftes_obs::names::EVAL_FALLBACK, 1);
            return self.evaluate_inner(copies, policies);
        };
        policies.validate(self.k)?;
        let n = self.app.process_count();
        if dirty_from >= n {
            // The candidate *is* the base state.
            self.stats.delta_noops += 1;
            return Ok(self.base.as_ref().expect("dirty_position requires a base").estimate);
        }
        if dirty_from == 0 {
            // Dirty region cascades to the front: nothing to reuse.
            self.stats.delta_fallbacks += 1;
            self.stats.full_evals += 1;
            ftes_obs::counter(ftes_obs::names::EVAL_FALLBACK, 1);
            return self.evaluate_inner(copies, policies);
        }
        self.stats.delta_evals += 1;
        ftes_obs::counter(ftes_obs::names::EVAL_DELTA, 1);

        // Rebuild the (provably identical) prefix from the base state: the
        // flat pop-position-major layout makes it two memcpys.
        let base = self.base.as_ref().expect("dirty_position requires a base");
        let cut = base.copy_off[dirty_from] as usize;
        self.copy_end.clear();
        self.copy_end.extend_from_slice(&base.copy_end[..cut]);
        self.copy_off.clear();
        self.copy_off.extend_from_slice(&base.copy_off[..=dirty_from]);
        for (lane, log) in self.lanes.iter_mut().zip(&base.logs) {
            let cut = log.partition_point(|&(pos, _, _)| (pos as usize) < dirty_from);
            lane.clear();
            lane.extend(log[..cut].iter().map(|&(_, s, e)| (s, e)));
            lane.sort_unstable();
        }
        let prefix_makespan = base.makespan_after[dirty_from - 1];
        self.makespan_after.clear();
        self.makespan_after.extend_from_slice(&base.makespan_after[..dirty_from]);

        let makespan =
            self.schedule_suffix(copies, policies, dirty_from, prefix_makespan, false)?;
        self.finish_estimate(copies, policies, makespan, Some(dirty_from))
    }

    /// Scores a whole neighborhood of the base state in one pass, returning
    /// one `Result` per candidate **in input order** — each bit-for-bit
    /// equal (estimate *and* error) to what a sequential
    /// [`delta_evaluate`](SystemEvaluator::delta_evaluate) call would
    /// return for the same candidate.
    ///
    /// Candidates are processed in ascending first-dirty pop position
    /// (stable on ties), so the shared schedule prefix is materialized
    /// once, incrementally: per node, a sorted reservation image of the
    /// base prefix grows by a cursor walk over the position-tagged base
    /// logs, and every candidate forks its suffix off flat `memcpy`
    /// restores of that image. The base state is never moved — not even
    /// for candidates that fall back to a full pass — because estimates
    /// are pure functions of the candidate state, so batch results cannot
    /// depend on evaluation order or on the anchor's drift.
    ///
    /// With no base anchored yet, every candidate runs a full pass (the
    /// same fallback the sequential path takes). A failed candidate never
    /// contaminates its successors: each restore starts from the base
    /// image, not from the previous candidate's scratch.
    pub fn evaluate_batch(
        &mut self,
        candidates: &[(&CopyMapping, &PolicyAssignment)],
    ) -> Vec<Result<Estimate, SchedError>> {
        let m = candidates.len();
        let n = self.app.process_count();
        self.stats.batch_evals += 1;
        self.stats.batch_candidates += m as u64;
        ftes_obs::counter(ftes_obs::names::EVAL_BATCH, 1);
        ftes_obs::counter(ftes_obs::names::EVAL_BATCH_CANDIDATES, m as u64);

        // Pass 1: diff every candidate against the base once, recording the
        // first-dirty position (sort key) and the per-process changed flags
        // (consumed by the slack memoization when the candidate is scored).
        self.batch_order.clear();
        self.batch_changed.resize(m * n, false);
        for (idx, (copies, policies)) in candidates.iter().enumerate() {
            let dirty = match self.base.as_ref() {
                Some(base) => diff_against_base(
                    base,
                    &self.app,
                    &self.pos_of,
                    copies,
                    policies,
                    &mut self.batch_changed[idx * n..(idx + 1) * n],
                ),
                None => 0,
            };
            self.batch_order.push((dirty as u32, idx as u32));
        }
        // Ascending dirty position; ties keep input order (the index is the
        // tie-break), so the prefix image only ever grows.
        self.batch_order.sort_unstable();

        for lane in &mut self.prefix_lanes {
            lane.clear();
        }
        self.prefix_cursor.iter_mut().for_each(|c| *c = 0);

        let has_base = self.base.is_some();
        let mut out: Vec<Option<Result<Estimate, SchedError>>> = (0..m).map(|_| None).collect();
        let batch_order = std::mem::take(&mut self.batch_order);
        for &(dirty, idx) in &batch_order {
            let idx = idx as usize;
            let (copies, policies) = candidates[idx];
            out[idx] = Some(self.score_candidate(copies, policies, dirty as usize, has_base, idx));
        }
        self.batch_order = batch_order;
        out.into_iter().map(|r| r.expect("every candidate is scored exactly once")).collect()
    }

    /// Scores one batch candidate, mirroring the sequential tiers' counter
    /// and error behavior exactly (minus any anchoring).
    fn score_candidate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        dirty: usize,
        has_base: bool,
        idx: usize,
    ) -> Result<Estimate, SchedError> {
        let n = self.app.process_count();
        if !has_base {
            self.stats.delta_fallbacks += 1;
            self.stats.full_evals += 1;
            ftes_obs::counter(ftes_obs::names::EVAL_FALLBACK, 1);
            return self.full_pass(copies, policies, false);
        }
        policies.validate(self.k)?;
        if dirty >= n {
            self.stats.delta_noops += 1;
            return Ok(self.base.as_ref().expect("has_base").estimate);
        }
        if dirty == 0 {
            self.stats.delta_fallbacks += 1;
            self.stats.full_evals += 1;
            ftes_obs::counter(ftes_obs::names::EVAL_FALLBACK, 1);
            return self.full_pass(copies, policies, false);
        }
        self.stats.delta_evals += 1;
        ftes_obs::counter(ftes_obs::names::EVAL_DELTA, 1);

        {
            let (changed, batch_changed) = (&mut self.changed, &self.batch_changed);
            changed[..n].copy_from_slice(&batch_changed[idx * n..(idx + 1) * n]);
        }
        self.advance_prefix(dirty);

        // Fork the candidate's suffix off the shared prefix image: flat
        // memcpys of the base arrays, lane clones of the sorted image.
        let base = self.base.as_ref().expect("has_base");
        let cut = base.copy_off[dirty] as usize;
        self.copy_end.clear();
        self.copy_end.extend_from_slice(&base.copy_end[..cut]);
        self.copy_off.clear();
        self.copy_off.extend_from_slice(&base.copy_off[..=dirty]);
        let prefix_makespan = base.makespan_after[dirty - 1];
        self.makespan_after.clear();
        self.makespan_after.extend_from_slice(&base.makespan_after[..dirty]);
        for (lane, image) in self.lanes.iter_mut().zip(&self.prefix_lanes) {
            lane.clone_from(image);
        }

        let makespan = self.schedule_suffix(copies, policies, dirty, prefix_makespan, false)?;
        self.finish_estimate(copies, policies, makespan, Some(dirty))
    }

    /// Extends the sorted per-node prefix-lane image to cover every base
    /// reservation before pop position `depth`. Depths are non-decreasing
    /// within a batch (candidates are sorted), so each base reservation is
    /// binary-inserted exactly once per batch; the resulting sequence is
    /// identical to the sort the sequential delta path performs per call.
    fn advance_prefix(&mut self, depth: usize) {
        let Some(base) = self.base.as_ref() else { return };
        for (node, log) in base.logs.iter().enumerate() {
            let mut cursor = self.prefix_cursor[node];
            while cursor < log.len() && (log[cursor].0 as usize) < depth {
                let (_, s, e) = log[cursor];
                lane_reserve(&mut self.prefix_lanes[node], s, e);
                cursor += 1;
            }
            self.prefix_cursor[node] = cursor;
        }
    }

    /// First schedule position whose process differs (in placement or
    /// policy) from the base state; `app.process_count()` when nothing
    /// differs, `None` when there is no base.
    fn dirty_position(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Option<usize> {
        let base = self.base.as_ref()?;
        Some(diff_against_base(base, &self.app, &self.pos_of, copies, policies, &mut self.changed))
    }

    /// List-schedules positions `from..` of the fixed order onto the lane
    /// scratch, extending the flat `copy_end`/`copy_off` arrays and the
    /// per-node logs (the caller has restored them to the prefix before
    /// `from`). Returns the root-schedule makespan.
    fn schedule_suffix(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        from: usize,
        prefix_makespan: Time,
        record_logs: bool,
    ) -> Result<Time, SchedError> {
        debug_assert_eq!(self.copy_off.len(), from + 1, "caller restores the prefix");
        let bus = self.platform.bus();
        let mut makespan = prefix_makespan;
        for pos in from..self.order.len() {
            let pid = self.order[pos];
            let i = pid.index();
            let proc = self.app.process(pid);
            // The TDMA window of a predecessor copy is the same for every
            // consumer copy on a foreign node; memoize it per position.
            // Filled lazily so a candidate whose consumer copies are all
            // co-located with a predecessor never runs the window scan —
            // exactly where the sequential path would skip it (the scan can
            // fail, and errors must surface identically).
            self.arrival_memo.clear();
            for (c, &cpu) in copies.copies_of(pid).iter().enumerate() {
                let plan = policies.policy(pid).copies()[c];
                let scheme = scheme_at(&self.schemes, self.node_count, i, cpu.index())?;
                let duration = scheme.fault_free_time(plan.checkpoints);
                // Ready when every predecessor has delivered to this CPU.
                let mut est = proc.release();
                let mut memo_at = 0;
                for &(pred, mid) in self.app.predecessors(pid) {
                    let trans = self.app.message(mid).transmission();
                    // Predecessors pop earlier, so their row is present.
                    let poff = self.copy_off[self.pos_of[pred.index()] as usize] as usize;
                    let mut arrival = Time::MAX;
                    for (pc, &pcpu) in copies.copies_of(pred).iter().enumerate() {
                        if memo_at + pc >= self.arrival_memo.len() {
                            self.arrival_memo.push(None);
                        }
                        let end = self.copy_end[poff + pc];
                        let a = if pcpu == cpu {
                            end
                        } else if let Some(t) = self.arrival_memo[memo_at + pc] {
                            t
                        } else {
                            // Uncontended TDMA window (cheap bound).
                            let t = bus.next_window(pcpu, end, trans)?.end;
                            self.arrival_memo[memo_at + pc] = Some(t);
                            t
                        };
                        arrival = arrival.min(a);
                    }
                    memo_at += copies.copies_of(pred).len();
                    est = est.max(arrival);
                }
                let lane = &mut self.lanes[cpu.index()];
                let s = lane_earliest_fit(lane, est, duration);
                lane_reserve(lane, s, s + duration);
                if record_logs {
                    self.logs[cpu.index()].push((pos as u32, s, s + duration));
                }
                self.copy_end.push(s + duration);
                makespan = makespan.max(s + duration);
            }
            self.copy_off.push(self.copy_end.len() as u32);
            self.makespan_after.push(makespan);
        }
        Ok(makespan)
    }

    /// Phases 2 + 3: downstream-finish structure and recovery slack. With
    /// `reuse_from = Some(dirty)`, slack values of processes untouched by
    /// the current delta (same policy, placement and completion times as
    /// the base) are reused instead of re-running the adversarial join.
    fn finish_estimate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        makespan: Time,
        reuse_from: Option<usize>,
    ) -> Result<Estimate, SchedError> {
        // Downstream finish per process: completion of its latest transitive
        // successor in the root schedule (itself, for sinks).
        for &pid in self.app.topological_order().iter().rev() {
            let own = row(&self.copy_end, &self.copy_off, self.pos_of[pid.index()] as usize)
                .iter()
                .copied()
                .min()
                .expect("every process has at least one copy");
            let down = self
                .app
                .successors(pid)
                .iter()
                .map(|&(s, _)| self.path_end[s.index()])
                .max()
                .unwrap_or(Time::ZERO);
            self.path_end[pid.index()] = own.max(down);
        }

        // Recovery slack: worst extra delay when all k faults hit one
        // process, delaying everything downstream of it.
        let mut worst_case = makespan;
        let mut critical = ProcessId::new(0);
        for (pid, _) in self.app.processes() {
            let i = pid.index();
            let pos = self.pos_of[i] as usize;
            // Prefix rows are memcpy'd from the base, so equality is
            // structural there; suffix rows must be compared.
            let reusable = reuse_from.is_some_and(|d| pos < d)
                || (reuse_from.is_some()
                    && !self.changed[i]
                    && self.base.as_ref().is_some_and(|b| {
                        row(&b.copy_end, &b.copy_off, pos)
                            == row(&self.copy_end, &self.copy_off, pos)
                    }));
            let slack = if reusable {
                self.base.as_ref().expect("reusable implies base").slack[i]
            } else {
                let policy = policies.policy(pid);
                let count = policy.copies().len();
                while self.ladders.len() < count {
                    self.ladders.push(ReplicaLadder { ladder: Vec::new(), killable: false });
                }
                for (slot, ((plan, &cpu), &end)) in policy
                    .copies()
                    .iter()
                    .zip(copies.copies_of(pid))
                    .zip(row(&self.copy_end, &self.copy_off, pos))
                    .enumerate()
                {
                    let scheme = scheme_at(&self.schemes, self.node_count, i, cpu.index())?;
                    fill_ladder(scheme, *plan, end, self.k, &mut self.ladders[slot]);
                }
                let ladders = &self.ladders[..count];
                let no_fault = ladders
                    .iter()
                    .map(|l| l.ladder[0])
                    .min()
                    .expect("policies have at least one copy");
                let delivery = worst_case_delivery(ladders, self.k).ok_or(SchedError::Ft(
                    FtError::InsufficientPolicy { k: self.k, tolerated: 0 },
                ))?;
                delivery - no_fault
            };
            self.slack[i] = slack;
            let finish = self.path_end[i] + slack;
            if finish > worst_case {
                worst_case = finish;
                critical = pid;
            }
        }

        Ok(Estimate {
            fault_free_length: makespan,
            worst_case_length: worst_case,
            critical_process: critical,
        })
    }

    /// Stores the just-evaluated state as the delta anchor, reusing the
    /// previous anchor's allocations.
    fn anchor(&mut self, copies: &CopyMapping, policies: &PolicyAssignment, estimate: Estimate) {
        match &mut self.base {
            Some(base) => {
                base.copies.clone_from(copies);
                base.policies.clone_from(policies);
                base.copy_end.clone_from(&self.copy_end);
                base.copy_off.clone_from(&self.copy_off);
                base.logs.clone_from(&self.logs);
                base.makespan_after.clone_from(&self.makespan_after);
                base.slack.clone_from(&self.slack);
                base.estimate = estimate;
            }
            None => {
                self.base = Some(BaseState {
                    copies: copies.clone(),
                    policies: policies.clone(),
                    copy_end: self.copy_end.clone(),
                    copy_off: self.copy_off.clone(),
                    logs: self.logs.clone(),
                    makespan_after: self.makespan_after.clone(),
                    slack: self.slack.clone(),
                    estimate,
                });
            }
        }
    }
}

/// Position `pos`'s completion-time row of a flat pop-position-major array.
#[inline]
fn row<'a>(copy_end: &'a [Time], copy_off: &[u32], pos: usize) -> &'a [Time] {
    &copy_end[copy_off[pos] as usize..copy_off[pos + 1] as usize]
}

/// Diffs a candidate against the base, filling per-process changed flags
/// and returning the first dirty pop position (`process_count` when the
/// candidate equals the base).
fn diff_against_base(
    base: &BaseState,
    app: &Application,
    pos_of: &[u32],
    copies: &CopyMapping,
    policies: &PolicyAssignment,
    changed: &mut [bool],
) -> usize {
    let mut dirty = app.process_count();
    for (pid, _) in app.processes() {
        let differs = copies.copies_of(pid) != base.copies.copies_of(pid)
            || policies.policy(pid) != base.policies.policy(pid);
        changed[pid.index()] = differs;
        if differs {
            dirty = dirty.min(pos_of[pid.index()] as usize);
        }
    }
    dirty
}

/// Looks up the precomputed recovery scheme of process `p` on node `node`
/// in the flat stride-`node_count` slice, reproducing the legacy
/// error/panic behavior exactly.
fn scheme_at(
    schemes: &[SchemeSlot],
    node_count: usize,
    p: usize,
    node: usize,
) -> Result<RecoveryScheme, SchedError> {
    match &schemes[p * node_count + node] {
        Some(Ok(scheme)) => Ok(*scheme),
        Some(Err(e)) => Err(SchedError::Ft(e.clone())),
        None => panic!("copy mapping is validated"),
    }
}

/// Earliest start `t ≥ ready` fitting `duration` into a lane of disjoint,
/// start-sorted reservations. A single pass reaches the fixed point the
/// generic guard-aware [`ResourceTable`](crate::ResourceTable) loop
/// computes, because the estimator only ever reserves with the
/// always-guard: once `t` is pushed past reservation `i`, every earlier
/// reservation ends at or before `i`'s start and can never overlap again.
fn lane_earliest_fit(lane: &[(Time, Time)], ready: Time, duration: Time) -> Time {
    if duration <= Time::ZERO {
        return ready;
    }
    let mut t = ready;
    // Reservations never overlap (positive durations, earliest-fit
    // placement), so the start-sorted lane is end-sorted too and every
    // entry ending at or before `ready` can be skipped in one jump.
    let from = lane.partition_point(|&(_, end)| end <= t);
    for &(start, end) in &lane[from..] {
        if start >= t + duration {
            break;
        }
        if end <= t {
            continue;
        }
        t = end;
    }
    t
}

/// Inserts a reservation keeping the lane sorted by start.
fn lane_reserve(lane: &mut Vec<(Time, Time)>, start: Time, end: Time) {
    let pos = lane.partition_point(|&r| r <= (start, end));
    lane.insert(pos, (start, end));
}

/// The completion ladder of one copy given its fault-free completion time,
/// written into a reusable slot (the slack join runs once per process per
/// candidate — allocating here would dominate the batch path).
pub(crate) fn fill_ladder(
    scheme: RecoveryScheme,
    plan: CopyPlan,
    fault_free_end: Time,
    k: u32,
    out: &mut ReplicaLadder,
) {
    let base = scheme.fault_free_time(plan.checkpoints);
    let max_faults = plan.recoveries.min(k);
    out.ladder.clear();
    out.ladder.reserve(max_faults as usize + 1);
    for f in 0..=max_faults {
        let w = scheme.worst_case_time(plan.checkpoints, f);
        out.ladder.push(fault_free_end + (w - base));
    }
    // The copy dies if faults can exceed its recoveries within the budget.
    out.killable = plan.recoveries < k;
}

/// Longest path (minimum-WCET durations plus transmissions) from each
/// process to any sink.
pub(crate) fn app_ranks(app: &Application) -> Vec<Time> {
    let n = app.process_count();
    let mut rank = vec![Time::ZERO; n];
    for &pid in app.topological_order().iter().rev() {
        let proc = app.process(pid);
        let dur =
            proc.candidate_nodes().filter_map(|c| proc.wcet_on(c)).min().unwrap_or(Time::ZERO);
        let down = app
            .successors(pid)
            .iter()
            .map(|&(s, m)| rank[s.index()] + app.message(m).transmission())
            .max()
            .unwrap_or(Time::ZERO);
        rank[pid.index()] = dur + down;
    }
    rank
}

/// The exact pop order of the root-schedule list scheduler: a priority
/// topological sort by `(downward rank, lowest index)` — a pure function of
/// the application, independent of any candidate state, which is what makes
/// prefix reuse in `delta_evaluate` and `evaluate_batch` sound.
fn schedule_order(app: &Application) -> Vec<ProcessId> {
    let n = app.process_count();
    let rank = app_ranks(app);
    let mut indegree: Vec<usize> =
        (0..n).map(|i| app.predecessors(ProcessId::new(i)).len()).collect();
    let mut ready: BinaryHeap<(Time, Reverse<usize>)> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| (rank[i], Reverse(i)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some((_, Reverse(i))) = ready.pop() {
        let pid = ProcessId::new(i);
        order.push(pid);
        for &(succ, _) in app.successors(pid) {
            indegree[succ.index()] -= 1;
            if indegree[succ.index()] == 0 {
                ready.push((rank[succ.index()], Reverse(succ.index())));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "validated applications are acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_schedule_length;
    use ftes_ft::Policy;
    use ftes_model::{samples, Mapping};

    fn fig3_instance(k: u32) -> (Application, Platform, Mapping, PolicyAssignment) {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        (app, platform, mapping, policies)
    }

    #[test]
    fn evaluate_matches_legacy_bit_for_bit() {
        for k in 0..=3 {
            let (app, platform, mapping, policies) = fig3_instance(k);
            let copies =
                CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
            let mut ev = SystemEvaluator::new(&app, &platform, k);
            let fast = ev.evaluate(&copies, &policies).unwrap();
            let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, k).unwrap();
            assert_eq!(fast, legacy, "k={k}");
            // A reused evaluator stays equal.
            assert_eq!(ev.evaluate(&copies, &policies).unwrap(), legacy);
        }
    }

    #[test]
    fn delta_after_repolicy_matches_full() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let arch = platform.architecture().clone();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        ev.evaluate(&copies, &policies).unwrap();

        for p in 0..app.process_count() {
            let mut moved = policies.clone();
            moved.set(ProcessId::new(p), Policy::checkpointing(2, 2));
            let moved_copies = CopyMapping::from_base(&app, &arch, &mapping, &moved).unwrap();
            let delta = ev.delta_evaluate(&moved_copies, &moved).unwrap();
            let legacy =
                estimate_schedule_length(&app, &platform, &moved_copies, &moved, 2).unwrap();
            assert_eq!(delta, legacy, "repolicy of P{p}");
        }
        let stats = ev.stats();
        assert!(stats.delta_evals + stats.delta_fallbacks > 0);
    }

    #[test]
    fn delta_after_remap_matches_full() {
        let (app, platform, mapping, policies) = fig3_instance(1);
        let arch = platform.architecture().clone();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 1);
        ev.evaluate(&copies, &policies).unwrap();

        for (pid, proc) in app.processes() {
            if proc.fixed_node().is_some() {
                continue;
            }
            for node in proc.candidate_nodes() {
                if node == mapping.node_of(pid) {
                    continue;
                }
                let Ok(moved) = mapping.with_move(&app, &arch, pid, node) else { continue };
                let moved_copies = CopyMapping::from_base(&app, &arch, &moved, &policies).unwrap();
                let delta = ev.delta_evaluate(&moved_copies, &policies).unwrap();
                let legacy =
                    estimate_schedule_length(&app, &platform, &moved_copies, &policies, 1).unwrap();
                assert_eq!(delta, legacy, "remap of {pid:?} to {node:?}");
            }
        }
    }

    #[test]
    fn delta_on_identical_state_is_a_noop() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        let full = ev.evaluate(&copies, &policies).unwrap();
        assert_eq!(ev.delta_evaluate(&copies, &policies).unwrap(), full);
        assert_eq!(ev.stats().delta_noops, 1);
    }

    #[test]
    fn delta_without_base_falls_back_to_full() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        let delta = ev.delta_evaluate(&copies, &policies).unwrap();
        let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 2).unwrap();
        assert_eq!(delta, legacy);
        assert_eq!(ev.stats().delta_fallbacks, 1);
    }

    #[test]
    fn invalid_policies_error_on_both_paths() {
        let (app, platform, mapping, _) = fig3_instance(2);
        // k = 2 budget but a policy that tolerates nothing.
        let policies = PolicyAssignment::uniform_reexecution(&app, 0);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        let fast = ev.evaluate(&copies, &policies);
        let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 2);
        assert_eq!(fast.is_err(), legacy.is_err());
        assert!(fast.is_err());
    }

    #[test]
    fn lane_matches_resource_table_semantics() {
        use crate::ResourceTable;
        use ftes_ftcpg::Guard;
        // Randomized-ish interleavings: the lane and the generic table must
        // agree on every placement when all guards are `always`.
        let requests =
            [(0i64, 5i64), (3, 4), (10, 2), (1, 1), (8, 3), (0, 7), (20, 1), (2, 6), (15, 5)];
        let mut lane: Vec<(Time, Time)> = Vec::new();
        let mut table = ResourceTable::new();
        for &(ready, dur) in &requests {
            let (ready, dur) = (Time::new(ready), Time::new(dur));
            let a = lane_earliest_fit(&lane, ready, dur);
            let b = table.earliest_fit(ready, dur, &Guard::always());
            assert_eq!(a, b);
            lane_reserve(&mut lane, a, a + dur);
            table.reserve(b, b + dur, Guard::always());
        }
    }

    #[test]
    fn stats_count_reuse() {
        let (app, platform, mapping, policies) = fig3_instance(1);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 1);
        for _ in 0..3 {
            ev.evaluate(&copies, &policies).unwrap();
        }
        ev.delta_evaluate(&copies, &policies).unwrap();
        let stats = ev.stats();
        assert_eq!(stats.constructions, 1);
        assert_eq!(stats.full_evals, 3);
        assert_eq!(stats.delta_noops, 1);
        assert_eq!(stats.evaluations(), 4);
        assert_eq!(stats.reused(), 3);
        let merged = stats.merged(stats);
        assert_eq!(merged.evaluations(), 8);
    }

    #[test]
    fn batch_matches_sequential_delta_in_input_order() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let arch = platform.architecture().clone();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();

        // A mixed neighborhood: repolicies, the base itself (noop), and an
        // invalid policy (validate error) — in deliberately shuffled order.
        let mut neighborhood: Vec<(CopyMapping, PolicyAssignment)> = Vec::new();
        for p in (0..app.process_count()).rev() {
            let mut moved = policies.clone();
            moved.set(ProcessId::new(p), Policy::checkpointing(2, 2));
            let moved_copies = CopyMapping::from_base(&app, &arch, &mapping, &moved).unwrap();
            neighborhood.push((moved_copies, moved));
        }
        neighborhood.insert(1, (copies.clone(), policies.clone()));
        let bad = PolicyAssignment::uniform_reexecution(&app, 0);
        let bad_copies = CopyMapping::from_base(&app, &arch, &mapping, &bad).unwrap();
        neighborhood.insert(3, (bad_copies, bad));

        let mut batch_ev = SystemEvaluator::new(&app, &platform, 2);
        batch_ev.evaluate(&copies, &policies).unwrap();
        let refs: Vec<(&CopyMapping, &PolicyAssignment)> =
            neighborhood.iter().map(|(c, p)| (c, p)).collect();
        let batch = batch_ev.evaluate_batch(&refs);

        let mut seq_ev = SystemEvaluator::new(&app, &platform, 2);
        seq_ev.evaluate(&copies, &policies).unwrap();
        for (i, (c, p)) in neighborhood.iter().enumerate() {
            assert_eq!(batch[i], seq_ev.delta_evaluate(c, p), "candidate {i}");
        }

        let stats = batch_ev.stats();
        assert_eq!(stats.batch_evals, 1);
        assert_eq!(stats.batch_candidates, neighborhood.len() as u64);
        assert_eq!(stats.delta_noops, 1, "the base candidate answers from the anchor");
        // The batch never moves the base: a noop still answers instantly.
        assert_eq!(batch_ev.delta_evaluate(&copies, &policies).unwrap(), batch[1].clone().unwrap());
    }

    #[test]
    fn batch_without_base_runs_full_passes() {
        let (app, platform, mapping, policies) = fig3_instance(1);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 1);
        let batch = ev.evaluate_batch(&[(&copies, &policies), (&copies, &policies)]);
        let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 1).unwrap();
        assert_eq!(batch[0].as_ref().unwrap(), &legacy);
        assert_eq!(batch[1].as_ref().unwrap(), &legacy);
        assert_eq!(ev.stats().delta_fallbacks, 2, "no base: every candidate is a fallback");
        assert_eq!(ev.stats().evaluations(), 2);
    }

    #[test]
    fn empty_batch_is_a_cheap_noop() {
        let (app, platform, _, _) = fig3_instance(1);
        let mut ev = SystemEvaluator::new(&app, &platform, 1);
        assert!(ev.evaluate_batch(&[]).is_empty());
        assert_eq!(ev.stats().batch_evals, 1);
        assert_eq!(ev.stats().evaluations(), 0);
    }
}
