//! The incremental evaluation kernel: a reusable [`SystemEvaluator`] that
//! amortizes everything invariant per `(Application, Platform, k)` across
//! the thousands of candidate evaluations a synthesis run performs.
//!
//! [`estimate_schedule_length`](crate::estimate_schedule_length) re-derives
//! the list-scheduling order, recovery schemes, resource tables and
//! transitive-successor structure from scratch on every call — fine for a
//! one-shot estimate, wasteful inside the optimization loops where only the
//! candidate `(mapping, policies)` state changes between calls. The kernel
//! splits the work:
//!
//! * **Construction** precomputes the invariants: the exact pop order of
//!   the root-schedule list scheduler (a pure function of the DAG and the
//!   downward ranks, both state-independent), one [`RecoveryScheme`] per
//!   feasible `(process, node)` pair, and reusable per-processor lane and
//!   per-process completion buffers.
//! * **[`evaluate`](SystemEvaluator::evaluate)** re-scores a candidate
//!   state against those buffers with zero steady-state allocation, and
//!   anchors the evaluator's *base state* for delta re-estimation.
//! * **[`delta_evaluate`](SystemEvaluator::delta_evaluate)** re-scores a
//!   neighbor of the base state by diffing copy placements and policies:
//!   the root-schedule prefix before the first dirty process is provably
//!   identical (the pop order is fixed and every reservation at position
//!   `< p` derives from positions `< p` only), so only the suffix is
//!   re-scheduled and only processes whose inputs changed re-run the
//!   adversarial slack analysis. When the dirty region reaches position 0
//!   the call degrades to a full evaluation — never to a wrong one.
//!
//! Equality with the legacy free function is bit-for-bit — including which
//! process is reported critical and which error is reported for infeasible
//! states — and is locked in by `tests/evaluator_equality.rs` at the
//! workspace root.

use crate::{worst_case_delivery, Estimate, ReplicaLadder, SchedError};
use ftes_ft::{CopyPlan, FtError, PolicyAssignment, RecoveryScheme};
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, ProcessId, Time};
use ftes_tdma::Platform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work counters of one [`SystemEvaluator`] (mergeable across a pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvaluatorStats {
    /// Evaluator constructions (1 per [`SystemEvaluator::new`]).
    pub constructions: u64,
    /// Full evaluations (including delta fallbacks).
    pub full_evals: u64,
    /// Delta evaluations that re-scheduled only a suffix.
    pub delta_evals: u64,
    /// Delta calls whose state equalled the base (answered from the anchor).
    pub delta_noops: u64,
    /// Delta calls that fell back to a full evaluation (no base yet, or the
    /// dirty region reached position 0).
    pub delta_fallbacks: u64,
}

impl EvaluatorStats {
    /// Total candidate evaluations answered.
    pub fn evaluations(&self) -> u64 {
        self.full_evals + self.delta_evals + self.delta_noops
    }

    /// Evaluations served by a *reused* evaluator (beyond one construction
    /// each) — the counter the `ftes explore` summary reports.
    pub fn reused(&self) -> u64 {
        self.evaluations().saturating_sub(self.constructions)
    }

    /// Sums two snapshots (pool/suite aggregation).
    pub fn merged(self, other: EvaluatorStats) -> EvaluatorStats {
        EvaluatorStats {
            constructions: self.constructions + other.constructions,
            full_evals: self.full_evals + other.full_evals,
            delta_evals: self.delta_evals + other.delta_evals,
            delta_noops: self.delta_noops + other.delta_noops,
            delta_fallbacks: self.delta_fallbacks + other.delta_fallbacks,
        }
    }
}

/// Per-`(process, node)` recovery scheme, precomputed at construction.
///
/// `None` = the process has no WCET on that node (a validated copy mapping
/// never asks for it); `Some(Err)` = the scheme itself is invalid there and
/// evaluation must surface the same [`FtError`] the legacy path would.
type SchemeSlot = Option<Result<RecoveryScheme, FtError>>;

/// The anchor state `delta_evaluate` diffs against.
struct BaseState {
    copies: CopyMapping,
    policies: PolicyAssignment,
    /// Completion time of every copy in the base root schedule.
    copy_end: Vec<Vec<Time>>,
    /// Per node: reservations in insertion (= schedule) order, tagged with
    /// the position of the reserving process so prefixes can be truncated.
    logs: Vec<Vec<(u32, Time, Time)>>,
    /// Root-schedule makespan after each position.
    makespan_after: Vec<Time>,
    /// Recovery slack `delivery − no_fault` per process.
    slack: Vec<Time>,
    estimate: Estimate,
}

/// Reusable evaluation kernel for one `(Application, Platform, k)` problem
/// instance.
///
/// The evaluator owns clones of the application and platform so it can
/// outlive the caller's borrows (the `ftes-serve` evaluator bank keeps warm
/// evaluators across requests). All scratch buffers are reused between
/// calls; steady-state evaluation allocates nothing.
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::CopyMapping;
/// use ftes_model::{samples, Mapping, Time};
/// use ftes_sched::{estimate_schedule_length, SystemEvaluator};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig3();
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let platform = Platform::homogeneous(2, Time::new(8))?;
///
/// let mut evaluator = SystemEvaluator::new(&app, &platform, 2);
/// let fast = evaluator.evaluate(&copies, &policies)?;
/// let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 2)?;
/// assert_eq!(fast, legacy);
/// # Ok(())
/// # }
/// ```
pub struct SystemEvaluator {
    app: Application,
    platform: Platform,
    k: u32,
    /// Pop order of the root-schedule list scheduler (state-independent).
    order: Vec<ProcessId>,
    /// Position of each process in `order`.
    pos_of: Vec<u32>,
    /// `schemes[p][n]`: recovery scheme of process `p` on node `n`.
    schemes: Vec<Vec<SchemeSlot>>,
    // ---- per-evaluation scratch, reused across calls ----
    copy_end: Vec<Vec<Time>>,
    lanes: Vec<Vec<(Time, Time)>>,
    logs: Vec<Vec<(u32, Time, Time)>>,
    makespan_after: Vec<Time>,
    path_end: Vec<Time>,
    slack: Vec<Time>,
    changed: Vec<bool>,
    // ---- delta anchor + counters ----
    base: Option<BaseState>,
    stats: EvaluatorStats,
}

impl SystemEvaluator {
    /// Precomputes the invariant structure for one `(app, platform, k)`
    /// problem instance.
    pub fn new(app: &Application, platform: &Platform, k: u32) -> Self {
        let n = app.process_count();
        let node_count = platform.architecture().node_count();
        let order = schedule_order(app);
        let mut pos_of = vec![0u32; n];
        for (pos, &pid) in order.iter().enumerate() {
            pos_of[pid.index()] = pos as u32;
        }
        let schemes = app
            .processes()
            .map(|(_, proc)| {
                (0..node_count)
                    .map(|node| {
                        proc.wcet_on(ftes_model::NodeId::new(node))
                            .map(|wcet| RecoveryScheme::for_process(proc, wcet))
                    })
                    .collect()
            })
            .collect();
        SystemEvaluator {
            app: app.clone(),
            platform: platform.clone(),
            k,
            order,
            pos_of,
            schemes,
            copy_end: vec![Vec::new(); n],
            lanes: vec![Vec::new(); node_count],
            logs: vec![Vec::new(); node_count],
            makespan_after: Vec::with_capacity(n),
            path_end: vec![Time::ZERO; n],
            slack: vec![Time::ZERO; n],
            changed: vec![false; n],
            base: None,
            stats: EvaluatorStats { constructions: 1, ..EvaluatorStats::default() },
        }
    }

    /// The application this evaluator was built for.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The platform this evaluator was built for.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The fault budget `k` this evaluator scores against.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Evaluates a candidate state from scratch (reusing all buffers) and
    /// anchors it as the base state for subsequent
    /// [`delta_evaluate`](SystemEvaluator::delta_evaluate) calls.
    ///
    /// # Errors
    ///
    /// Exactly the legacy estimator's:
    /// [`SchedError::Tdma`] when a message cannot be scheduled on the bus,
    /// [`SchedError::Ft`] for invalid policies. A failed evaluation leaves
    /// the previous base state in place.
    pub fn evaluate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Estimate, SchedError> {
        self.stats.full_evals += 1;
        ftes_obs::counter(ftes_obs::names::EVAL_FULL, 1);
        self.evaluate_inner(copies, policies)
    }

    fn evaluate_inner(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Estimate, SchedError> {
        policies.validate(self.k)?;
        for row in &mut self.copy_end {
            row.clear();
        }
        for lane in &mut self.lanes {
            lane.clear();
        }
        for log in &mut self.logs {
            log.clear();
        }
        self.makespan_after.clear();
        let makespan = self.schedule_suffix(copies, policies, 0, Time::ZERO)?;
        let estimate = self.finish_estimate(copies, policies, makespan, None)?;
        self.anchor(copies, policies, estimate);
        Ok(estimate)
    }

    /// Re-scores a *neighbor* of the base state: only positions from the
    /// first changed process onward are re-scheduled, and only processes
    /// whose policy, placement or completion times changed re-run the
    /// adversarial slack analysis. Falls back to a full evaluation (and
    /// re-anchors) when no base exists or the dirty region reaches
    /// position 0. The base state is left untouched otherwise, so a search
    /// can score a whole neighborhood and re-anchor only on acceptance.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`](SystemEvaluator::evaluate) — bit-for-bit, the
    /// same inputs produce the same `Result` on both paths.
    pub fn delta_evaluate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Result<Estimate, SchedError> {
        let Some(dirty_from) = self.dirty_position(copies, policies) else {
            // No base to diff against: full evaluation.
            self.stats.delta_fallbacks += 1;
            self.stats.full_evals += 1;
            ftes_obs::counter(ftes_obs::names::EVAL_FALLBACK, 1);
            return self.evaluate_inner(copies, policies);
        };
        policies.validate(self.k)?;
        let n = self.app.process_count();
        if dirty_from >= n {
            // The candidate *is* the base state.
            self.stats.delta_noops += 1;
            return Ok(self.base.as_ref().expect("dirty_position requires a base").estimate);
        }
        if dirty_from == 0 {
            // Dirty region cascades to the front: nothing to reuse.
            self.stats.delta_fallbacks += 1;
            self.stats.full_evals += 1;
            ftes_obs::counter(ftes_obs::names::EVAL_FALLBACK, 1);
            return self.evaluate_inner(copies, policies);
        }
        self.stats.delta_evals += 1;
        ftes_obs::counter(ftes_obs::names::EVAL_DELTA, 1);

        // Rebuild the (provably identical) prefix from the base state.
        let base = self.base.as_ref().expect("dirty_position requires a base");
        for &pid in &self.order[..dirty_from] {
            self.copy_end[pid.index()].clone_from(&base.copy_end[pid.index()]);
        }
        for (lane, log) in self.lanes.iter_mut().zip(&base.logs) {
            let cut = log.partition_point(|&(pos, _, _)| (pos as usize) < dirty_from);
            lane.clear();
            lane.extend(log[..cut].iter().map(|&(_, s, e)| (s, e)));
            lane.sort_unstable();
        }
        let prefix_makespan = base.makespan_after[dirty_from - 1];
        self.makespan_after.clear();
        self.makespan_after.extend_from_slice(&base.makespan_after[..dirty_from]);
        for log in &mut self.logs {
            log.clear();
        }

        let makespan = self.schedule_suffix(copies, policies, dirty_from, prefix_makespan)?;
        self.finish_estimate(copies, policies, makespan, Some(dirty_from))
    }

    /// First schedule position whose process differs (in placement or
    /// policy) from the base state; `app.process_count()` when nothing
    /// differs, `None` when there is no base.
    fn dirty_position(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
    ) -> Option<usize> {
        let base = self.base.as_ref()?;
        let mut dirty = self.app.process_count();
        for (pid, _) in self.app.processes() {
            let changed = copies.copies_of(pid) != base.copies.copies_of(pid)
                || policies.policy(pid) != base.policies.policy(pid);
            self.changed[pid.index()] = changed;
            if changed {
                dirty = dirty.min(self.pos_of[pid.index()] as usize);
            }
        }
        Some(dirty)
    }

    /// List-schedules positions `from..` of the fixed order onto the lane
    /// scratch, extending `copy_end` and the per-node logs. Returns the
    /// root-schedule makespan.
    fn schedule_suffix(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        from: usize,
        prefix_makespan: Time,
    ) -> Result<Time, SchedError> {
        let bus = self.platform.bus();
        let mut makespan = prefix_makespan;
        for pos in from..self.order.len() {
            let pid = self.order[pos];
            let i = pid.index();
            let proc = self.app.process(pid);
            self.copy_end[i].clear();
            for (c, &cpu) in copies.copies_of(pid).iter().enumerate() {
                let plan = policies.policy(pid).copies()[c];
                let scheme = scheme_at(&self.schemes, i, cpu.index())?;
                let duration = scheme.fault_free_time(plan.checkpoints);
                // Ready when every predecessor has delivered to this CPU.
                let mut est = proc.release();
                for &(pred, mid) in self.app.predecessors(pid) {
                    let trans = self.app.message(mid).transmission();
                    let mut arrival = Time::MAX;
                    for (pc, &pcpu) in copies.copies_of(pred).iter().enumerate() {
                        let end = self.copy_end[pred.index()][pc];
                        let a = if pcpu == cpu {
                            end
                        } else {
                            // Uncontended TDMA window (cheap bound).
                            bus.next_window(pcpu, end, trans)?.end
                        };
                        arrival = arrival.min(a);
                    }
                    est = est.max(arrival);
                }
                let lane = &mut self.lanes[cpu.index()];
                let s = lane_earliest_fit(lane, est, duration);
                lane_reserve(lane, s, s + duration);
                self.logs[cpu.index()].push((pos as u32, s, s + duration));
                self.copy_end[i].push(s + duration);
                makespan = makespan.max(s + duration);
            }
            self.makespan_after.push(makespan);
        }
        Ok(makespan)
    }

    /// Phases 2 + 3: downstream-finish structure and recovery slack. With
    /// `reuse_from = Some(dirty)`, slack values of processes untouched by
    /// the current delta (same policy, placement and completion times as
    /// the base) are reused instead of re-running the adversarial join.
    fn finish_estimate(
        &mut self,
        copies: &CopyMapping,
        policies: &PolicyAssignment,
        makespan: Time,
        reuse_from: Option<usize>,
    ) -> Result<Estimate, SchedError> {
        // Downstream finish per process: completion of its latest transitive
        // successor in the root schedule (itself, for sinks).
        for &pid in self.app.topological_order().iter().rev() {
            let own = self.copy_end[pid.index()]
                .iter()
                .copied()
                .min()
                .expect("every process has at least one copy");
            let down = self
                .app
                .successors(pid)
                .iter()
                .map(|&(s, _)| self.path_end[s.index()])
                .max()
                .unwrap_or(Time::ZERO);
            self.path_end[pid.index()] = own.max(down);
        }

        // Recovery slack: worst extra delay when all k faults hit one
        // process, delaying everything downstream of it.
        let mut worst_case = makespan;
        let mut critical = ProcessId::new(0);
        for (pid, _) in self.app.processes() {
            let i = pid.index();
            let reusable = reuse_from.is_some()
                && !self.changed[i]
                && self.base.as_ref().is_some_and(|b| b.copy_end[i] == self.copy_end[i]);
            let slack = if reusable {
                self.base.as_ref().expect("reusable implies base").slack[i]
            } else {
                let policy = policies.policy(pid);
                let mut ladders = Vec::with_capacity(policy.copies().len());
                for ((plan, &cpu), &end) in
                    policy.copies().iter().zip(copies.copies_of(pid)).zip(&self.copy_end[i])
                {
                    let scheme = scheme_at(&self.schemes, i, cpu.index())?;
                    ladders.push(ladder_for(scheme, *plan, end, self.k));
                }
                let no_fault = ladders
                    .iter()
                    .map(|l| l.ladder[0])
                    .min()
                    .expect("policies have at least one copy");
                let delivery = worst_case_delivery(&ladders, self.k).ok_or(SchedError::Ft(
                    FtError::InsufficientPolicy { k: self.k, tolerated: 0 },
                ))?;
                delivery - no_fault
            };
            self.slack[i] = slack;
            let finish = self.path_end[i] + slack;
            if finish > worst_case {
                worst_case = finish;
                critical = pid;
            }
        }

        Ok(Estimate {
            fault_free_length: makespan,
            worst_case_length: worst_case,
            critical_process: critical,
        })
    }

    /// Stores the just-evaluated state as the delta anchor, reusing the
    /// previous anchor's allocations.
    fn anchor(&mut self, copies: &CopyMapping, policies: &PolicyAssignment, estimate: Estimate) {
        match &mut self.base {
            Some(base) => {
                base.copies.clone_from(copies);
                base.policies.clone_from(policies);
                base.copy_end.clone_from(&self.copy_end);
                base.logs.clone_from(&self.logs);
                base.makespan_after.clone_from(&self.makespan_after);
                base.slack.clone_from(&self.slack);
                base.estimate = estimate;
            }
            None => {
                self.base = Some(BaseState {
                    copies: copies.clone(),
                    policies: policies.clone(),
                    copy_end: self.copy_end.clone(),
                    logs: self.logs.clone(),
                    makespan_after: self.makespan_after.clone(),
                    slack: self.slack.clone(),
                    estimate,
                });
            }
        }
    }
}

/// Looks up the precomputed recovery scheme of process `p` on node `node`,
/// reproducing the legacy error/panic behavior exactly.
fn scheme_at(
    schemes: &[Vec<SchemeSlot>],
    p: usize,
    node: usize,
) -> Result<RecoveryScheme, SchedError> {
    match &schemes[p][node] {
        Some(Ok(scheme)) => Ok(*scheme),
        Some(Err(e)) => Err(SchedError::Ft(e.clone())),
        None => panic!("copy mapping is validated"),
    }
}

/// Earliest start `t ≥ ready` fitting `duration` into a lane of disjoint,
/// start-sorted reservations. A single pass reaches the fixed point the
/// generic guard-aware [`ResourceTable`](crate::ResourceTable) loop
/// computes, because the estimator only ever reserves with the
/// always-guard: once `t` is pushed past reservation `i`, every earlier
/// reservation ends at or before `i`'s start and can never overlap again.
fn lane_earliest_fit(lane: &[(Time, Time)], ready: Time, duration: Time) -> Time {
    if duration <= Time::ZERO {
        return ready;
    }
    let mut t = ready;
    for &(start, end) in lane {
        if start >= t + duration {
            break;
        }
        if end <= t {
            continue;
        }
        t = end;
    }
    t
}

/// Inserts a reservation keeping the lane sorted by start.
fn lane_reserve(lane: &mut Vec<(Time, Time)>, start: Time, end: Time) {
    let pos = lane.partition_point(|&r| r <= (start, end));
    lane.insert(pos, (start, end));
}

/// The completion ladder of one copy given its fault-free completion time.
pub(crate) fn ladder_for(
    scheme: RecoveryScheme,
    plan: CopyPlan,
    fault_free_end: Time,
    k: u32,
) -> ReplicaLadder {
    let base = scheme.fault_free_time(plan.checkpoints);
    let max_faults = plan.recoveries.min(k);
    let mut ladder = Vec::with_capacity(max_faults as usize + 1);
    for f in 0..=max_faults {
        let w = scheme.worst_case_time(plan.checkpoints, f);
        ladder.push(fault_free_end + (w - base));
    }
    // The copy dies if faults can exceed its recoveries within the budget.
    let killable = plan.recoveries < k;
    ReplicaLadder { ladder, killable }
}

/// Longest path (minimum-WCET durations plus transmissions) from each
/// process to any sink.
pub(crate) fn app_ranks(app: &Application) -> Vec<Time> {
    let n = app.process_count();
    let mut rank = vec![Time::ZERO; n];
    for &pid in app.topological_order().iter().rev() {
        let proc = app.process(pid);
        let dur =
            proc.candidate_nodes().filter_map(|c| proc.wcet_on(c)).min().unwrap_or(Time::ZERO);
        let down = app
            .successors(pid)
            .iter()
            .map(|&(s, m)| rank[s.index()] + app.message(m).transmission())
            .max()
            .unwrap_or(Time::ZERO);
        rank[pid.index()] = dur + down;
    }
    rank
}

/// The exact pop order of the root-schedule list scheduler: a priority
/// topological sort by `(downward rank, lowest index)` — a pure function of
/// the application, independent of any candidate state, which is what makes
/// prefix reuse in `delta_evaluate` sound.
fn schedule_order(app: &Application) -> Vec<ProcessId> {
    let n = app.process_count();
    let rank = app_ranks(app);
    let mut indegree: Vec<usize> =
        (0..n).map(|i| app.predecessors(ProcessId::new(i)).len()).collect();
    let mut ready: BinaryHeap<(Time, Reverse<usize>)> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| (rank[i], Reverse(i)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some((_, Reverse(i))) = ready.pop() {
        let pid = ProcessId::new(i);
        order.push(pid);
        for &(succ, _) in app.successors(pid) {
            indegree[succ.index()] -= 1;
            if indegree[succ.index()] == 0 {
                ready.push((rank[succ.index()], Reverse(succ.index())));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "validated applications are acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_schedule_length;
    use ftes_ft::Policy;
    use ftes_model::{samples, Mapping};

    fn fig3_instance(k: u32) -> (Application, Platform, Mapping, PolicyAssignment) {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        (app, platform, mapping, policies)
    }

    #[test]
    fn evaluate_matches_legacy_bit_for_bit() {
        for k in 0..=3 {
            let (app, platform, mapping, policies) = fig3_instance(k);
            let copies =
                CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
            let mut ev = SystemEvaluator::new(&app, &platform, k);
            let fast = ev.evaluate(&copies, &policies).unwrap();
            let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, k).unwrap();
            assert_eq!(fast, legacy, "k={k}");
            // A reused evaluator stays equal.
            assert_eq!(ev.evaluate(&copies, &policies).unwrap(), legacy);
        }
    }

    #[test]
    fn delta_after_repolicy_matches_full() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let arch = platform.architecture().clone();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        ev.evaluate(&copies, &policies).unwrap();

        for p in 0..app.process_count() {
            let mut moved = policies.clone();
            moved.set(ProcessId::new(p), Policy::checkpointing(2, 2));
            let moved_copies = CopyMapping::from_base(&app, &arch, &mapping, &moved).unwrap();
            let delta = ev.delta_evaluate(&moved_copies, &moved).unwrap();
            let legacy =
                estimate_schedule_length(&app, &platform, &moved_copies, &moved, 2).unwrap();
            assert_eq!(delta, legacy, "repolicy of P{p}");
        }
        let stats = ev.stats();
        assert!(stats.delta_evals + stats.delta_fallbacks > 0);
    }

    #[test]
    fn delta_after_remap_matches_full() {
        let (app, platform, mapping, policies) = fig3_instance(1);
        let arch = platform.architecture().clone();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 1);
        ev.evaluate(&copies, &policies).unwrap();

        for (pid, proc) in app.processes() {
            if proc.fixed_node().is_some() {
                continue;
            }
            for node in proc.candidate_nodes() {
                if node == mapping.node_of(pid) {
                    continue;
                }
                let Ok(moved) = mapping.with_move(&app, &arch, pid, node) else { continue };
                let moved_copies = CopyMapping::from_base(&app, &arch, &moved, &policies).unwrap();
                let delta = ev.delta_evaluate(&moved_copies, &policies).unwrap();
                let legacy =
                    estimate_schedule_length(&app, &platform, &moved_copies, &policies, 1).unwrap();
                assert_eq!(delta, legacy, "remap of {pid:?} to {node:?}");
            }
        }
    }

    #[test]
    fn delta_on_identical_state_is_a_noop() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        let full = ev.evaluate(&copies, &policies).unwrap();
        assert_eq!(ev.delta_evaluate(&copies, &policies).unwrap(), full);
        assert_eq!(ev.stats().delta_noops, 1);
    }

    #[test]
    fn delta_without_base_falls_back_to_full() {
        let (app, platform, mapping, policies) = fig3_instance(2);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        let delta = ev.delta_evaluate(&copies, &policies).unwrap();
        let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 2).unwrap();
        assert_eq!(delta, legacy);
        assert_eq!(ev.stats().delta_fallbacks, 1);
    }

    #[test]
    fn invalid_policies_error_on_both_paths() {
        let (app, platform, mapping, _) = fig3_instance(2);
        // k = 2 budget but a policy that tolerates nothing.
        let policies = PolicyAssignment::uniform_reexecution(&app, 0);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 2);
        let fast = ev.evaluate(&copies, &policies);
        let legacy = estimate_schedule_length(&app, &platform, &copies, &policies, 2);
        assert_eq!(fast.is_err(), legacy.is_err());
        assert!(fast.is_err());
    }

    #[test]
    fn lane_matches_resource_table_semantics() {
        use crate::ResourceTable;
        use ftes_ftcpg::Guard;
        // Randomized-ish interleavings: the lane and the generic table must
        // agree on every placement when all guards are `always`.
        let requests =
            [(0i64, 5i64), (3, 4), (10, 2), (1, 1), (8, 3), (0, 7), (20, 1), (2, 6), (15, 5)];
        let mut lane: Vec<(Time, Time)> = Vec::new();
        let mut table = ResourceTable::new();
        for &(ready, dur) in &requests {
            let (ready, dur) = (Time::new(ready), Time::new(dur));
            let a = lane_earliest_fit(&lane, ready, dur);
            let b = table.earliest_fit(ready, dur, &Guard::always());
            assert_eq!(a, b);
            lane_reserve(&mut lane, a, a + dur);
            table.reserve(b, b + dur, Guard::always());
        }
    }

    #[test]
    fn stats_count_reuse() {
        let (app, platform, mapping, policies) = fig3_instance(1);
        let copies =
            CopyMapping::from_base(&app, platform.architecture(), &mapping, &policies).unwrap();
        let mut ev = SystemEvaluator::new(&app, &platform, 1);
        for _ in 0..3 {
            ev.evaluate(&copies, &policies).unwrap();
        }
        ev.delta_evaluate(&copies, &policies).unwrap();
        let stats = ev.stats();
        assert_eq!(stats.constructions, 1);
        assert_eq!(stats.full_evals, 3);
        assert_eq!(stats.delta_noops, 1);
        assert_eq!(stats.evaluations(), 4);
        assert_eq!(stats.reused(), 3);
        let merged = stats.merged(stats);
        assert_eq!(merged.evaluations(), 8);
    }
}
