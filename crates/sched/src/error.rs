//! Errors reported by the schedulers.

use ftes_ftcpg::CpgNodeId;
use std::error::Error;
use std::fmt;

/// Error produced during schedule synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// A bus transmission could not be scheduled (no slot, message too
    /// long, …).
    Tdma(ftes_tdma::TdmaError),
    /// An FT-CPG node that must execute on the bus has no identifiable
    /// sender node (builder invariant violation).
    NoSender(CpgNodeId),
    /// FT-CPG construction failed while preparing inputs.
    Cpg(ftes_ftcpg::CpgError),
    /// A fault-tolerance input was invalid.
    Ft(ftes_ft::FtError),
    /// A model input was invalid.
    Model(ftes_model::ModelError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Tdma(e) => write!(f, "bus scheduling failed: {e}"),
            SchedError::NoSender(n) => {
                write!(f, "bus node {n} has no identifiable sender")
            }
            SchedError::Cpg(e) => write!(f, "FT-CPG error: {e}"),
            SchedError::Ft(e) => write!(f, "fault-tolerance error: {e}"),
            SchedError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Tdma(e) => Some(e),
            SchedError::Cpg(e) => Some(e),
            SchedError::Ft(e) => Some(e),
            SchedError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ftes_tdma::TdmaError> for SchedError {
    fn from(e: ftes_tdma::TdmaError) -> Self {
        SchedError::Tdma(e)
    }
}

impl From<ftes_ftcpg::CpgError> for SchedError {
    fn from(e: ftes_ftcpg::CpgError) -> Self {
        SchedError::Cpg(e)
    }
}

impl From<ftes_ft::FtError> for SchedError {
    fn from(e: ftes_ft::FtError) -> Self {
        SchedError::Ft(e)
    }
}

impl From<ftes_model::ModelError> for SchedError {
    fn from(e: ftes_model::ModelError) -> Self {
        SchedError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedError::from(ftes_tdma::TdmaError::EmptySlotTable);
        assert!(e.to_string().contains("bus scheduling failed"));
        assert!(e.source().is_some());
        assert!(SchedError::NoSender(CpgNodeId::new(3)).source().is_none());
    }
}
