//! Distributed schedule tables (paper §5.2, Fig. 6).
//!
//! The conditional schedule is split into one table per computation node —
//! the part each local run-time scheduler stores — with one row per process
//! and message the node controls, one row per broadcast condition, and one
//! activation-time entry per guard context.

use crate::ConditionalSchedule;
use ftes_ftcpg::{CpgNodeId, CpgNodeKind, FtCpg, Guard, Location};
use ftes_model::{Application, NodeId, Time};
use std::fmt::Write as _;

/// One activation entry: the guard context and the start time in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Guard context (column header in Fig. 6).
    pub guard: Guard,
    /// Activation time in that context.
    pub start: Time,
    /// FT-CPG node realizing the entry (e.g. the copy `P2^4`).
    pub node: CpgNodeId,
}

/// One row of a node's schedule table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Row label: the application process/message/condition name.
    pub label: String,
    /// Activation entries, in guard-context order of creation.
    pub entries: Vec<TableEntry>,
}

/// The schedule table stored on one computation node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTable {
    /// Owning computation node.
    pub node: NodeId,
    /// Rows: local processes, messages sent from here, and conditions
    /// broadcast from here.
    pub rows: Vec<TableRow>,
}

/// The complete set of distributed schedule tables `S` of a system
/// configuration ψ = <F, M, S>.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTables {
    /// One table per computation node.
    pub nodes: Vec<NodeTable>,
}

impl ScheduleTables {
    /// Derives the distributed tables from a conditional schedule.
    ///
    /// Rows appear for: every process copy executing on the node, every bus
    /// message whose sender is on the node, and every condition the node
    /// broadcasts.
    pub fn new(
        app: &Application,
        cpg: &FtCpg,
        schedule: &ConditionalSchedule,
        node_count: usize,
    ) -> Self {
        let mut nodes: Vec<NodeTable> =
            (0..node_count).map(|i| NodeTable { node: NodeId::new(i), rows: Vec::new() }).collect();

        let mut push = |node: NodeId, label: String, entry: TableEntry| {
            let rows = &mut nodes[node.index()].rows;
            match rows.iter_mut().find(|r| r.label == label) {
                Some(r) => r.entries.push(entry),
                None => rows.push(TableRow { label, entries: vec![entry] }),
            }
        };

        for (id, n) in cpg.iter() {
            let entry = TableEntry { guard: n.guard.clone(), start: schedule.start(id), node: id };
            match (&n.kind, n.location) {
                (CpgNodeKind::ProcessCopy { process, .. }, Location::Node(cpu)) => {
                    push(cpu, app.process(*process).name().to_string(), entry);
                }
                (CpgNodeKind::MessageCopy { message, .. }, Location::Bus)
                | (CpgNodeKind::MessageSync { message }, Location::Bus) => {
                    if let Some(sender) = sender_cpu(cpg, id) {
                        push(sender, app.message(*message).name().to_string(), entry);
                    }
                }
                _ => {}
            }
        }
        for b in schedule.broadcasts() {
            if let Location::Node(cpu) = cpg.node(b.cond).location {
                let label = format!("F({})", cpg.name(b.cond));
                push(
                    cpu,
                    label,
                    TableEntry {
                        guard: cpg.node(b.cond).guard.clone(),
                        start: b.start,
                        node: b.cond,
                    },
                );
            }
        }
        ScheduleTables { nodes }
    }

    /// Renders the tables as human-readable text, one block per node, one
    /// row per entity, entries as `start (copy) if guard`.
    pub fn render(&self, cpg: &FtCpg) -> String {
        let mut out = String::new();
        for table in &self.nodes {
            let _ = writeln!(out, "== schedule table of N{} ==", table.node.index());
            for row in &table.rows {
                let entries: Vec<String> = row
                    .entries
                    .iter()
                    .map(|e| {
                        format!(
                            "{} ({}) if {}",
                            e.start,
                            cpg.name(e.node),
                            e.guard.display_with(|c| cpg.name(c).to_string())
                        )
                    })
                    .collect();
                let _ = writeln!(out, "  {:<6} | {}", row.label, entries.join(" | "));
            }
        }
        out
    }

    /// Total number of activation entries across all tables — the schedule
    /// table *size* metric the paper trades against transparency (§5.2).
    pub fn entry_count(&self) -> usize {
        self.nodes.iter().flat_map(|n| &n.rows).map(|r| r.entries.len()).sum()
    }
}

fn sender_cpu(cpg: &FtCpg, id: CpgNodeId) -> Option<NodeId> {
    fn trace(cpg: &FtCpg, from: CpgNodeId) -> Option<NodeId> {
        match cpg.node(from).location {
            Location::Node(n) => Some(n),
            _ => cpg.incoming(from).find_map(|e| trace(cpg, e.from)),
        }
    }
    cpg.incoming(id).find_map(|e| trace(cpg, e.from))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_ftcpg, SchedConfig};
    use ftes_ft::PolicyAssignment;
    use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_model::{samples, FaultModel, Mapping, ProcessId};
    use ftes_tdma::Platform;

    fn fig5_tables() -> (Application, FtCpg, ScheduleTables) {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let sched = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        let tables = ScheduleTables::new(&app, &cpg, &sched, 2);
        (app, cpg, tables)
    }

    #[test]
    fn fig6_row_structure() {
        let (_, _, tables) = fig5_tables();
        let labels =
            |i: usize| tables.nodes[i].rows.iter().map(|r| r.label.as_str()).collect::<Vec<_>>();
        // N1 (index 0) runs P1, P2 and sends m1, m2, m3 plus P1's condition
        // broadcasts (matching the row structure of Fig. 6's first table).
        let n1 = labels(0);
        assert!(n1.contains(&"P1"));
        assert!(n1.contains(&"P2"));
        assert!(n1.contains(&"m1"));
        assert!(n1.contains(&"m2"));
        assert!(n1.contains(&"m3"));
        assert!(n1.iter().any(|l| l.starts_with("F(P1^")), "P1 condition broadcasts: {n1:?}");
        // N2 runs P3 and P4.
        let n2 = labels(1);
        assert!(n2.contains(&"P3"));
        assert!(n2.contains(&"P4"));
        assert!(!n2.contains(&"P1"));
    }

    #[test]
    fn entry_counts_follow_copy_counts() {
        let (_, cpg, tables) = fig5_tables();
        let row = |i: usize, label: &str| {
            tables.nodes[i]
                .rows
                .iter()
                .find(|r| r.label == label)
                .map(|r| r.entries.len())
                .unwrap_or(0)
        };
        // P1 has 3 copies, P2 6, P3 3, P4 6 (Fig. 5b).
        assert_eq!(row(0, "P1"), 3);
        assert_eq!(row(0, "P2"), 6);
        assert_eq!(row(1, "P3"), 3);
        assert_eq!(row(1, "P4"), 6);
        // Frozen messages have exactly one entry.
        assert_eq!(row(0, "m2"), 1);
        assert_eq!(row(0, "m3"), 1);
        assert!(tables.entry_count() >= 20);
        let _ = cpg;
    }

    #[test]
    fn frozen_rows_are_context_independent() {
        let (_, _, tables) = fig5_tables();
        // The frozen message m2's single entry is unconditional.
        let m2 = tables.nodes[0].rows.iter().find(|r| r.label == "m2").unwrap();
        assert!(m2.entries[0].guard.is_always());
    }

    #[test]
    fn render_is_readable() {
        let (_, cpg, tables) = fig5_tables();
        let text = tables.render(&cpg);
        assert!(text.contains("== schedule table of N0 =="));
        assert!(text.contains("P2"));
        assert!(text.contains("if true"));
        assert!(text.contains("if F(P1^1)") || text.contains("if !F(P1^1)"));
    }

    #[test]
    fn unconditional_first_process_starts_at_zero() {
        let (_, cpg, tables) = fig5_tables();
        let p1 = tables.nodes[0].rows.iter().find(|r| r.label == "P1").unwrap();
        let first = p1.entries.iter().find(|e| e.guard.is_always()).unwrap();
        assert_eq!(first.start, Time::ZERO, "P1 activated unconditionally at 0 (Fig. 6)");
        let _ = cpg;
        let _ = ProcessId::new(0);
    }
}
