//! Guard-aware resource occupancy tables.
//!
//! A CPU or the bus can hold two reservations that overlap in time only when
//! their guards are *mutually exclusive* — the intervals belong to disjoint
//! fault scenarios (the alternative-paths property of §5.1). This is what
//! lets the conditional scheduler pack the recovery of one process into the
//! same physical window another process uses in the no-fault scenario.

use ftes_ftcpg::Guard;
use ftes_model::{NodeId, Time};
use ftes_tdma::{TdmaBus, TdmaError};

/// One reservation on a resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// Start instant (inclusive).
    pub start: Time,
    /// End instant (exclusive).
    pub end: Time,
    /// Scenario guard of the occupant.
    pub guard: Guard,
}

/// Occupancy table of one resource (a CPU or the bus channel).
#[derive(Debug, Clone, Default)]
pub struct ResourceTable {
    /// Reservations sorted by start time.
    reservations: Vec<Reservation>,
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ResourceTable::default()
    }

    /// The reservations placed so far (sorted by start).
    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Earliest start `t ≥ ready` at which `[t, t + duration)` conflicts
    /// with no reservation whose guard is compatible with `guard`.
    ///
    /// Zero-duration requests return `ready` (synchronization artifacts).
    pub fn earliest_fit(&self, ready: Time, duration: Time, guard: &Guard) -> Time {
        if duration <= Time::ZERO {
            return ready;
        }
        let mut t = ready;
        // Conflicting intervals sorted by start; walk and push `t` past each
        // conflict that overlaps [t, t + duration).
        loop {
            let mut moved = false;
            for r in &self.reservations {
                if r.start >= t + duration {
                    break;
                }
                if r.end <= t {
                    continue;
                }
                if !r.guard.excludes(guard) {
                    t = r.end;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// Records a reservation.
    pub fn reserve(&mut self, start: Time, end: Time, guard: Guard) {
        let pos = self.reservations.partition_point(|r| (r.start, r.end) <= (start, end));
        self.reservations.insert(pos, Reservation { start, end, guard });
    }

    /// `true` iff `[start, end)` overlaps a reservation compatible with
    /// `guard` (used by invariant checks).
    pub fn conflicts(&self, start: Time, end: Time, guard: &Guard) -> bool {
        self.reservations.iter().any(|r| r.start < end && start < r.end && !r.guard.excludes(guard))
    }
}

/// Occupancy table of the TDMA bus: combines slot-timing feasibility
/// ([`TdmaBus::next_window`]) with guard-aware mutual exclusion.
#[derive(Debug, Clone)]
pub struct BusTable {
    bus: TdmaBus,
    table: ResourceTable,
}

impl BusTable {
    /// Creates an empty bus occupancy table over `bus`.
    pub fn new(bus: TdmaBus) -> Self {
        BusTable { bus, table: ResourceTable::new() }
    }

    /// The underlying TDMA configuration.
    pub fn bus(&self) -> &TdmaBus {
        &self.bus
    }

    /// Reservations placed so far.
    pub fn reservations(&self) -> &[Reservation] {
        &self.table.reservations
    }

    /// Earliest window in which `sender` can put `duration` units on the
    /// bus, at or after `ready`, compatible with existing reservations.
    ///
    /// Zero-duration requests (node-internal messages) return
    /// `[ready, ready)` without touching the bus.
    ///
    /// # Errors
    ///
    /// Propagates [`TdmaError`] for senders without slots or oversized
    /// messages.
    pub fn earliest_window(
        &self,
        sender: NodeId,
        ready: Time,
        duration: Time,
        guard: &Guard,
    ) -> Result<(Time, Time), TdmaError> {
        if duration <= Time::ZERO {
            return Ok((ready, ready));
        }
        let mut t = ready;
        loop {
            let w = self.bus.next_window(sender, t, duration)?;
            // Find the first compatible conflict inside the window.
            let conflict = self
                .table
                .reservations
                .iter()
                .filter(|r| r.start < w.end && w.start < r.end && !r.guard.excludes(guard))
                .map(|r| r.end)
                .max();
            match conflict {
                None => return Ok((w.start, w.end)),
                Some(e) => t = e,
            }
        }
    }

    /// Records a bus reservation.
    pub fn reserve(&mut self, start: Time, end: Time, guard: Guard) {
        self.table.reserve(start, end, guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ftcpg::{CpgNodeId, Literal};

    fn g(lits: &[(usize, bool)]) -> Guard {
        Guard::of(lits.iter().map(|&(i, f)| Literal { cond: CpgNodeId::new(i), fault: f }))
    }

    #[test]
    fn empty_table_fits_immediately() {
        let t = ResourceTable::new();
        assert_eq!(t.earliest_fit(Time::new(5), Time::new(10), &Guard::always()), Time::new(5));
    }

    #[test]
    fn compatible_guards_serialize() {
        let mut t = ResourceTable::new();
        t.reserve(Time::new(0), Time::new(10), Guard::always());
        // `always` is compatible with everything -> pushed past.
        assert_eq!(t.earliest_fit(Time::ZERO, Time::new(5), &g(&[(0, true)])), Time::new(10));
        assert!(t.conflicts(Time::new(3), Time::new(7), &Guard::always()));
    }

    #[test]
    fn exclusive_guards_overlap() {
        let mut t = ResourceTable::new();
        t.reserve(Time::new(0), Time::new(10), g(&[(0, true)]));
        // Complementary guard may run in the same physical window.
        assert_eq!(t.earliest_fit(Time::ZERO, Time::new(5), &g(&[(0, false)])), Time::ZERO);
        assert!(!t.conflicts(Time::ZERO, Time::new(5), &g(&[(0, false)])));
        // Same-polarity guard must wait.
        assert_eq!(
            t.earliest_fit(Time::ZERO, Time::new(5), &g(&[(0, true), (1, false)])),
            Time::new(10)
        );
    }

    #[test]
    fn gap_between_reservations_is_used() {
        let mut t = ResourceTable::new();
        t.reserve(Time::new(0), Time::new(4), Guard::always());
        t.reserve(Time::new(10), Time::new(14), Guard::always());
        assert_eq!(t.earliest_fit(Time::ZERO, Time::new(5), &Guard::always()), Time::new(4));
        // A 7-unit job does not fit in the 6-unit gap.
        assert_eq!(t.earliest_fit(Time::ZERO, Time::new(7), &Guard::always()), Time::new(14));
    }

    #[test]
    fn zero_duration_is_noop() {
        let mut t = ResourceTable::new();
        t.reserve(Time::new(0), Time::new(10), Guard::always());
        assert_eq!(t.earliest_fit(Time::new(3), Time::ZERO, &Guard::always()), Time::new(3));
    }

    #[test]
    fn bus_table_combines_tdma_and_guards() {
        // Two nodes, 10-unit slots; N1 owns [10, 20) each 20-unit round.
        let bus = TdmaBus::uniform(2, Time::new(10)).unwrap();
        let mut bt = BusTable::new(bus);
        let n1 = NodeId::new(1);
        let fault = g(&[(0, true)]);
        let ok = g(&[(0, false)]);
        let (s, e) = bt.earliest_window(n1, Time::ZERO, Time::new(4), &fault).unwrap();
        assert_eq!((s, e), (Time::new(10), Time::new(14)));
        bt.reserve(s, e, fault.clone());
        // A same-guard transmission serializes behind it.
        let (s2, _) = bt.earliest_window(n1, Time::ZERO, Time::new(4), &fault).unwrap();
        assert_eq!(s2, Time::new(14));
        // The complementary-guard transmission shares the window.
        let (s3, e3) = bt.earliest_window(n1, Time::ZERO, Time::new(4), &ok).unwrap();
        assert_eq!(s3, Time::new(10));
        bt.reserve(s3, e3, ok);
        // An unconditional transmission conflicts with both: [14, 18).
        let (s4, e4) = bt.earliest_window(n1, Time::ZERO, Time::new(4), &Guard::always()).unwrap();
        assert_eq!(s4, Time::new(14));
        bt.reserve(s4, e4, Guard::always());
        // Slot exhausted (only [18, 20) left): next round.
        let (s5, _) = bt.earliest_window(n1, Time::ZERO, Time::new(4), &Guard::always()).unwrap();
        assert_eq!(s5, Time::new(30));
    }

    #[test]
    fn zero_duration_bus_request_is_internal() {
        let bus = TdmaBus::uniform(2, Time::new(10)).unwrap();
        let bt = BusTable::new(bus);
        let w =
            bt.earliest_window(NodeId::new(0), Time::new(7), Time::ZERO, &Guard::always()).unwrap();
        assert_eq!(w, (Time::new(7), Time::new(7)));
    }
}
