//! Fast worst-case schedule-length estimation ("root schedule + recovery
//! slack") for use inside the design-optimization loops (paper §6).
//!
//! Exact conditional scheduling explodes combinatorially for the paper's
//! 100-process, k = 7 experiments, so — like the authors' own heuristics —
//! the optimizer evaluates candidate configurations with a two-part bound:
//!
//! 1. **Root schedule**: list-schedule the fault-free scenario, with every
//!    copy (including all active replicas) running its fault-free
//!    checkpointed time `E(n) = C + n(χ + α)`, messages in the sender's
//!    TDMA slots, successors starting when the *first* copy of each
//!    predecessor has delivered.
//! 2. **Recovery slack**: the adversary concentrates all `k` faults on one
//!    process; the slack of a process is the extra delay it suffers when
//!    all `k` faults hit it (for replicated processes, via the adversarial
//!    join analysis), and that delay pushes the process's whole downstream
//!    chain. The estimate is therefore
//!    `max(makespan, max_i (downstream_finish_i + δ_i(k)))`, where
//!    `downstream_finish_i` is the completion of the latest transitive
//!    successor of `i` in the root schedule. Concentrating the budget on
//!    one process dominates splitting it for (super)linear per-fault costs,
//!    and slack on one processor is shared — the same argument behind the
//!    authors' shared recovery slacks.
//!
//! The estimator is a *ranking heuristic* for the optimizer, not a
//! certified bound: the exact schedule tables also pay for multi-process
//! recovery cascades that serialize on a shared CPU, so the estimate is
//! optimistic (increasingly so with `k`). Schedulability of the final
//! configuration is always judged on the exact conditional schedule when
//! one is built. Calibration is measured in `tests/` and EXPERIMENTS.md.
//!
//! The implementation lives in the reusable
//! [`SystemEvaluator`](crate::SystemEvaluator) kernel and its three
//! scoring tiers — full (`evaluate`, anchors the delta base), suffix-only
//! (`delta_evaluate`) and batched neighborhood (`evaluate_batch`, shares
//! one schedule-prefix image across all candidates); this module keeps the
//! [`Estimate`] value type and the one-shot compatibility wrapper, which
//! constructs a throwaway kernel and runs a single full pass.

use crate::{SchedError, SystemEvaluator};
use ftes_ft::PolicyAssignment;
use ftes_ftcpg::CopyMapping;
use ftes_model::{Application, ProcessId, Time};
use ftes_tdma::Platform;

/// Result of the fast schedule-length estimation.
///
/// `Estimate` is a plain value type — `Copy`, `Hash`, `Ord` — so it can key
/// memoization tables (the `ftes-explore` estimate cache) and serialize into
/// flat CSV/JSON rows without any conversion layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Estimate {
    /// Makespan of the fault-free root schedule.
    pub fault_free_length: Time,
    /// Estimated worst-case schedule length under `k` faults.
    pub worst_case_length: Time,
    /// The process on which the adversary concentrates the faults.
    pub critical_process: ProcessId,
}

impl Estimate {
    /// The fault-tolerance overhead `FTO = (worst − fault_free) /
    /// fault_free`, the paper's Fig. 7/8 metric, in percent.
    pub fn fault_tolerance_overhead(&self, baseline_fault_free: Time) -> f64 {
        if baseline_fault_free <= Time::ZERO {
            return 0.0;
        }
        100.0 * (self.worst_case_length - baseline_fault_free).as_f64()
            / baseline_fault_free.as_f64()
    }

    /// The recovery slack `worst_case − fault_free`: the schedule length the
    /// configuration reserves purely for fault handling.
    pub fn recovery_slack(&self) -> Time {
        self.worst_case_length - self.fault_free_length
    }
}

/// Estimates the worst-case schedule length of a configuration.
///
/// This is the one-shot compatibility wrapper over
/// [`SystemEvaluator`](crate::SystemEvaluator): it constructs a fresh
/// kernel and evaluates once. Hot callers (the optimization loops, the
/// exploration workers, the service) hold a kernel instead and amortize the
/// construction across thousands of evaluations.
///
/// # Errors
///
/// Returns [`SchedError::Tdma`] when a message cannot be scheduled on the
/// bus and [`SchedError::Ft`] when the fault budget can silence a replica
/// set (invalid policy).
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::CopyMapping;
/// use ftes_model::{samples, Mapping, Time};
/// use ftes_sched::estimate_schedule_length;
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig3();
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let platform = Platform::homogeneous(2, Time::new(8))?;
/// let est = estimate_schedule_length(&app, &platform, &copies, &policies, 2)?;
/// assert!(est.worst_case_length > est.fault_free_length);
/// # Ok(())
/// # }
/// ```
pub fn estimate_schedule_length(
    app: &Application,
    platform: &Platform,
    copies: &CopyMapping,
    policies: &PolicyAssignment,
    k: u32,
) -> Result<Estimate, SchedError> {
    SystemEvaluator::new(app, platform, k).evaluate(copies, policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::Policy;
    use ftes_model::{samples, Mapping};

    fn fig3_estimate(k: u32, policies: &PolicyAssignment) -> Estimate {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, policies).unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        estimate_schedule_length(&app, &platform, &copies, policies, k).unwrap()
    }

    #[test]
    fn fault_free_matches_no_slack() {
        let (app, _) = samples::fig3();
        let policies = PolicyAssignment::uniform_reexecution(&app, 0);
        let est = fig3_estimate(0, &policies);
        assert_eq!(est.fault_free_length, est.worst_case_length);
    }

    #[test]
    fn slack_grows_with_k() {
        let (app, _) = samples::fig3();
        let mut prev = Time::ZERO;
        for k in 1..=4 {
            let policies = PolicyAssignment::uniform_reexecution(&app, k);
            let est = fig3_estimate(k, &policies);
            let slack = est.worst_case_length - est.fault_free_length;
            assert!(slack > prev, "slack must grow with k (k={k})");
            prev = slack;
        }
    }

    #[test]
    fn checkpointing_reduces_estimated_worst_case() {
        // Single heavy process (C = 60, α = µ = 10, χ = 5), k = 5: the
        // checkpointed worst case W(4, 5) = 295 clearly beats re-execution
        // W(0, 5) = 460.
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let platform = Platform::homogeneous(1, Time::new(8)).unwrap();
        let k = 5;
        let est = |policies: &PolicyAssignment| {
            let copies = CopyMapping::from_base(&app, &arch, &mapping, policies).unwrap();
            estimate_schedule_length(&app, &platform, &copies, policies, k).unwrap()
        };
        let e_re = est(&PolicyAssignment::uniform_reexecution(&app, k));
        let e_ck = est(&PolicyAssignment::local_checkpointing(&app, k, 16).unwrap());
        assert_eq!(e_re.worst_case_length, Time::new(460));
        assert!(
            e_ck.worst_case_length < e_re.worst_case_length,
            "checkpointing shrinks recovery slack: {} vs {}",
            e_ck.worst_case_length,
            e_re.worst_case_length
        );
    }

    #[test]
    fn replication_trades_fault_free_for_slack() {
        // Replication needs k+1 distinct nodes; with two nodes use k = 1.
        // P3 is restricted to N1, keep re-execution there.
        let (app, _) = samples::fig3();
        let k = 1;
        let mut repl = PolicyAssignment::uniform_replication(&app, k);
        repl.set(ProcessId::new(2), Policy::reexecution(k));
        let e_rp = fig3_estimate(k, &repl);
        let e_re = fig3_estimate(k, &PolicyAssignment::uniform_reexecution(&app, k));
        // Replication occupies at least as much fault-free schedule (every
        // replica runs even without faults, §3.2) ...
        assert!(e_rp.fault_free_length >= e_re.fault_free_length);
        // ... but absorbs faults with no more slack than re-execution (the
        // second replica is already running when the first dies; here the
        // critical process is P3, which stays re-executed in both configs,
        // so the slacks tie).
        let slack_rp = e_rp.worst_case_length - e_rp.fault_free_length;
        let slack_re = e_re.worst_case_length - e_re.fault_free_length;
        assert!(
            slack_rp <= slack_re,
            "replication slack {slack_rp} must not exceed re-execution slack {slack_re}"
        );
        assert_eq!(e_rp.critical_process, ProcessId::new(2), "P3 dominates the slack");
    }

    #[test]
    fn critical_process_is_the_most_expensive_recovery() {
        let (app, _) = samples::fig3();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let est = fig3_estimate(2, &policies);
        // P3 has the largest WCET (60) => largest re-execution slack.
        assert_eq!(est.critical_process, ProcessId::new(2));
    }

    #[test]
    fn fto_metric() {
        let (app, _) = samples::fig3();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let est = fig3_estimate(2, &policies);
        let nf = fig3_estimate(0, &PolicyAssignment::uniform_reexecution(&app, 0));
        let fto = est.fault_tolerance_overhead(nf.fault_free_length);
        assert!(fto > 0.0);
    }
}
