//! Fast worst-case schedule-length estimation ("root schedule + recovery
//! slack") for use inside the design-optimization loops (paper §6).
//!
//! Exact conditional scheduling explodes combinatorially for the paper's
//! 100-process, k = 7 experiments, so — like the authors' own heuristics —
//! the optimizer evaluates candidate configurations with a two-part bound:
//!
//! 1. **Root schedule**: list-schedule the fault-free scenario, with every
//!    copy (including all active replicas) running its fault-free
//!    checkpointed time `E(n) = C + n(χ + α)`, messages in the sender's
//!    TDMA slots, successors starting when the *first* copy of each
//!    predecessor has delivered.
//! 2. **Recovery slack**: the adversary concentrates all `k` faults on one
//!    process; the slack of a process is the extra delay it suffers when
//!    all `k` faults hit it (for replicated processes, via the adversarial
//!    join analysis), and that delay pushes the process's whole downstream
//!    chain. The estimate is therefore
//!    `max(makespan, max_i (downstream_finish_i + δ_i(k)))`, where
//!    `downstream_finish_i` is the completion of the latest transitive
//!    successor of `i` in the root schedule. Concentrating the budget on
//!    one process dominates splitting it for (super)linear per-fault costs,
//!    and slack on one processor is shared — the same argument behind the
//!    authors' shared recovery slacks.
//!
//! The estimator is a *ranking heuristic* for the optimizer, not a
//! certified bound: the exact schedule tables also pay for multi-process
//! recovery cascades that serialize on a shared CPU, so the estimate is
//! optimistic (increasingly so with `k`). Schedulability of the final
//! configuration is always judged on the exact conditional schedule when
//! one is built. Calibration is measured in `tests/` and EXPERIMENTS.md.

use crate::{worst_case_delivery, ReplicaLadder, ResourceTable, SchedError};
use ftes_ft::{CopyPlan, PolicyAssignment, RecoveryScheme};
use ftes_ftcpg::{CopyMapping, Guard};
use ftes_model::{Application, ProcessId, Time};
use ftes_tdma::Platform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of the fast schedule-length estimation.
///
/// `Estimate` is a plain value type — `Copy`, `Hash`, `Ord` — so it can key
/// memoization tables (the `ftes-explore` estimate cache) and serialize into
/// flat CSV/JSON rows without any conversion layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Estimate {
    /// Makespan of the fault-free root schedule.
    pub fault_free_length: Time,
    /// Estimated worst-case schedule length under `k` faults.
    pub worst_case_length: Time,
    /// The process on which the adversary concentrates the faults.
    pub critical_process: ProcessId,
}

impl Estimate {
    /// The fault-tolerance overhead `FTO = (worst − fault_free) /
    /// fault_free`, the paper's Fig. 7/8 metric, in percent.
    pub fn fault_tolerance_overhead(&self, baseline_fault_free: Time) -> f64 {
        if baseline_fault_free <= Time::ZERO {
            return 0.0;
        }
        100.0 * (self.worst_case_length - baseline_fault_free).as_f64()
            / baseline_fault_free.as_f64()
    }

    /// The recovery slack `worst_case − fault_free`: the schedule length the
    /// configuration reserves purely for fault handling.
    pub fn recovery_slack(&self) -> Time {
        self.worst_case_length - self.fault_free_length
    }
}

/// Estimates the worst-case schedule length of a configuration.
///
/// # Errors
///
/// Returns [`SchedError::Tdma`] when a message cannot be scheduled on the
/// bus and [`SchedError::Ft`] when the fault budget can silence a replica
/// set (invalid policy).
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::CopyMapping;
/// use ftes_model::{samples, Mapping, Time};
/// use ftes_sched::estimate_schedule_length;
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig3();
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 2);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let platform = Platform::homogeneous(2, Time::new(8))?;
/// let est = estimate_schedule_length(&app, &platform, &copies, &policies, 2)?;
/// assert!(est.worst_case_length > est.fault_free_length);
/// # Ok(())
/// # }
/// ```
pub fn estimate_schedule_length(
    app: &Application,
    platform: &Platform,
    copies: &CopyMapping,
    policies: &PolicyAssignment,
    k: u32,
) -> Result<Estimate, SchedError> {
    policies.validate(k)?;
    let bus = platform.bus();
    let node_count = platform.architecture().node_count();
    let mut cpus = vec![ResourceTable::new(); node_count];

    // Downward rank on the application DAG for the list-scheduling priority.
    let rank = app_ranks(app);

    // Per process: completion time of each copy in the fault-free schedule.
    let mut copy_end: Vec<Vec<Time>> = vec![Vec::new(); app.process_count()];
    // Per process: earliest delivery to each consumer node (fault-free).
    let mut indegree: Vec<usize> =
        (0..app.process_count()).map(|i| app.predecessors(ProcessId::new(i)).len()).collect();
    let mut ready: BinaryHeap<(Time, Reverse<usize>)> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| (rank[i], Reverse(i)))
        .collect();

    let mut makespan = Time::ZERO;
    let mut scheduled = 0usize;
    while let Some((_, Reverse(i))) = ready.pop() {
        let pid = ProcessId::new(i);
        let proc = app.process(pid);
        scheduled += 1;
        for (c, &cpu) in copies.copies_of(pid).iter().enumerate() {
            let plan = policies.policy(pid).copies()[c];
            let wcet = proc.wcet_on(cpu).expect("copy mapping is validated");
            let scheme = RecoveryScheme::for_process(proc, wcet)?;
            let duration = scheme.fault_free_time(plan.checkpoints);
            // Ready when every predecessor has delivered to this CPU.
            let mut est = proc.release();
            for &(pred, mid) in app.predecessors(pid) {
                let trans = app.message(mid).transmission();
                let mut arrival = Time::MAX;
                for (pc, &pcpu) in copies.copies_of(pred).iter().enumerate() {
                    let end = copy_end[pred.index()][pc];
                    let a = if pcpu == cpu {
                        end
                    } else {
                        // Uncontended TDMA window (cheap bound).
                        bus.next_window(pcpu, end, trans)?.end
                    };
                    arrival = arrival.min(a);
                }
                est = est.max(arrival);
            }
            let s = cpus[cpu.index()].earliest_fit(est, duration, &Guard::always());
            cpus[cpu.index()].reserve(s, s + duration, Guard::always());
            copy_end[i].push(s + duration);
            makespan = makespan.max(s + duration);
        }
        for &(succ, _) in app.successors(pid) {
            indegree[succ.index()] -= 1;
            if indegree[succ.index()] == 0 {
                ready.push((rank[succ.index()], Reverse(succ.index())));
            }
        }
    }
    debug_assert_eq!(scheduled, app.process_count());

    // Downstream finish per process: completion of its latest transitive
    // successor in the root schedule (itself, for sinks).
    let mut path_end = vec![Time::ZERO; app.process_count()];
    for &pid in app.topological_order().iter().rev() {
        let own = copy_end[pid.index()]
            .iter()
            .copied()
            .min()
            .expect("every process has at least one copy");
        let down = app
            .successors(pid)
            .iter()
            .map(|&(s, _)| path_end[s.index()])
            .max()
            .unwrap_or(Time::ZERO);
        path_end[pid.index()] = own.max(down);
    }

    // Recovery slack: worst extra delay when all k faults hit one process,
    // delaying everything downstream of it.
    let mut worst_case = makespan;
    let mut critical = ProcessId::new(0);
    for (pid, proc) in app.processes() {
        let policy = policies.policy(pid);
        let ladders: Result<Vec<ReplicaLadder>, SchedError> = policy
            .copies()
            .iter()
            .zip(copies.copies_of(pid))
            .zip(&copy_end[pid.index()])
            .map(|((plan, &cpu), &end)| {
                let wcet = proc.wcet_on(cpu).expect("copy mapping is validated");
                let scheme = RecoveryScheme::for_process(proc, wcet)?;
                Ok(ladder_for(scheme, *plan, end, k))
            })
            .collect();
        let ladders = ladders?;
        let no_fault =
            ladders.iter().map(|l| l.ladder[0]).min().expect("policies have at least one copy");
        let delivery = worst_case_delivery(&ladders, k)
            .ok_or(SchedError::Ft(ftes_ft::FtError::InsufficientPolicy { k, tolerated: 0 }))?;
        let slack = delivery - no_fault;
        let finish = path_end[pid.index()] + slack;
        if finish > worst_case {
            worst_case = finish;
            critical = pid;
        }
    }

    Ok(Estimate {
        fault_free_length: makespan,
        worst_case_length: worst_case,
        critical_process: critical,
    })
}

/// The completion ladder of one copy given its fault-free completion time.
fn ladder_for(
    scheme: RecoveryScheme,
    plan: CopyPlan,
    fault_free_end: Time,
    k: u32,
) -> ReplicaLadder {
    let base = scheme.fault_free_time(plan.checkpoints);
    let max_faults = plan.recoveries.min(k);
    let mut ladder = Vec::with_capacity(max_faults as usize + 1);
    for f in 0..=max_faults {
        let w = scheme.worst_case_time(plan.checkpoints, f);
        ladder.push(fault_free_end + (w - base));
    }
    // The copy dies if faults can exceed its recoveries within the budget.
    let killable = plan.recoveries < k;
    ReplicaLadder { ladder, killable }
}

/// Longest path (minimum-WCET durations plus transmissions) from each
/// process to any sink.
fn app_ranks(app: &Application) -> Vec<Time> {
    let n = app.process_count();
    let mut rank = vec![Time::ZERO; n];
    for &pid in app.topological_order().iter().rev() {
        let proc = app.process(pid);
        let dur =
            proc.candidate_nodes().filter_map(|c| proc.wcet_on(c)).min().unwrap_or(Time::ZERO);
        let down = app
            .successors(pid)
            .iter()
            .map(|&(s, m)| rank[s.index()] + app.message(m).transmission())
            .max()
            .unwrap_or(Time::ZERO);
        rank[pid.index()] = dur + down;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::Policy;
    use ftes_model::{samples, Mapping};

    fn fig3_estimate(k: u32, policies: &PolicyAssignment) -> Estimate {
        let (app, arch) = samples::fig3();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let copies = CopyMapping::from_base(&app, &arch, &mapping, policies).unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        estimate_schedule_length(&app, &platform, &copies, policies, k).unwrap()
    }

    #[test]
    fn fault_free_matches_no_slack() {
        let (app, _) = samples::fig3();
        let policies = PolicyAssignment::uniform_reexecution(&app, 0);
        let est = fig3_estimate(0, &policies);
        assert_eq!(est.fault_free_length, est.worst_case_length);
    }

    #[test]
    fn slack_grows_with_k() {
        let (app, _) = samples::fig3();
        let mut prev = Time::ZERO;
        for k in 1..=4 {
            let policies = PolicyAssignment::uniform_reexecution(&app, k);
            let est = fig3_estimate(k, &policies);
            let slack = est.worst_case_length - est.fault_free_length;
            assert!(slack > prev, "slack must grow with k (k={k})");
            prev = slack;
        }
    }

    #[test]
    fn checkpointing_reduces_estimated_worst_case() {
        // Single heavy process (C = 60, α = µ = 10, χ = 5), k = 5: the
        // checkpointed worst case W(4, 5) = 295 clearly beats re-execution
        // W(0, 5) = 460.
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let platform = Platform::homogeneous(1, Time::new(8)).unwrap();
        let k = 5;
        let est = |policies: &PolicyAssignment| {
            let copies = CopyMapping::from_base(&app, &arch, &mapping, policies).unwrap();
            estimate_schedule_length(&app, &platform, &copies, policies, k).unwrap()
        };
        let e_re = est(&PolicyAssignment::uniform_reexecution(&app, k));
        let e_ck = est(&PolicyAssignment::local_checkpointing(&app, k, 16).unwrap());
        assert_eq!(e_re.worst_case_length, Time::new(460));
        assert!(
            e_ck.worst_case_length < e_re.worst_case_length,
            "checkpointing shrinks recovery slack: {} vs {}",
            e_ck.worst_case_length,
            e_re.worst_case_length
        );
    }

    #[test]
    fn replication_trades_fault_free_for_slack() {
        // Replication needs k+1 distinct nodes; with two nodes use k = 1.
        // P3 is restricted to N1, keep re-execution there.
        let (app, _) = samples::fig3();
        let k = 1;
        let mut repl = PolicyAssignment::uniform_replication(&app, k);
        repl.set(ProcessId::new(2), Policy::reexecution(k));
        let e_rp = fig3_estimate(k, &repl);
        let e_re = fig3_estimate(k, &PolicyAssignment::uniform_reexecution(&app, k));
        // Replication occupies at least as much fault-free schedule (every
        // replica runs even without faults, §3.2) ...
        assert!(e_rp.fault_free_length >= e_re.fault_free_length);
        // ... but absorbs faults with no more slack than re-execution (the
        // second replica is already running when the first dies; here the
        // critical process is P3, which stays re-executed in both configs,
        // so the slacks tie).
        let slack_rp = e_rp.worst_case_length - e_rp.fault_free_length;
        let slack_re = e_re.worst_case_length - e_re.fault_free_length;
        assert!(
            slack_rp <= slack_re,
            "replication slack {slack_rp} must not exceed re-execution slack {slack_re}"
        );
        assert_eq!(e_rp.critical_process, ProcessId::new(2), "P3 dominates the slack");
    }

    #[test]
    fn critical_process_is_the_most_expensive_recovery() {
        let (app, _) = samples::fig3();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let est = fig3_estimate(2, &policies);
        // P3 has the largest WCET (60) => largest re-execution slack.
        assert_eq!(est.critical_process, ProcessId::new(2));
    }

    #[test]
    fn fto_metric() {
        let (app, _) = samples::fig3();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let est = fig3_estimate(2, &policies);
        let nf = fig3_estimate(0, &PolicyAssignment::uniform_reexecution(&app, 0));
        let fto = est.fault_tolerance_overhead(nf.fault_free_length);
        assert!(fto > 0.0);
    }
}
